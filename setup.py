"""Legacy setup shim.

This environment's setuptools lacks the ``wheel`` package, so PEP 660
editable installs (which build a wheel) fail.  With this shim,
``pip install -e . --no-use-pep517 --no-build-isolation`` takes the
legacy ``setup.py develop`` path, which needs no wheel.  Metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
