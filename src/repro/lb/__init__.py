"""Load-balancer dataplane substrate.

Reproduces the dataplane the paper built on: a Maglev-hashing L4 load
balancer with connection tracking and Direct Server Return.  The
dataplane sees **only client→server packets**; responses take the
server→client pipes and never traverse it.  Measurement and control
(``repro.core``) attach via packet taps.

* :mod:`~repro.lb.maglev` — Maglev lookup table (NSDI '16), including
  the weighted variant the feedback controller drives.
* :mod:`~repro.lb.backend` — backend descriptors and the pool.
* :mod:`~repro.lb.conntrack` — flow→backend affinity with idle expiry.
* :mod:`~repro.lb.policies` — baseline routing policies (round-robin,
  random, weighted-random, least-connections, power-of-two-choices).
* :mod:`~repro.lb.dataplane` — the VIP packet processor.
"""

from repro.lb.backend import Backend, BackendPool
from repro.lb.conntrack import ConnTrack
from repro.lb.dataplane import LoadBalancer
from repro.lb.health import HealthCheckConfig, HealthChecker
from repro.lb.maglev import MaglevTable, next_prime

# NOTE: repro.lb.oracle is intentionally not re-exported here — it
# depends on repro.core (the controller it drives), which depends on
# this package; import it as `from repro.lb.oracle import OracleFeedback`.
from repro.lb.policies import (
    LeastConnections,
    MaglevPolicy,
    PowerOfTwoChoices,
    RandomPolicy,
    RoundRobin,
    RoutingPolicy,
    WeightedRandom,
)

__all__ = [
    "Backend",
    "BackendPool",
    "ConnTrack",
    "HealthChecker",
    "HealthCheckConfig",
    "LoadBalancer",
    "MaglevTable",
    "next_prime",
    "RoutingPolicy",
    "MaglevPolicy",
    "RoundRobin",
    "RandomPolicy",
    "WeightedRandom",
    "LeastConnections",
    "PowerOfTwoChoices",
]
