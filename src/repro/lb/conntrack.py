"""Connection tracking: flow → backend affinity.

The paper's §2.5 requirements include connection-to-server affinity: a
flow must keep hitting the backend it was first assigned, even as the
routing table changes underneath (otherwise mid-connection re-routing
breaks TCP).  The table also drives least-connections policies via
per-backend active-flow counts.

Expiry: an entry dies when the LB sees the client's FIN or RST (after a
linger so retransmissions still match), or after an idle timeout.  The
sweep is amortized — every ``sweep_every`` operations — so the per-packet
path stays O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.units import MILLISECONDS, SECONDS

# Keys are opaque to the table: the LB passes FlowKey tuples in object
# mode and interned integer flow ids in slab mode (int hashing is much
# cheaper than a 4-field tuple hash on the per-packet path).
FlowId = Hashable


class _Entry:
    """Slotted by hand (not a dataclass): one entry per tracked flow on
    the per-packet path, so attribute access and allocation both count."""

    __slots__ = ("backend", "last_seen", "closing_at")

    def __init__(self, backend: str, last_seen: int):
        self.backend = backend
        self.last_seen = last_seen
        self.closing_at: Optional[int] = None  # time FIN/RST observed


@dataclass
class ConnTrackStats:
    """Lifetime counters."""

    inserts: int = 0
    hits: int = 0
    misses: int = 0
    expired_idle: int = 0
    expired_fin: int = 0


class ConnTrack:
    """Flow-affinity table with idle and FIN-driven expiry."""

    def __init__(
        self,
        idle_timeout: int = 10 * SECONDS,
        fin_linger: int = 50 * MILLISECONDS,
        sweep_every: int = 1024,
    ):
        if idle_timeout <= 0 or fin_linger < 0:
            raise ValueError("bad conntrack timeouts")
        self._idle_timeout = idle_timeout
        self._fin_linger = fin_linger
        self._sweep_every = max(1, sweep_every)
        self._entries: Dict[FlowId, _Entry] = {}
        self._flow_counts: Dict[str, int] = {}
        self._ops = 0
        self.stats = ConnTrackStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, flow: FlowId, now: int) -> Optional[str]:
        """Backend for ``flow``, refreshing its idle clock; None if absent."""
        self._maybe_sweep(now)
        entry = self._entries.get(flow)
        if entry is None:
            self.stats.misses += 1
            return None
        if now - entry.last_seen > self._idle_timeout:
            self._remove(flow, idle=True)
            self.stats.misses += 1
            return None
        entry.last_seen = now
        self.stats.hits += 1
        return entry.backend

    def insert(self, flow: FlowId, backend: str, now: int) -> None:
        """Pin ``flow`` to ``backend``."""
        old = self._entries.get(flow)
        if old is not None:
            self._decrement(old.backend)
        self._entries[flow] = _Entry(backend=backend, last_seen=now)
        self._flow_counts[backend] = self._flow_counts.get(backend, 0) + 1
        self.stats.inserts += 1

    def mark_closing(self, flow: FlowId, now: int) -> None:
        """Note a FIN/RST from the client; entry lingers briefly."""
        entry = self._entries.get(flow)
        if entry is not None and entry.closing_at is None:
            entry.closing_at = now

    def active_flows(self, backend: str) -> int:
        """Tracked flows currently pinned to ``backend`` (incl. closing)."""
        return self._flow_counts.get(backend, 0)

    def recount(self) -> Dict[str, int]:
        """Per-backend entry recount straight from the table (O(n)).

        An audit seam for the campaign plane's conntrack invariant: the
        amortized ``_flow_counts`` cache must always agree with a fresh
        scan of the entries — PR 7's orphaned-table bug is exactly the
        class of drift this catches.
        """
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.backend] = counts.get(entry.backend, 0) + 1
        return counts

    def counted(self) -> Dict[str, int]:
        """The amortized per-backend flow counts (the cached view)."""
        return dict(self._flow_counts)

    def live_flows(self, backend: str) -> int:
        """Pinned flows with no FIN/RST observed yet (O(n) scan)."""
        return sum(
            1
            for entry in self._entries.values()
            if entry.backend == backend and entry.closing_at is None
        )

    def _maybe_sweep(self, now: int) -> None:
        self._ops += 1
        if self._ops % self._sweep_every:
            return
        dead = []
        for flow, entry in self._entries.items():
            if entry.closing_at is not None and now - entry.closing_at > self._fin_linger:
                dead.append((flow, False))
            elif now - entry.last_seen > self._idle_timeout:
                dead.append((flow, True))
        for flow, idle in dead:
            self._remove(flow, idle=idle)

    def _remove(self, flow: FlowId, idle: bool) -> None:
        entry = self._entries.pop(flow, None)
        if entry is None:
            return
        self._decrement(entry.backend)
        if idle:
            self.stats.expired_idle += 1
        else:
            self.stats.expired_fin += 1

    def _decrement(self, backend: str) -> None:
        count = self._flow_counts.get(backend, 0)
        if count <= 1:
            self._flow_counts.pop(backend, None)
        else:
            self._flow_counts[backend] = count - 1
