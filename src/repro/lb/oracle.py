"""Oracle baseline: feedback control fed by *true* response latencies.

§2.4 notes that LBs which terminate TCP on both sides see requests and
responses and can measure latency exactly — at a cost that rules them
out at the layer this paper targets.  :class:`OracleFeedback` models
that upper bound without changing the topology: it receives each
completed request's ground-truth latency (from the client's record
stream, attributed by the responding server) and drives the same
estimator + α-shift controller as the in-band design.

Comparing the in-band loop against this oracle isolates the cost of the
paper's *measurement* substitution (T_LB vs T_client) from the cost of
its *control* strategy.
"""

from __future__ import annotations

from typing import Optional

from repro.app.client import RequestRecord
from repro.core.controller import AlphaShiftController, ControllerConfig
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.lb.backend import BackendPool


class OracleFeedback:
    """Controller driven by exact per-request latencies.

    Wire it to a client with ``client.on_record = oracle.on_record``.
    """

    def __init__(
        self,
        pool: BackendPool,
        estimator_config: Optional[EstimatorConfig] = None,
        controller_config: Optional[ControllerConfig] = None,
        control: bool = True,
    ):
        self.estimator = BackendLatencyEstimator(estimator_config)
        self.controller: Optional[AlphaShiftController] = None
        if control:
            self.controller = AlphaShiftController(
                pool, self.estimator, controller_config
            )

    def on_record(self, record: RequestRecord) -> None:
        """Consume one completed-request record from a client."""
        if record.server is None:
            return
        self.estimator.observe(record.server, record.completed_at, record.latency)
        if self.controller is not None:
            self.controller.maybe_shift(record.completed_at)
