"""Routing policies: how the LB picks a backend for a *new* flow.

The paper's baseline is Maglev hashing; the feedback design is Maglev
with controller-driven weights.  The rest are classic alternatives used
as comparison points in the policy-ablation bench: round-robin, uniform
random, weighted random, least-connections, and power-of-two-choices
(with an optional latency signal, approximating C3-style replica
ranking).

A policy only decides *new* flows; affinity for established flows is the
dataplane's job (conntrack).
"""

from __future__ import annotations

import random
import zlib
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from repro.errors import BalancerError
from repro.lb.backend import BackendPool
from repro.lb.conntrack import ConnTrack
from repro.lb.maglev import MaglevTable
from repro.net.addr import FlowKey

if TYPE_CHECKING:  # pragma: no cover - resilience imports lb submodules
    from repro.resilience.breaker import BreakerBoard


class RoutingPolicy(Protocol):
    """Chooses a backend name for a new flow."""

    def select(self, flow: FlowKey, now: int) -> str:
        """Pick a backend for ``flow`` arriving at time ``now``."""
        ...


def _require_backends(pool: BackendPool) -> list:
    healthy = pool.healthy()
    if not healthy:
        raise BalancerError("no healthy backends available")
    return healthy


class MaglevPolicy:
    """Consistent hashing over the (weighted) Maglev table.

    Rebuilds the table whenever the pool's weights or membership change;
    the ``builds`` counter on the table lets tests assert rebuild
    behaviour.
    """

    def __init__(
        self,
        pool: BackendPool,
        table_size: int = 65_537,
        incremental: bool = False,
    ):
        self.pool = pool
        self.table = MaglevTable(table_size, incremental=incremental)
        self._rebuild()
        pool.on_change(self._rebuild)

    def _rebuild(self) -> None:
        weights = {
            b.name: b.weight for b in self.pool.healthy()
        }
        if weights:
            self.table.build(weights)

    def select(self, flow: FlowKey, now: int) -> str:
        _require_backends(self.pool)
        return self.table.lookup_flow(str(flow))


class BreakerGatedPolicy:
    """Wrap any policy with per-backend circuit breakers.

    The inner policy proposes a backend; if that backend's breaker
    refuses admission the flow is *diverted* to a deterministic
    alternative (hash of the flow over the admitted healthy backends),
    so diversion keeps consistent-hashing's stability property.  When
    every alternative is also refused the gate **fails open**: routing
    somewhere beats blackholing the flow, and the probe traffic is what
    lets a half-open breaker observe recovery.

    Attribute access falls through to the inner policy so callers that
    poke at e.g. ``MaglevPolicy.table`` keep working.
    """

    def __init__(
        self, inner: RoutingPolicy, pool: BackendPool, board: "BreakerBoard"
    ):
        self.inner = inner
        self.pool = pool
        self.board = board
        #: Flows steered away from an open backend.
        self.diverted = 0
        #: Flows sent to a refused backend because nothing else admitted.
        self.fail_open = 0

    def select(self, flow: FlowKey, now: int) -> str:
        choice = self.inner.select(flow, now)
        if self.board.allow(choice, now):
            return choice
        candidates = [
            b.name
            for b in sorted(self.pool.healthy(), key=lambda b: b.name)
            if b.name != choice and self.board.allow(b.name, now, admit=False)
        ]
        if not candidates:
            self.fail_open += 1
            return choice
        self.diverted += 1
        pick = candidates[zlib.crc32(str(flow).encode()) % len(candidates)]
        self.board.allow(pick, now, admit=True)
        return pick

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class RoundRobin:
    """Cycle through healthy backends."""

    def __init__(self, pool: BackendPool):
        self.pool = pool
        self._next = 0

    def select(self, flow: FlowKey, now: int) -> str:
        healthy = _require_backends(self.pool)
        backend = healthy[self._next % len(healthy)]
        self._next += 1
        return backend.name


class RandomPolicy:
    """Uniform random choice."""

    def __init__(self, pool: BackendPool, rng: random.Random):
        self.pool = pool
        self.rng = rng

    def select(self, flow: FlowKey, now: int) -> str:
        healthy = _require_backends(self.pool)
        return self.rng.choice(healthy).name


class WeightedRandom:
    """Random choice proportional to backend weights."""

    def __init__(self, pool: BackendPool, rng: random.Random):
        self.pool = pool
        self.rng = rng

    def select(self, flow: FlowKey, now: int) -> str:
        healthy = _require_backends(self.pool)
        total = sum(b.weight for b in healthy)
        if total <= 0:
            return self.rng.choice(healthy).name
        point = self.rng.random() * total
        cumulative = 0.0
        for backend in healthy:
            cumulative += backend.weight
            if point <= cumulative:
                return backend.name
        return healthy[-1].name


class LeastConnections:
    """Send new flows to the backend with the fewest tracked flows."""

    def __init__(self, pool: BackendPool, conntrack: ConnTrack):
        self.pool = pool
        self.conntrack = conntrack

    def select(self, flow: FlowKey, now: int) -> str:
        healthy = _require_backends(self.pool)
        return min(
            healthy, key=lambda b: (self.conntrack.active_flows(b.name), b.name)
        ).name


class PowerOfTwoChoices:
    """Sample two backends, keep the better one.

    "Better" is lower latency when a latency source is provided (and has
    an estimate for both candidates); otherwise fewer active flows.
    """

    def __init__(
        self,
        pool: BackendPool,
        conntrack: ConnTrack,
        rng: random.Random,
        latency_source: Optional[Callable[[str], Optional[float]]] = None,
    ):
        self.pool = pool
        self.conntrack = conntrack
        self.rng = rng
        self.latency_source = latency_source

    def select(self, flow: FlowKey, now: int) -> str:
        healthy = _require_backends(self.pool)
        if len(healthy) == 1:
            return healthy[0].name
        first, second = self.rng.sample(healthy, 2)
        if self.latency_source is not None:
            lat_a = self.latency_source(first.name)
            lat_b = self.latency_source(second.name)
            if lat_a is not None and lat_b is not None:
                return first.name if lat_a <= lat_b else second.name
        conns_a = self.conntrack.active_flows(first.name)
        conns_b = self.conntrack.active_flows(second.name)
        return first.name if conns_a <= conns_b else second.name
