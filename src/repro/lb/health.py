"""Active health checking for the backend pool.

A standard load-balancer subsystem (§2.5 expects LBs to tolerate churn
in the server set): each backend is probed with a real TCP connect on a
fixed interval; ``fall`` consecutive failures mark it unhealthy (the
Maglev table rebuilds without it), ``rise`` consecutive successes bring
it back.  Probes are full transport handshakes over the same pipes data
uses, so a dark server (no listener) or a dead path fails probes
naturally.

Note the contrast with the feedback plane: health checking is *binary*
and *active* (it injects probe traffic); the paper's contribution is
*continuous* and *passive*.  The two compose — health checks gate
membership, feedback tunes weights among the live members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.lb.backend import BackendPool
from repro.net.addr import Endpoint
from repro.sim.engine import Timer
from repro.transport.connection import Connection, TransportConfig
from repro.transport.endpoint import Host
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - resilience imports lb submodules
    from repro.resilience.breaker import BreakerBoard


@dataclass
class HealthCheckConfig:
    """Prober tunables (HAProxy-flavoured fall/rise semantics)."""

    interval: int = 100 * MILLISECONDS
    timeout: int = 50 * MILLISECONDS
    fall: int = 3
    rise: int = 2

    def validate(self) -> None:
        """Raise ValueError on malformed values."""
        if self.interval <= 0 or self.timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        if self.fall < 1 or self.rise < 1:
            raise ValueError("fall and rise must be >= 1")


@dataclass
class ProbeStats:
    """Per-backend probe counters."""

    probes: int = 0
    successes: int = 0
    failures: int = 0
    transitions: int = 0


class _BackendProbe:
    """The probe loop for one backend."""

    def __init__(self, checker: "HealthChecker", name: str, target: Endpoint):
        self.checker = checker
        self.name = name
        self.target = target
        self.consecutive_fail = 0
        self.consecutive_ok = 0
        self.stats = ProbeStats()
        self._conn: Optional[Connection] = None
        self._interval_timer = Timer(checker.host.sim, self._probe)
        self._timeout_timer = Timer(checker.host.sim, self._on_timeout)
        self._interval_timer.start(checker.config.interval)

    def _probe(self) -> None:
        self.stats.probes += 1
        # A short initial RTO keeps a lost SYN from stalling the probe
        # beyond its own timeout window.
        transport = TransportConfig(initial_rto=self.checker.config.timeout)
        self._conn = self.checker.host.connect(self.target, transport)
        self._conn.on_established = lambda conn: self._on_success()
        self._timeout_timer.start(self.checker.config.timeout)

    def _on_success(self) -> None:
        self._timeout_timer.stop()
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self.checker.breakers is not None:
            self.checker.breakers.record_success(
                self.name, self.checker.host.sim.now
            )
        self.stats.successes += 1
        self.consecutive_ok += 1
        self.consecutive_fail = 0
        # A backend the fleet plane drained is no longer a pool member;
        # keep probing (it may be relaunched under the same name) but
        # don't drive health flags for a non-member.
        if (
            self.name in self.checker.pool
            and not self.checker.pool.get(self.name).healthy
            and self.consecutive_ok >= self.checker.config.rise
        ):
            self.stats.transitions += 1
            self.checker.pool.set_healthy(self.name, True)
        self._interval_timer.start(self.checker.config.interval)

    def _on_timeout(self) -> None:
        if self._conn is not None:
            self._conn.abort()
            self._conn = None
        if self.checker.breakers is not None:
            self.checker.breakers.record_failure(
                self.name, self.checker.host.sim.now
            )
        self.stats.failures += 1
        self.consecutive_fail += 1
        self.consecutive_ok = 0
        if (
            self.name in self.checker.pool
            and self.checker.pool.get(self.name).healthy
            and self.consecutive_fail >= self.checker.config.fall
        ):
            self.stats.transitions += 1
            self.checker.pool.set_healthy(self.name, False)
        self._interval_timer.start(self.checker.config.interval)

    def stop(self) -> None:
        self._interval_timer.stop()
        self._timeout_timer.stop()


class HealthChecker:
    """Probes every backend and drives the pool's health flags.

    Parameters
    ----------
    host:
        The transport host probes originate from (needs pipes to each
        backend; in scenarios this is a host colocated with the LB).
    pool:
        The pool whose ``healthy`` flags this checker owns.
    targets:
        Backend name → the concrete endpoint to probe (usually the
        backend's own host and service port, not the VIP).
    breakers:
        Optional circuit-breaker board; every probe outcome is fed in
        as evidence (success/failure), composing active checks with the
        resilience plane's breakers.
    """

    def __init__(
        self,
        host: Host,
        pool: BackendPool,
        targets: Dict[str, Endpoint],
        config: Optional[HealthCheckConfig] = None,
        breakers: Optional["BreakerBoard"] = None,
    ):
        self.host = host
        self.pool = pool
        self.config = config or HealthCheckConfig()
        self.config.validate()
        self.breakers = breakers
        self._probes: Dict[str, _BackendProbe] = {}
        for name, target in targets.items():
            if name not in pool:
                raise ValueError("health target %r not in pool" % name)
            self._probes[name] = _BackendProbe(self, name, target)

    def stats(self, backend: str) -> ProbeStats:
        """Probe counters for one backend."""
        return self._probes[backend].stats

    def stop(self) -> None:
        """Stop all probe loops."""
        for probe in self._probes.values():
            probe.stop()
