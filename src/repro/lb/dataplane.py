"""The load-balancer packet processor.

A :class:`LoadBalancer` is a network node owning a VIP.  For each
client→server packet it:

1. looks the flow up in connection tracking (affinity first — §2.5);
2. otherwise asks the routing policy for a backend (SYN = new flow;
   a non-SYN miss falls back to the policy too, mimicking an LB that
   lost state but still routes consistently via hashing);
3. forwards the packet to the chosen backend over the direct pipe,
   leaving the VIP destination intact (DSR: the backend owns the VIP as
   an alias and answers the client directly);
4. feeds its **taps** — the measurement plane's only input.  A tap sees
   ``(now, flow, backend, packet)`` — exactly the information an XDP
   program would have, and *never* any response traffic.

Per-backend forwarding statistics come for free and let experiments
verify how traffic actually shifted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.lb.backend import BackendPool
from repro.lb.conntrack import ConnTrack
from repro.lb.policies import RoutingPolicy
from repro.net.addr import Endpoint, FlowKey
from repro.net.network import Network
from repro.net.packet import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN, Packet

if TYPE_CHECKING:  # pragma: no cover - resilience imports lb submodules
    from repro.resilience.breaker import BreakerBoard

_FIN_OR_RST = FLAG_FIN | FLAG_RST

#: Signature of a measurement tap.  In slab mode the last argument is
#: the integer slab handle instead of a Packet; the in-repo taps ignore
#: it (they key off ``flow``/``backend``), and cold-path consumers
#: materialize a snapshot via ``network.slab.materialize(handle)``.
PacketTap = Callable[[int, FlowKey, str, Packet], None]


@dataclass
class LoadBalancerStats:
    """Forwarding counters."""

    packets_in: int = 0
    packets_forwarded: int = 0
    packets_dropped_no_backend: int = 0
    new_flows: int = 0
    conntrack_fallbacks: int = 0
    draining_packets: int = 0
    #: Packets forwarded to a backend whose circuit breaker was OPEN at
    #: the time (affinity keeps established flows pinned; only new-flow
    #: placement is breaker-gated).
    packets_to_open_backend: int = 0
    per_backend_packets: Dict[str, int] = field(default_factory=dict)
    per_backend_new_flows: Dict[str, int] = field(default_factory=dict)


class LoadBalancer:
    """L4 load balancer node with DSR forwarding.

    Parameters
    ----------
    network:
        Fabric to attach to (the LB registers itself as a node).
    name:
        Node name (e.g. ``"lb"``).
    vip:
        The virtual endpoint clients address.
    pool, policy, conntrack:
        Backend set, new-flow routing policy, and affinity table.
    breakers:
        Optional per-backend circuit-breaker board (resilience plane);
        only used for the ``packets_to_open_backend`` statistic — the
        routing decision itself is gated by
        :class:`~repro.lb.policies.BreakerGatedPolicy`.
    """

    def __init__(
        self,
        network: Network,
        name: str,
        vip: Endpoint,
        pool: BackendPool,
        policy: RoutingPolicy,
        conntrack: Optional[ConnTrack] = None,
        breakers: Optional["BreakerBoard"] = None,
    ):
        self.network = network
        self.name = name
        self.vip = vip
        self.pool = pool
        self.policy = policy
        # ``is None`` test, not truthiness: an *empty* ConnTrack is falsy
        # (it defines __len__), and the caller-supplied table is always
        # empty at construction time.  ``conntrack or ConnTrack()`` would
        # silently orphan the shared table that routing policies and the
        # fleet plane's autoscaler read their flow counts from.
        self.conntrack = ConnTrack() if conntrack is None else conntrack
        self.breakers = breakers
        self.stats = LoadBalancerStats()
        self._taps: List[PacketTap] = []
        self._metrics = None
        # Slab mode: packets arrive as integer handles; conntrack keys
        # are interned flow ids (ints) instead of FlowKey tuples, which
        # skips the 4-field tuple hash on every lookup.  Policies and
        # taps still receive the interned FlowKey object (free: a list
        # index), so hashing-sensitive policies route identically.
        self._slab = network.slab
        # Prebound hot-path handles: on_packet runs once per forwarded
        # packet, so skip the network.sim.now property chain and the
        # send_via attribute hop.
        self._sim = network.sim
        self._send_via = network.send_via
        network.add_node(self)

    def add_tap(self, tap: PacketTap) -> None:
        """Attach a measurement tap (called per forwarded packet)."""
        self._taps.append(tap)

    def attach_metrics(self, metrics) -> None:
        """Attach dataplane instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Node interface
    # ------------------------------------------------------------------

    def on_packet(self, packet) -> None:
        """Process one client→server packet (object or slab handle)."""
        self.stats.packets_in += 1
        slab = self._slab
        if slab is not None and type(packet) is int:
            if slab.ep_host[slab.dst_i[packet]] != self.vip.host:
                # Not for our VIP: a misrouted packet; drop (and free —
                # the LB owns the handle on delivery).
                self.stats.packets_dropped_no_backend += 1
                slab.free(packet)
                if self._metrics is not None:
                    self._metrics.misroutes.inc()
                return
            flags = slab.flags[packet]
            flow = slab.flow(packet)
            key = slab.fid[packet]
        else:
            if packet.dst.host != self.vip.host:
                # Not for our VIP: a misrouted packet; drop.
                self.stats.packets_dropped_no_backend += 1
                if self._metrics is not None:
                    self._metrics.misroutes.inc()
                return
            flags = packet.flags
            flow = packet.flow
            key = flow

        now = self._sim._now
        backend = self.conntrack.lookup(key, now)
        if backend is not None and backend not in self.pool:
            # The backend left the pool but the flow is pinned: keep
            # draining it (§2.5 — membership churn must not break
            # established connections).  Only new flows avoid it.
            self.stats.draining_packets += 1
        if backend is None:
            is_new = flags & FLAG_SYN and not flags & FLAG_ACK
            backend = self.policy.select(flow, now)
            self.conntrack.insert(key, backend, now)
            if is_new:
                self.stats.new_flows += 1
                self.stats.per_backend_new_flows[backend] = (
                    self.stats.per_backend_new_flows.get(backend, 0) + 1
                )
                if self._metrics is not None:
                    self._metrics.new_flows.labels(backend=backend).inc()
            else:
                self.stats.conntrack_fallbacks += 1

        if flags & _FIN_OR_RST:
            self.conntrack.mark_closing(key, now)

        for tap in self._taps:
            tap(now, flow, backend, packet)

        if self.breakers is not None and self.breakers.is_open(backend, now):
            self.stats.packets_to_open_backend += 1

        self.stats.packets_forwarded += 1
        self.stats.per_backend_packets[backend] = (
            self.stats.per_backend_packets.get(backend, 0) + 1
        )
        if self._metrics is not None:
            self._metrics.packets.labels(backend=backend).inc()
        self._send_via(self.name, backend, packet)

    def backend_share(self) -> Dict[str, float]:
        """Fraction of forwarded packets per backend (for reports)."""
        total = sum(self.stats.per_backend_packets.values())
        if total == 0:
            return {}
        return {
            name: count / total
            for name, count in sorted(self.stats.per_backend_packets.items())
        }
