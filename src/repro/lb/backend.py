"""Backend descriptors and the backend pool.

A backend is a server node reachable from the LB; its ``weight`` is the
knob the feedback controller turns.  The pool preserves insertion order
(determinism) and fires a change listener so dependents (the Maglev
table) can rebuild when weights or membership change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import BalancerError


@dataclass
class Backend:
    """One server behind the VIP."""

    name: str
    weight: float = 1.0
    healthy: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise BalancerError("backend needs a name")
        if self.weight < 0:
            raise BalancerError("backend weight must be >= 0")


class BackendPool:
    """Ordered collection of backends with weight management."""

    def __init__(self, backends: Optional[List[Backend]] = None):
        self._backends: Dict[str, Backend] = {}
        self._listeners: List[Callable[[], None]] = []
        for backend in backends or []:
            self.add(backend)

    def __len__(self) -> int:
        return len(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def add(self, backend: Backend) -> None:
        """Add a backend; duplicate names are rejected."""
        if backend.name in self._backends:
            raise BalancerError("duplicate backend %r" % backend.name)
        self._backends[backend.name] = backend
        self._notify()

    def add_many(self, backends: List[Backend]) -> None:
        """Add several backends atomically (one listener notification).

        The fleet plane scales out in batches; notifying per backend
        would trigger one Maglev rebuild per addition.
        """
        for backend in backends:
            if backend.name in self._backends:
                raise BalancerError("duplicate backend %r" % backend.name)
        for backend in backends:
            self._backends[backend.name] = backend
        if backends:
            self._notify()

    def remove(self, name: str) -> None:
        """Remove a backend (e.g. churn experiments)."""
        if name not in self._backends:
            raise BalancerError("unknown backend %r" % name)
        del self._backends[name]
        self._notify()

    def remove_many(self, names: List[str]) -> None:
        """Remove several backends atomically (one notification)."""
        for name in names:
            if name not in self._backends:
                raise BalancerError("unknown backend %r" % name)
        for name in names:
            del self._backends[name]
        if names:
            self._notify()

    def get(self, name: str) -> Backend:
        """Look up a backend by name."""
        try:
            return self._backends[name]
        except KeyError:
            raise BalancerError("unknown backend %r" % name) from None

    def names(self) -> List[str]:
        """Backend names in insertion order."""
        return list(self._backends)

    def healthy(self) -> List[Backend]:
        """Healthy backends with positive weight, insertion order."""
        return [
            b for b in self._backends.values() if b.healthy and b.weight > 0
        ]

    def weights(self) -> Dict[str, float]:
        """Snapshot of name → weight."""
        return {name: b.weight for name, b in self._backends.items()}

    def set_weight(self, name: str, weight: float) -> None:
        """Set one backend's weight and notify listeners."""
        if weight < 0:
            raise BalancerError("weight must be >= 0, got %r" % weight)
        self.get(name).weight = weight
        self._notify()

    def set_weights(self, weights: Dict[str, float]) -> None:
        """Set several weights atomically (one listener notification)."""
        for name, weight in weights.items():
            if weight < 0:
                raise BalancerError("weight must be >= 0, got %r" % weight)
            self.get(name).weight = weight
        self._notify()

    def set_healthy(self, name: str, healthy: bool) -> None:
        """Mark a backend up or down."""
        self.get(name).healthy = healthy
        self._notify()

    def on_change(self, listener: Callable[[], None]) -> None:
        """Register a membership/weight change listener."""
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener()
