"""Maglev consistent hashing (Eisenbud et al., NSDI '16), plus weights.

Each backend gets a permutation of the table slots derived from two
hashes (*offset* and *skip*); backends take turns claiming their next
unclaimed slot until the table fills.  The construction gives near-equal
slot shares and minimal disruption when membership changes.

The **weighted** extension mirrors what Cilium and Google deploy: each
backend's share of slots is made proportional to its weight.  We compute
exact per-backend slot targets by largest-remainder apportionment and
stop a backend's turns once it reaches its target.  The feedback
controller adjusts weights and rebuilds; existing connections are
unaffected because the dataplane consults connection tracking first.

The **incremental** mode (``MaglevTable(size, incremental=True)``) is
the fleet plane's membership-churn path: instead of reassigning every
slot from scratch, a rebuild frees exactly the slots whose owner's
target shrank (or who left the pool) and lets under-target backends
claim only those freed slots by continuing their permutation walk.
Slot movement is therefore bounded by the apportionment delta — adding
one backend to *n* remaps ≈ ``size/(n+1)`` slots instead of shuffling
the whole table — which is what keeps a 100 → 1000-backend scale-out
cheap and conntrack-friendly.  Incremental tables satisfy the same
slot-target invariants as full builds but are *not* byte-identical to
them, so the mode is opt-in and default-off.

Hashes are keyed BLAKE2b digests — deterministic across processes (no
``PYTHONHASHSEED`` dependence), which the reproducibility story needs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BalancerError


def is_prime(n: int) -> bool:
    """Trial-division primality (table sizes are small enough)."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    while not is_prime(n):
        n += 1
    return n


def _stable_hash(value: str, salt: bytes) -> int:
    digest = hashlib.blake2b(value.encode("utf-8"), key=salt, digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class MaglevTable:
    """A Maglev lookup table over a set of (possibly weighted) backends.

    Parameters
    ----------
    size:
        Table size; must be prime and comfortably larger than the
        backend count (the paper's LB uses Maglev's default 65537; tests
        use small primes).
    incremental:
        When True, rebuilds patch the existing table instead of
        reassigning every slot: only slots whose owner's apportionment
        target changed move.  Off by default (full rebuilds are the
        canonical Maglev construction and what the golden reports pin).
    """

    def __init__(self, size: int = 65_537, incremental: bool = False):
        if not is_prime(size):
            raise BalancerError("Maglev table size must be prime, got %d" % size)
        self._size = size
        self._incremental = incremental
        self._table: List[Optional[str]] = [None] * size
        self._backends: List[str] = []
        self._slot_counts: Dict[str, int] = {}
        #: Per-backend owned slots in claim order (incremental frees
        #: the most recently claimed first) and permutation positions.
        self._owned: Dict[str, List[int]] = {}
        self._next_index: Dict[str, int] = {}
        self._offsets: Dict[str, int] = {}
        self._skips: Dict[str, int] = {}
        self.builds = 0
        #: Slots that changed owner in the last build (incremental mode
        #: tracks this exactly; full rebuilds leave it at None).
        self.last_moved: Optional[int] = None

    @property
    def size(self) -> int:
        """Number of slots."""
        return self._size

    @property
    def backends(self) -> List[str]:
        """Backends in the current table."""
        return list(self._backends)

    def slot_counts(self) -> Dict[str, int]:
        """Slots owned by each backend (proportional to weight)."""
        return dict(self._slot_counts)

    def build(self, weights: Dict[str, float]) -> None:
        """(Re)build the table for ``weights`` (name → weight > 0).

        Zero-weight backends are excluded entirely (but a feedback
        controller normally keeps a weight floor so every backend keeps
        receiving probe traffic).
        """
        active = {name: w for name, w in weights.items() if w > 0}
        if not active:
            raise BalancerError("cannot build Maglev table with no backends")
        if len(active) > self._size:
            raise BalancerError(
                "more backends (%d) than table slots (%d)"
                % (len(active), self._size)
            )

        names = sorted(active)  # stable order, independent of dict order
        targets = self._apportion(names, active)
        if self._incremental and self._backends:
            self._patch(names, targets)
        else:
            self._build_full(names, targets)
        self._backends = names
        self._slot_counts = {name: len(self._owned[name]) for name in names}
        self.builds += 1

    def _perm(self, name: str) -> Tuple[int, int]:
        """Cached (offset, skip) of ``name``'s slot permutation."""
        offset = self._offsets.get(name)
        if offset is None:
            offset = _stable_hash(name, b"maglev-offset") % self._size
            self._offsets[name] = offset
            self._skips[name] = (
                _stable_hash(name, b"maglev-skip") % (self._size - 1) + 1
            )
        return offset, self._skips[name]

    def _build_full(self, names: Sequence[str], targets: Dict[str, int]) -> None:
        """The canonical construction: reassign every slot from scratch."""
        table: List[Optional[str]] = [None] * self._size
        owned: Dict[str, List[int]] = {name: [] for name in names}
        next_index = {name: 0 for name in names}
        filled = 0
        # Round-robin turns; a backend stops once it hits its slot target.
        while filled < self._size:
            progressed = False
            for name in names:
                mine = owned[name]
                if len(mine) >= targets[name]:
                    continue
                progressed = True
                offset, skip = self._perm(name)
                j = next_index[name]
                while True:
                    slot = (offset + j * skip) % self._size
                    j += 1
                    if table[slot] is None:
                        table[slot] = name
                        mine.append(slot)
                        filled += 1
                        break
                next_index[name] = j
                if filled == self._size:
                    break
            if not progressed:  # all targets met (can't happen: targets sum to size)
                break

        self._table = table
        self._owned = owned
        self._next_index = next_index
        self.last_moved = None

    def _patch(self, names: Sequence[str], targets: Dict[str, int]) -> None:
        """Incremental rebuild: move only slots whose target changed.

        Phase 1 frees slots from backends over their new target (most
        recently claimed first) and from backends that left; phase 2
        lets under-target backends claim exactly those freed slots by
        continuing their permutation walk (round-robin turns, mirroring
        the full build's fairness).  Targets sum to the table size, so
        frees and claims balance and the table ends full.
        """
        table = self._table
        freed = 0
        for name in list(self._owned):
            target = targets.get(name, 0)
            mine = self._owned[name]
            while len(mine) > target:
                table[mine.pop()] = None
                freed += 1
            if target == 0:
                del self._owned[name]
                self._next_index.pop(name, None)

        self.last_moved = freed
        remaining = freed
        while remaining > 0:
            progressed = False
            for name in names:
                mine = self._owned.get(name)
                if mine is None:
                    mine = self._owned[name] = []
                if len(mine) >= targets[name]:
                    continue
                progressed = True
                offset, skip = self._perm(name)
                j = self._next_index.get(name, 0)
                while True:
                    slot = (offset + j * skip) % self._size
                    j += 1
                    if table[slot] is None:
                        table[slot] = name
                        mine.append(slot)
                        remaining -= 1
                        break
                self._next_index[name] = j
                if remaining == 0:
                    break
            if not progressed:  # pragma: no cover - frees always balance claims
                break

    def _apportion(
        self, names: Sequence[str], weights: Dict[str, float]
    ) -> Dict[str, int]:
        """Largest-remainder apportionment of slots to weights.

        Every active backend is guaranteed at least one slot, so a
        low-weight backend never silently vanishes from the table.
        """
        total = sum(weights[name] for name in names)
        raw = {name: self._size * weights[name] / total for name in names}
        floors = {name: max(1, int(raw[name])) for name in names}
        allocated = sum(floors.values())
        remainder = self._size - allocated
        if remainder > 0:
            by_frac = sorted(
                names, key=lambda n: (raw[n] - int(raw[n]), n), reverse=True
            )
            for name in (by_frac * (remainder // len(names) + 1))[:remainder]:
                floors[name] += 1
        elif remainder < 0:
            # Over-allocation can only come from the >=1 guarantee; take
            # slots back from the largest holders.
            by_size = sorted(names, key=lambda n: (floors[n], n), reverse=True)
            index = 0
            while remainder < 0:
                name = by_size[index % len(by_size)]
                if floors[name] > 1:
                    floors[name] -= 1
                    remainder += 1
                index += 1
        return floors

    def lookup(self, flow_hash: int) -> str:
        """Map a flow hash to a backend name."""
        if not self._backends:
            raise BalancerError("Maglev table not built")
        backend = self._table[flow_hash % self._size]
        assert backend is not None  # build() fills every slot
        return backend

    def lookup_flow(self, flow_str: str) -> str:
        """Hash an opaque flow identity string and look it up."""
        return self.lookup(_stable_hash(flow_str, b"maglev-flow"))

    def disruption(self, other: "MaglevTable") -> float:
        """Fraction of slots mapped differently vs ``other`` (same size)."""
        if other.size != self._size:
            raise BalancerError("cannot compare tables of different sizes")
        changed = sum(
            1 for a, b in zip(self._table, other._table) if a != b
        )
        return changed / self._size
