"""repro — In-band feedback control for load balancers (HotNets '22).

A complete, simulation-backed reproduction of *"Load Balancers Need
In-Band Feedback Control"* (Shobhana, Narayana, Nath; HotNets 2022):

* ``repro.core`` — the paper's contribution: FIXEDTIMEOUT (Alg. 1),
  ENSEMBLETIMEOUT (Alg. 2), per-backend latency estimation, and the
  α-shift feedback controller.
* ``repro.sim`` / ``repro.net`` / ``repro.transport`` / ``repro.app`` /
  ``repro.lb`` — the substrates: a deterministic discrete-event engine,
  a DSR-capable network model, a TCP-like flow-controlled transport, a
  memcached-like application layer with a memtier-like workload
  generator, and a Maglev load-balancer dataplane.
* ``repro.harness`` — scenario builders and reports that regenerate the
  paper's figures (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro.harness import ScenarioConfig, run_scenario
    from repro import units
    result = run_scenario(ScenarioConfig(duration=units.seconds(2)))
    print(result.report())
"""

from repro import units
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["units", "ReproError", "__version__"]
