"""Exporting experiment series to CSV (for external plotting).

The benches print ASCII; anyone regenerating the paper's figures in a
plotting tool wants the raw series.  These helpers write the standard
result objects to simple headered CSV files with no third-party
dependencies.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Sequence, Tuple, Union

from repro.telemetry.timeseries import TimeSeries

PathLike = Union[str, pathlib.Path]


def write_csv(
    path: PathLike, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> int:
    """Write a headered CSV; returns the number of data rows written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_timeseries(path: PathLike, series: TimeSeries) -> int:
    """Write a :class:`TimeSeries` as ``time_ns,value`` rows."""
    return write_csv(path, ("time_ns", series.name or "value"), series.items())


def export_latency_series(
    path: PathLike, series: Sequence[Tuple[int, float]], label: str = "p95_ns"
) -> int:
    """Write a bucketed latency series (e.g. Fig 3's p95 line)."""
    return write_csv(path, ("bucket_start_ns", label), series)


def export_shift_events(path: PathLike, events) -> int:
    """Write controller :class:`~repro.core.controller.ShiftEvent` rows.

    Includes each shift's ``reason`` (hysteresis-pass vs the resilience
    ladder's mode-change / post-fallback-rebalance) so exported traces
    distinguish normal control activity from recovery choreography.
    """
    rows = (
        (
            e.time,
            e.from_backend,
            "%.6g" % e.worst_estimate,
            "%.6g" % e.best_estimate,
            e.reason,
            ";".join(
                "%s=%.6g" % (name, weight)
                for name, weight in sorted(e.weights_after.items())
            ),
        )
        for e in events
    )
    return write_csv(
        path,
        (
            "time_ns",
            "from_backend",
            "worst_estimate_ns",
            "best_estimate_ns",
            "reason",
            "weights_after",
        ),
        rows,
    )


def export_metrics(path: PathLike, registry) -> int:
    """Write a :class:`~repro.obs.metrics.Registry` as flat CSV rows.

    Counters and gauges become one row each; histograms become two
    (``<name>_count`` and ``<name>_sum``), keeping the file a plain
    metric/value table.  Labels are ``;``-joined sorted ``k=v`` pairs.
    """

    def rows():
        for name, family in registry.to_json().items():
            kind = family["type"]
            for sample in family["samples"]:
                labels = ";".join(
                    "%s=%s" % (k, v)
                    for k, v in sorted(sample["labels"].items())
                )
                if kind == "histogram":
                    yield (name + "_count", kind, labels, sample["count"])
                    yield (name + "_sum", kind, labels, "%.6g" % sample["sum"])
                else:
                    yield (name, kind, labels, sample["value"])

    return write_csv(path, ("metric", "type", "labels", "value"), rows())


def export_trace_events(path: PathLike, tracer) -> int:
    """Write a :class:`~repro.obs.trace.CausalTracer` as one flat CSV.

    All span kinds share one schema (``kind`` column discriminates);
    cells that do not apply to a kind are left empty.  Rows are sorted
    by time so the file reads as a causal timeline.
    """
    headers = (
        "kind",
        "time_ns",
        "request_id",
        "client",
        "port",
        "retry",
        "flow",
        "backend",
        "server",
        "t_lb_ns",
        "delta_ns",
        "latency_ns",
    )
    rows = []
    for span in tracer.sends:
        rows.append(
            (
                "send",
                span.time,
                span.request_id,
                span.client,
                span.port,
                int(span.retry),
                "", "", "", "", "", "",
            )
        )
    for flow, span in tracer.routes.items():
        rows.append(
            (
                "route",
                span.time,
                "", "", "", "",
                str(flow),
                span.backend,
                "", "", "", "",
            )
        )
    for span in tracer.responses.values():
        rows.append(
            (
                "response",
                span.time,
                span.request_id,
                "", "", "", "", "",
                span.server,
                "", "",
                span.latency,
            )
        )
    for span in tracer.samples:
        rows.append(
            (
                "sample",
                span.time,
                "", "", "", "",
                str(span.flow),
                span.backend,
                "",
                span.t_lb,
                span.delta,
                "",
            )
        )
    rows.sort(key=lambda row: row[1])
    return write_csv(path, headers, rows)


def export_records(path: PathLike, records) -> int:
    """Write client RequestRecords (the full ground-truth request log)."""
    rows = (
        (
            r.request_id,
            r.op.value,
            r.sent_at,
            r.completed_at,
            r.latency,
            r.server or "",
            r.local_port,
        )
        for r in records
    )
    return write_csv(
        path,
        (
            "request_id",
            "op",
            "sent_at_ns",
            "completed_at_ns",
            "latency_ns",
            "server",
            "local_port",
        ),
        rows,
    )
