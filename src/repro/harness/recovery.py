"""Time-to-recovery: how long a fault's latency damage lasted.

One definition, shared by ``repro resilience`` and the ``repro
compare`` leaderboard (and pinned by a unit test), so "recovery" means
the same thing everywhere:

1. The **baseline** is the ``q``-quantile of GET latencies completed
   between the configured warmup and the fault onset.
2. The run **degrades** at the first ``bucket``-wide window at or after
   the onset whose ``q``-quantile exceeds ``factor ×`` baseline.
3. It **recovers** at the first later window back at or below that
   threshold — whether because the fault window ended or because the
   controller routed around a still-active fault (the Fig 3 case, where
   the injected delay never ends but the feedback arm recovers anyway).

:func:`time_to_recovery` returns the nanoseconds from fault onset to
the recovery window, ``0`` if the run never degraded, and ``None`` if
it degraded and never came back (or the window cannot be judged — no
fault, no pre-fault traffic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.app.protocol import Op
from repro.telemetry.quantiles import exact_quantile
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.harness.config import ScenarioConfig
    from repro.harness.runner import ScenarioResult

#: Recovery = per-bucket quantile back within this factor of baseline.
DEFAULT_FACTOR = 1.5
#: Judgement granularity: one verdict per this much simulated time.
DEFAULT_BUCKET = 100 * MILLISECONDS
#: The ranked tail quantile (matches the paper's p95 focus).
DEFAULT_QUANTILE = 0.95


def fault_window(config: "ScenarioConfig") -> Optional[Tuple[int, Optional[int]]]:
    """The overall ``(onset, end)`` fault window of a scenario config.

    Onset is the earliest fault start; end is the latest expiry, or
    ``None`` if any fault runs to the end of the run.  Returns ``None``
    for a fault-free config.
    """
    faults = config.all_faults()
    if not faults:
        return None
    onset = min(f.start for f in faults)
    ends = []
    for f in faults:
        if f.duration is None:
            return onset, None
        ends.append(f.start + f.duration)
    return onset, max(ends)


def time_to_recovery(
    result: "ScenarioResult",
    window: Optional[Tuple[int, Optional[int]]],
    factor: float = DEFAULT_FACTOR,
    bucket: int = DEFAULT_BUCKET,
    q: float = DEFAULT_QUANTILE,
) -> Optional[int]:
    """Nanoseconds from fault onset until tail latency re-entered the
    ``factor ×`` pre-fault baseline band; ``0`` if it never left it,
    ``None`` if it never returned (or the run cannot be judged)."""
    if window is None:
        return None
    onset = window[0]
    baseline_values = result.latencies(
        op=Op.GET, start=result.config.warmup or None, end=onset
    )
    if not baseline_values:
        return None  # no pre-fault traffic: nothing to recover *to*
    threshold = factor * exact_quantile(baseline_values, q)
    series = result.latency_series(bucket=bucket, op=Op.GET, q=q)
    degraded_at: Optional[int] = None
    for t, value in series:
        if t < onset and degraded_at is None:
            continue
        if degraded_at is None:
            if value > threshold:
                degraded_at = t
            continue
        if value <= threshold:
            return t - onset
    if degraded_at is None:
        return 0
    return None
