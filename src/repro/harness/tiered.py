"""The dependency scenario (open question #3).

Topology::

    clients ─► lb ─► frontend0 ─┐
            ╲    ╲              ├─► dep0   (shared dependency)
             ─►   ─► frontend1 ─┘

    frontends ─► clients (direct, DSR)

Two experiments share it, differing only in where the fault lands:

* ``fault="frontend"`` — extra delay on the LB→frontend0 pipe: one
  frontend is genuinely slow.  Shifting traffic helps; the feedback LB's
  tail recovers.
* ``fault="dependency"`` — extra service delay at dep0: *both* frontends
  slow down identically.  No routing decision at the LB can help; a good
  controller should recognize the symmetry and hold still (the paper's
  question is how to tell these cases apart — here the per-backend
  estimates answer it: they inflate together).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.app.client import MemtierClient, MemtierConfig
from repro.app.server import ServerApp, ServerConfig
from repro.app.servicetime import Deterministic
from repro.app.tiered import TieredServerApp, TieredServerConfig
from repro.app.variability import StepInjector
from repro.core.feedback import FeedbackConfig, InbandFeedback
from repro.errors import ConfigError
from repro.faults.injector import Injector
from repro.faults.model import DelayFault, FaultSpec
from repro.faults.schedule import FaultSchedule
from repro.lb.backend import Backend, BackendPool
from repro.lb.dataplane import LoadBalancer
from repro.lb.policies import MaglevPolicy
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import PacketSlab
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.transport.endpoint import Host
from repro.units import (
    GIGABITS_PER_SECOND,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
)


@dataclass
class TieredScenarioConfig:
    """Knobs for the dependency experiment."""

    seed: int = 17
    duration: int = 2 * SECONDS
    n_frontends: int = 2
    #: Deprecated alias: ``"frontend"`` becomes a chaos-plane
    #: :class:`DelayFault` on the LB→frontend0 pipe; ``"dependency"``
    #: keeps its service-side StepInjector (the dependency app is not an
    #: LB backend, so it sits below the chaos plane's selectors).
    fault: str = "dependency"          # "dependency" | "frontend" | "none"
    fault_extra: int = 1 * MILLISECONDS
    vip_port: int = 11211
    dep_port: int = 12000
    memtier: MemtierConfig = field(default_factory=MemtierConfig)
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    #: Declarative chaos-plane faults targeting frontends (see
    #: :mod:`repro.faults`); composed with the legacy ``fault`` alias.
    faults: List[FaultSpec] = field(default_factory=list)

    @property
    def fault_at(self) -> int:
        """Fault onset: the midpoint of the run."""
        return self.duration // 2

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.fault not in ("dependency", "frontend", "none"):
            raise ConfigError("unknown fault kind %r" % self.fault)
        if self.n_frontends < 1:
            raise ConfigError("need at least one frontend")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        for fault in self.faults:
            fault.validate()

    def all_faults(self) -> List[FaultSpec]:
        """Chaos-plane faults: legacy ``fault="frontend"`` plus ``faults``."""
        faults = list(self.faults)
        if self.fault == "frontend":
            faults.insert(
                0,
                DelayFault(
                    start=self.fault_at,
                    extra=self.fault_extra,
                    node="frontend0",
                ),
            )
        return faults


@dataclass
class TieredResult:
    """Everything the dependency benches read."""

    config: TieredScenarioConfig
    client: MemtierClient
    feedback: InbandFeedback
    pool: BackendPool
    frontends: List[TieredServerApp]
    dependency: ServerApp
    injector: Optional[Injector] = None

    def latencies(self, start: int = 0) -> List[int]:
        """Client-side latencies completing after ``start``."""
        return [
            r.latency for r in self.client.records if r.completed_at >= start
        ]

    def estimate_gap(self) -> Optional[float]:
        """Worst−best backend estimate (ns) at the end of the run."""
        ranked = self.feedback.estimator.worst_and_best()
        if ranked is None:
            return None
        worst, best = ranked
        return worst.value - best.value

    def shifts_after_fault(self) -> int:
        """Weight updates executed after the fault onset."""
        return sum(
            1 for e in self.feedback.shift_events() if e.time >= self.config.fault_at
        )


def run_tiered(config: Optional[TieredScenarioConfig] = None) -> TieredResult:
    """Build and run the two-tier scenario."""
    config = config or TieredScenarioConfig()
    config.validate()
    sim = Simulator()
    network = Network(sim, PacketSlab())
    streams = RandomStreams(config.seed)
    bw = 10 * GIGABITS_PER_SECOND

    frontend_names = ["frontend%d" % i for i in range(config.n_frontends)]
    pool = BackendPool([Backend(name) for name in frontend_names])
    lb = LoadBalancer(
        network,
        "lb",
        Endpoint("vip", config.vip_port),
        pool,
        MaglevPolicy(pool, table_size=1021),
    )
    feedback = InbandFeedback(lb, config.feedback)

    # Dependency host + app (with the optional service-side fault).
    dep_host = Host(network, "dep0")
    dep_injector = None
    if config.fault == "dependency":
        dep_injector = StepInjector(extra=config.fault_extra, start=config.fault_at)
    dep_config = ServerConfig(
        port=config.dep_port,
        workers=4,
        service_model=Deterministic(20 * MICROSECONDS),
    )
    if dep_injector is not None:
        dep_config.injector = dep_injector
    dependency = ServerApp(
        dep_host, dep_config, streams.get("dep.service")
    )

    # Frontends.
    frontends: List[TieredServerApp] = []
    for name in frontend_names:
        host = Host(network, name)
        network.add_alias("vip", name)
        network.connect("lb", name, prop_delay=40 * MICROSECONDS, bandwidth_bps=bw)
        network.connect(name, "dep0", prop_delay=20 * MICROSECONDS, bandwidth_bps=bw)
        network.connect("dep0", name, prop_delay=20 * MICROSECONDS, bandwidth_bps=bw)
        network.add_route(name, "dep0", "dep0")
        frontends.append(
            TieredServerApp(
                host,
                TieredServerConfig(
                    port=config.vip_port,
                    dependency=Endpoint("dep0", config.dep_port),
                ),
                streams.get("frontend.%s" % name),
                service_endpoint=Endpoint("vip", config.vip_port),
            )
        )

    # Client.
    client_host = Host(network, "client0")
    network.connect("client0", "lb", prop_delay=10 * MICROSECONDS, bandwidth_bps=bw)
    network.set_default_route("client0", "lb")
    for name in frontend_names:
        network.connect(name, "client0", prop_delay=50 * MICROSECONDS, bandwidth_bps=bw)
    client = MemtierClient(
        client_host,
        Endpoint("vip", config.vip_port),
        config.memtier,
        streams.get("client.workload"),
    )

    # Chaos plane: the legacy frontend-side fault and any declarative
    # faults share the injector (no direct pipe pokes in harness code).
    injector = None
    faults = config.all_faults()
    if faults:
        injector = Injector(
            sim,
            network,
            server_names=frontend_names,
            client_names=["client0"],
            lb_name="lb",
            pool=pool,
            servers={f.host.name: f for f in frontends},
            loss_rng=streams.get("faults.loss"),
            jitter_rng=streams.get("faults.jitter"),
        )
        injector.arm(FaultSchedule(faults), config.duration)

    client.start()
    sim.run_until(config.duration)
    client.stop()

    return TieredResult(
        config=config,
        client=client,
        feedback=feedback,
        pool=pool,
        frontends=frontends,
        dependency=dependency,
        injector=injector,
    )
