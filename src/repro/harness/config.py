"""Declarative scenario configuration.

A :class:`ScenarioConfig` captures everything about one experiment:
topology delays, server behaviour, client workload, LB policy, the
feedback loop, and mid-run fault injections.  Identical configs (same
seed) produce identical traces.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from repro.app.client import MemtierConfig
from repro.app.server import ServerConfig
from repro.core.feedback import FeedbackConfig
from repro.errors import ConfigError
from repro.faults.model import DelayFault, FaultSpec
from repro.fleet.config import FleetConfig
from repro.insight.config import InsightConfig
from repro.obs.config import ObsConfig
from repro.resilience.config import ResilienceConfig
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS, SECONDS


class PolicyName(enum.Enum):
    """Routing policy selector for scenarios."""

    MAGLEV = "maglev"              # plain Maglev (the paper's baseline)
    FEEDBACK = "feedback"          # Maglev + in-band feedback control
    ORACLE = "oracle"              # Maglev + control on true latencies
    ROUND_ROBIN = "round_robin"
    RANDOM = "random"
    WEIGHTED_RANDOM = "weighted_random"
    LEAST_CONNECTIONS = "least_connections"
    POWER_OF_TWO = "power_of_two"


@dataclass
class NetworkParams:
    """Topology delays and link properties.

    Defaults model the paper's deployment assumption: clients *close* to
    the LB (tier-to-tier / CDN-edge), servers one hop further.  The
    direct server→client return path is the sum of the forward legs, so
    uninflated end-to-end RTT ≈ 2·(client↔LB + LB↔server) plus
    serialization.
    """

    client_lb_delay: int = 10 * MICROSECONDS
    lb_server_delay: int = 40 * MICROSECONDS
    server_client_delay: int = 50 * MICROSECONDS
    bandwidth_bps: Optional[int] = 10 * GIGABITS_PER_SECOND
    queue_capacity: int = 4096
    #: Per-client overrides of ``client_lb_delay`` (open question #1,
    #: "far, non-equidistant clients"); index-aligned with client names.
    #: The matching server→client return delay is raised by the same
    #: amount so a far client is far in both directions.
    client_lb_delay_overrides: Optional[List[int]] = None

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if min(
            self.client_lb_delay,
            self.lb_server_delay,
            self.server_client_delay,
        ) < 0:
            raise ConfigError("delays must be >= 0")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive or None")
        if self.client_lb_delay_overrides is not None and any(
            d < 0 for d in self.client_lb_delay_overrides
        ):
            raise ConfigError("client delay overrides must be >= 0")

    def client_delay(self, index: int) -> int:
        """Effective client→LB one-way delay for client ``index``."""
        overrides = self.client_lb_delay_overrides
        if overrides is not None and index < len(overrides):
            return overrides[index]
        return self.client_lb_delay


@dataclass
class DelayInjection:
    """Extra one-way delay on the LB→server pipe of one backend.

    .. deprecated::
        ``DelayInjection`` is a compatibility alias kept so existing
        benchmarks and configs keep working unchanged.  New code should
        put a :class:`repro.faults.DelayFault` in
        ``ScenarioConfig.faults`` instead; at build time every injection
        is converted (:meth:`to_fault`) and routed through the chaos
        plane like any other fault.

    This is the Fig 3 stimulus: ``DelayInjection(at=seconds(10),
    server="server0", extra=1*MILLISECONDS)``.  ``end=None`` keeps the
    inflation until the run ends.
    """

    at: int
    server: str
    extra: int
    end: Optional[int] = None

    def __post_init__(self) -> None:
        warnings.warn(
            "DelayInjection is deprecated; put a repro.faults.DelayFault "
            "in ScenarioConfig.faults instead",
            DeprecationWarning,
            stacklevel=2,
        )

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.at < 0 or self.extra < 0:
            raise ConfigError("injection times/delays must be >= 0")
        if self.end is not None and self.end <= self.at:
            raise ConfigError("injection end must follow start")

    def to_fault(self) -> DelayFault:
        """The equivalent chaos-plane fault spec."""
        duration = None if self.end is None else self.end - self.at
        return DelayFault(
            start=self.at,
            duration=duration,
            extra=self.extra,
            node=self.server,
        )


@dataclass
class ScenarioConfig:
    """Everything one experiment needs."""

    seed: int = 1
    duration: int = 5 * SECONDS
    n_clients: int = 1
    n_servers: int = 2
    vip_port: int = 11211
    policy: PolicyName = PolicyName.MAGLEV
    maglev_size: int = 1021
    network: NetworkParams = field(default_factory=NetworkParams)
    memtier: MemtierConfig = field(default_factory=MemtierConfig)
    #: One template replicated per server, unless per-server overrides given.
    server: ServerConfig = field(default_factory=ServerConfig)
    server_overrides: Optional[List[ServerConfig]] = None
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    #: Deprecated alias for ``faults`` — converted via
    #: :meth:`DelayInjection.to_fault` at build time.
    injections: List[DelayInjection] = field(default_factory=list)
    #: Declarative chaos-plane faults (see :mod:`repro.faults`).
    faults: List[FaultSpec] = field(default_factory=list)
    #: Signal-integrity guardrails (see :mod:`repro.resilience`);
    #: disabled by default, making the plane structurally absent.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Observability plane (see :mod:`repro.obs`); disabled by default,
    #: making runs byte-identical to builds without it.
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Fleet plane (see :mod:`repro.fleet`); disabled by default.  When
    #: enabled the topology provisions ``fleet.max_backends`` servers
    #: and the pool starts with the first ``n_servers`` of them.
    fleet: FleetConfig = field(default_factory=FleetConfig)
    #: Insight plane (see :mod:`repro.insight`); disabled by default,
    #: making runs byte-identical to builds without it.
    insight: InsightConfig = field(default_factory=InsightConfig)
    #: Ignore requests completing before this time in summary stats.
    warmup: int = 0
    #: Slab dataplane: store packet records in a :class:`PacketSlab`
    #: (flat parallel arrays addressed by integer handle) instead of
    #: per-packet objects.  Byte-identical results either way — the
    #: differential suite proves it — so this stays on; ``False`` keeps
    #: the object dataplane for A/B runs and the differential tests.
    slab: bool = True

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.n_clients <= 0 or self.n_servers <= 0:
            raise ConfigError("need at least one client and one server")
        if self.policy is PolicyName.POWER_OF_TWO and self.n_servers < 2:
            raise ConfigError("power-of-two needs >= 2 servers")
        if self.server_overrides is not None and len(self.server_overrides) != self.n_servers:
            raise ConfigError(
                "server_overrides must have exactly n_servers entries"
            )
        if self.warmup < 0 or self.warmup >= self.duration:
            raise ConfigError("warmup must be within the run duration")
        self.network.validate()
        self.memtier.validate()
        self.resilience.validate()
        self.obs.validate()
        self.fleet.validate()
        self.insight.validate()
        if self.fleet.enabled:
            if self.fleet.max_backends < self.n_servers:
                raise ConfigError(
                    "fleet.max_backends must cover the initial n_servers"
                )
            if self.maglev_size <= self.fleet.max_backends:
                raise ConfigError(
                    "maglev_size must exceed fleet.max_backends "
                    "(every backend needs at least one slot)"
                )
            if self.server_overrides is not None:
                raise ConfigError(
                    "server_overrides are not supported with the fleet plane"
                )
        for injection in self.injections:
            injection.validate()
            if injection.at >= self.duration:
                raise ConfigError("injection starts after the run ends")
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigError(
                    "faults entries must be FaultSpec instances, got %r" % (fault,)
                )
            fault.validate()
            if fault.start >= self.duration:
                raise ConfigError(
                    "fault %s starts after the run ends" % fault.describe()
                )

    def all_faults(self) -> List[FaultSpec]:
        """Every fault for this run: legacy injections plus ``faults``."""
        return [inj.to_fault() for inj in self.injections] + list(self.faults)

    def server_config(self, index: int) -> ServerConfig:
        """Effective config for server ``index``."""
        if self.server_overrides is not None:
            return self.server_overrides[index]
        return self.server

    def server_name(self, index: int) -> str:
        """Canonical node name for server ``index``."""
        return "server%d" % index

    def client_name(self, index: int) -> str:
        """Canonical node name for client ``index``."""
        return "client%d" % index
