"""Experiment harness: scenario building, running, and reporting.

* :mod:`~repro.harness.config` — declarative scenario configuration.
* :mod:`~repro.harness.scenario` — builds the DSR topology (clients →
  LB → servers, direct return paths) from a config.
* :mod:`~repro.harness.runner` — runs scenarios and collects results.
* :mod:`~repro.harness.report` — ASCII tables/series for the terminal.
* :mod:`~repro.harness.figures` — the paper's experiments (Fig 2a, 2b,
  Fig 3, reaction time, error decomposition).
* :mod:`~repro.harness.ablations` — parameter sweeps around the design.

Fault injection lives in :mod:`repro.faults` (the chaos plane);
``ScenarioConfig.faults`` is the hook that arms it on a built scenario.
"""

from repro.harness.config import (
    DelayInjection,
    NetworkParams,
    PolicyName,
    ScenarioConfig,
)
from repro.harness.scenario import Scenario, build_scenario
from repro.harness.runner import ScenarioResult, run_scenario
from repro.harness.report import format_series, format_table
from repro.harness.figures import (
    BacklogConfig,
    Fig3Config,
    run_error_decomposition,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_reaction,
)
from repro.harness.tiered import TieredResult, TieredScenarioConfig, run_tiered

__all__ = [
    "BacklogConfig",
    "Fig3Config",
    "run_fig2a",
    "run_fig2b",
    "run_fig3",
    "run_reaction",
    "run_error_decomposition",
    "NetworkParams",
    "DelayInjection",
    "PolicyName",
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "ScenarioResult",
    "run_scenario",
    "format_table",
    "format_series",
    "TieredResult",
    "TieredScenarioConfig",
    "run_tiered",
]
