"""The elastic scenario: diurnal + burst load against an autoscaled fleet.

This is the fleet plane's deliverable experiment and the stress
workload ROADMAP items 1 and 3 reuse.  A scenario starts with
``initial_backends`` of a ``max_backends``-server universe in service;
clients ramp up in a staggered diurnal wave (each starts a bit later
than the last, and the wave recedes near the end of the run), a
scheduled action guarantees the fleet peaks at full capacity at the
midpoint, target tracking handles the rest, and — when ``burst`` is on
— the ``elastic`` chaos preset drops correlated delay/jitter/loss on
every path while hundreds of cold backends are still warming.

Measured, per controller:

* **affinity violations** — must be zero: no established flow ever
  re-routed, across every scale event (the churn harness's invariant,
  audited by :class:`~repro.harness.churn.AffinityWatch`);
* **oscillations** — adjacent opposite-direction scaling decisions
  within the oscillation window (controller-induced fleet flapping);
* **time to stable fleet** — how long after the scheduled peak the
  last scaling decision fires;
* **FRESH/STALE/INVALID dynamics** — the signal-quality census each
  decision was taken under, straight from the resilience plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.app.client import MemtierConfig
from repro.faults.presets import preset as fault_preset
from repro.fleet import FleetConfig, ScheduledAction, TargetTrackingPolicy
from repro.harness.churn import AffinityWatch
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.report import format_table
from repro.harness.runner import ScenarioResult
from repro.harness.scenario import Scenario, build_scenario
from repro.resilience.config import ResilienceConfig
from repro.units import MILLISECONDS, SECONDS, to_millis


@dataclass
class ElasticConfig:
    """The elastic experiment's knobs (defaults = the 1k-backend run)."""

    seed: int = 11
    duration: int = 2 * SECONDS
    strategy: str = "alpha"
    #: In-service backends at t=0 / the provisioned universe.
    initial_backends: int = 100
    max_backends: int = 1024
    #: Staggered clients forming the diurnal wave.
    clients: int = 4
    connections: int = 128
    #: Arm the ``elastic`` chaos preset (burst during the scale-out).
    burst: bool = True
    #: Prime comfortably above ``max_backends`` (apportionment needs a
    #: slot per backend; the default ScenarioConfig size 1021 is too
    #: small for a 1k fleet).
    maglev_size: int = 4099
    #: Arm the insight plane (flight-recorder timeline on the result).
    insight: bool = False

    def scenario_config(self) -> ScenarioConfig:
        """The underlying ScenarioConfig, fleet plane armed."""
        duration = self.duration
        fleet = FleetConfig(
            enabled=True,
            max_backends=self.max_backends,
            min_in_service=min(self.initial_backends, self.max_backends),
            evaluate_interval=50 * MILLISECONDS,
            provision_delay=50 * MILLISECONDS,
            warmup_duration=100 * MILLISECONDS,
            warmup_steps=4,
            scale_out_cooldown=50 * MILLISECONDS,
            scale_in_cooldown=200 * MILLISECONDS,
            drain_timeout=300 * MILLISECONDS,
            # Flows-per-backend setpoint chosen so full capacity is the
            # fixed point at peak load: clients×connections/max_backends.
            target_tracking=TargetTrackingPolicy(
                metric="flows_per_backend",
                target=max(
                    0.1, self.clients * self.connections / self.max_backends
                ),
                band=0.5,
                max_step=256,
            ),
            # The guaranteed ramp: full capacity by the midpoint, which
            # is also what the burst preset is timed against.
            schedule=[ScheduledAction(at=duration // 2, desired=self.max_backends)],
        )
        resilience = ResilienceConfig(enabled=True)
        # A 1k-backend fleet behind one LB starves per-backend signals;
        # grade on a fleet-appropriate clock and throttle the per-sample
        # ladder walk (O(fleet) each) to the periodic check's cadence.
        resilience.signal = replace(
            resilience.signal,
            stale_after=500 * MILLISECONDS,
            invalid_after=2 * SECONDS,
            min_samples=2,
        )
        resilience.ladder = replace(
            resilience.ladder,
            min_evaluate_gap=5 * MILLISECONDS,
            check_interval=20 * MILLISECONDS,
        )
        config = ScenarioConfig(
            seed=self.seed,
            duration=duration,
            n_clients=self.clients,
            n_servers=min(self.initial_backends, self.max_backends),
            policy=PolicyName.FEEDBACK,
            maglev_size=self.maglev_size,
            memtier=MemtierConfig(
                connections=self.connections,
                pipeline=1,
                requests_per_connection=50,
                think_time=2 * MILLISECONDS,
            ),
            faults=fault_preset("elastic", duration) if self.burst else [],
            resilience=resilience,
            fleet=fleet,
            warmup=duration // 10,
        )
        if self.insight:
            from repro.insight.config import InsightConfig

            config.insight = InsightConfig(enabled=True)
        config.feedback.strategy = self.strategy
        return config

    def client_window(self, index: int) -> "tuple":
        """(start, stop) times of client ``index``'s diurnal slot.

        Client 0 runs the whole day; later clients start progressively
        deeper into the first half and stop progressively earlier in
        the final quarter — load rises, plateaus over the peak, falls.
        """
        if index == 0:
            return 0, self.duration
        rise = self.duration // 2
        fall_start = 3 * self.duration // 4
        step_up = rise // self.clients
        step_down = (self.duration - fall_start) // self.clients
        start = index * step_up
        stop = self.duration - index * step_down
        return start, stop


@dataclass
class ElasticResult:
    """One controller's elastic run, distilled."""

    config: ElasticConfig
    scenario: Scenario
    result: ScenarioResult
    violations: int
    new_flows: int

    @property
    def fleet(self):
        return self.scenario.fleet

    def peak_capacity(self) -> int:
        """Largest fleet capacity any decision reached."""
        values = [d.after for d in self.fleet.decisions]
        values.append(self.fleet.capacity())
        return max(values)

    def time_to_stable_ms(self) -> float:
        """ms from the scheduled peak to the last scaling decision.

        0 means the fleet never scaled again after the peak event — it
        was stable the moment the peak landed (target tracking may have
        reached peak capacity organically before the scheduled ramp).
        """
        peak_at = self.config.duration // 2
        last = self.fleet.time_to_stable(since=peak_at)
        return 0.0 if last is None else to_millis(last - peak_at)

    def timeline_rows(self) -> List[tuple]:
        """Scaling decisions as renderable rows."""
        rows = []
        for d in self.fleet.decisions:
            grades = (
                " ".join(
                    "%s=%d" % (k, v) for k, v in sorted(d.grades.items())
                )
                or "-"
            )
            rows.append(
                (
                    "%.1f" % to_millis(d.time),
                    d.policy,
                    d.direction,
                    d.before,
                    d.after,
                    "-" if d.metric is None else "%.2f" % d.metric,
                    grades,
                )
            )
        return rows

    def report(self) -> str:
        """Human-readable elastic summary (the CLI's output)."""
        fleet = self.fleet
        lines = [
            "elastic fleet: strategy=%s backends=%d->%d peak=%d "
            "clients=%d duration=%.1fs seed=%d"
            % (
                self.config.strategy,
                self.config.initial_backends,
                self.config.max_backends,
                self.peak_capacity(),
                self.config.clients,
                self.config.duration / 1e9,
                self.config.seed,
            ),
            "scaling timeline:",
            format_table(
                (
                    "t(ms)",
                    "policy",
                    "dir",
                    "before",
                    "after",
                    "metric",
                    "signal grades",
                ),
                self.timeline_rows(),
            ),
            "oscillations: %d" % fleet.oscillations(),
            "affinity violations: %d (%d flows observed)"
            % (self.violations, self.new_flows),
        ]
        lines.append(
            "time to stable fleet after peak: %.1fms"
            % self.time_to_stable_ms()
        )
        counts = fleet.lifecycle.transition_counts()
        lines.append(
            "lifecycle transitions: "
            + ", ".join("%s=%d" % (k, v) for k, v in sorted(counts.items()))
        )
        controller = (
            self.scenario.feedback.controller
            if self.scenario.feedback is not None
            else None
        )
        lines.append(
            "controller: shifts=%d stale_holds=%d"
            % (
                len(controller.updates) if controller is not None else 0,
                getattr(controller, "stale_holds", 0),
            )
        )
        summary = self.result.summary(start=self.result.config.warmup)
        if summary is not None:
            lines.append(
                "latency (all ops): " + summary.format(scale=1e6, unit="ms")
            )
        lines.append("completed requests: %d" % len(self.result.records))
        return "\n".join(lines)


def run_elastic(config: Optional[ElasticConfig] = None) -> ElasticResult:
    """Run the elastic scenario for one controller strategy."""
    config = config or ElasticConfig()
    scenario_config = config.scenario_config()
    scenario = build_scenario(scenario_config)
    watch = AffinityWatch(scenario.lb)

    # The diurnal wave needs staggered client start/stop, which
    # run_scenario's everyone-at-t=0 loop can't express; replicate the
    # run loop with per-client windows instead.
    import time

    sim = scenario.sim
    for index, client in enumerate(scenario.clients):
        start, stop = config.client_window(index)
        if start > 0:
            sim.schedule_fire_at(start, client.start)
        else:
            client.start()
        if stop < config.duration:
            sim.schedule_fire_at(stop, client.stop)
    started = time.perf_counter()
    sim.run_until(config.duration)
    wall_seconds = time.perf_counter() - started
    records = []
    for client in scenario.clients:
        client.stop()
        records.extend(client.records)
    records.sort(key=lambda r: r.completed_at)
    if scenario.insight is not None:
        # Manual run loop: run_scenario's closing-frame hook never runs.
        scenario.insight.finalize(scenario_config.duration)
    result = ScenarioResult(
        config=scenario_config,
        scenario=scenario,
        records=records,
        wall_events=sim.events_processed,
        wall_seconds=wall_seconds,
    )

    return ElasticResult(
        config=config,
        scenario=scenario,
        result=result,
        violations=len(watch.violations),
        new_flows=watch.new_flows,
    )


def elastic_point(config: ElasticConfig) -> Dict[str, object]:
    """One elastic run distilled into a flat race row."""
    elastic = run_elastic(config)
    fleet = elastic.fleet
    grades: Dict[str, int] = {}
    for decision in fleet.decisions:
        for grade, count in decision.grades.items():
            grades[grade] = grades.get(grade, 0) + count
    return {
        "strategy": config.strategy,
        "peak_capacity": elastic.peak_capacity(),
        "decisions": len(fleet.decisions),
        "oscillations": fleet.oscillations(),
        "violations": elastic.violations,
        "new_flows": elastic.new_flows,
        "time_to_stable_ms": round(elastic.time_to_stable_ms(), 3),
        "grades": {k: grades[k] for k in sorted(grades)},
        "requests": len(elastic.result.records),
        "stale_holds": getattr(
            elastic.scenario.feedback.controller, "stale_holds", 0
        ),
    }


def run_elastic_race(
    controllers: Sequence[str],
    base: Optional[ElasticConfig] = None,
    jobs: int = 1,
    store=None,
) -> List[Dict[str, object]]:
    """Race the controller zoo through the elastic scenario."""
    from repro.sweep.executor import run_tasks, task

    base = base or ElasticConfig()
    tasks = [
        task(
            elastic_point,
            replace(base, strategy=name),
            label="elastic/%s" % name,
        )
        for name in controllers
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows


def race_table(rows: List[Dict[str, object]]) -> str:
    """Render elastic race rows as the fleet leaderboard."""
    ordered = sorted(
        rows,
        key=lambda r: (
            r["oscillations"],
            r["violations"],
            r["time_to_stable_ms"],
            str(r["strategy"]),
        ),
    )
    table_rows = []
    for position, row in enumerate(ordered, start=1):
        grades = row.get("grades") or {}
        table_rows.append(
            (
                position,
                row["strategy"],
                row["peak_capacity"],
                row["oscillations"],
                row["violations"],
                "%.1f" % row["time_to_stable_ms"],
                row.get("stale_holds", 0),
                " ".join("%s=%d" % (k, v) for k, v in sorted(grades.items()))
                or "-",
                row["requests"],
            )
        )
    return "fleet race [elastic]:\n" + format_table(
        (
            "rank",
            "controller",
            "peak",
            "oscillations",
            "affinity",
            "stable(ms)",
            "stale",
            "signal grades",
            "requests",
        ),
        table_rows,
    )
