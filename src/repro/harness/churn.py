"""Backend churn: scale-out and drain without breaking connections.

§2.5 requires LBs to "meet standard LB requirements such as
connection-to-server affinity and minimize connection-breaking due to
churn in the set of LBs and servers".  This scenario exercises exactly
that: a pool that starts with a subset of the provisioned servers,
scales out mid-run, and later drains one backend — while memtier-like
traffic flows continuously.

Measured invariants:

* **zero affinity violations** — no packet of an established flow is
  ever forwarded to a different backend than its first packet, across
  both membership changes and any feedback-driven weight updates;
* the newcomer picks up ≈ its fair share of *new* connections;
* the drained backend keeps serving its in-flight connections (the
  dataplane's ``draining_packets`` counter) and stops receiving new
  ones.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.app.client import MemtierConfig
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.scenario import Scenario, build_scenario
from repro.lb.backend import Backend
from repro.net.addr import FlowKey
from repro.units import SECONDS


@dataclass
class ChurnConfig:
    """Scale-out / drain timeline."""

    seed: int = 29
    duration: int = 2 * SECONDS
    #: Provisioned servers (topology); the pool starts with the first
    #: ``initial_servers`` of them.
    n_servers: int = 3
    initial_servers: int = 2
    #: Long-lived connections (2000 requests each) so some are usually
    #: mid-flight when membership changes — that's what drain semantics
    #: protect.
    memtier: MemtierConfig = field(
        default_factory=lambda: MemtierConfig(
            connections=6, pipeline=2, requests_per_connection=2000
        )
    )

    @property
    def scale_out_at(self) -> int:
        """When the extra server joins the pool."""
        return self.duration // 3

    @property
    def drain_at(self) -> int:
        """When server0 is removed (drained) from the pool."""
        return 2 * self.duration // 3


class AffinityWatch:
    """LB tap that audits connection-to-server affinity.

    Every scenario that mutates pool membership mid-run (churn, the
    fleet plane's elastic scale events, `repro compare` lanes) shares
    this invariant: once a flow's first packet lands on a backend, every
    later packet of that flow must land on the same backend.  The watch
    also buckets *new* flows by phase boundary so harnesses can reason
    about where fresh connections land after each membership change.
    """

    def __init__(self, lb, phases: Sequence[int] = ()):
        #: Phase boundaries (times); new flows before ``phases[0]`` are
        #: phase 0, between boundaries i-1 and i phase i, and so on.
        self.phases = sorted(phases)
        self.flow_backends: Dict[FlowKey, str] = {}
        self.violations: List[Tuple[FlowKey, str, str]] = []
        #: Per-phase backend → new-flow count.
        self.phase_counts: List[Dict[str, int]] = [
            dict() for _ in range(len(self.phases) + 1)
        ]
        lb.add_tap(self._tap)

    def _tap(self, now: int, flow: FlowKey, backend: str, packet) -> None:
        previous = self.flow_backends.get(flow)
        if previous is None:
            self.flow_backends[flow] = backend
            counts = self.phase_counts[bisect_right(self.phases, now)]
            counts[backend] = counts.get(backend, 0) + 1
        elif previous != backend:
            self.violations.append((flow, previous, backend))

    @property
    def new_flows(self) -> int:
        """Distinct flows observed."""
        return len(self.flow_backends)


@dataclass
class ChurnResult:
    """Observed behaviour across the membership changes."""

    config: ChurnConfig
    scenario: Scenario
    affinity_violations: List[Tuple[FlowKey, str, str]]
    #: backend -> count of *new flows* in each phase.
    new_flows_before: Dict[str, int]
    new_flows_after_scale_out: Dict[str, int]
    new_flows_after_drain: Dict[str, int]
    #: Flows pinned to server0 at the moment it left the pool.
    pinned_at_drain: int = 0

    def newcomer_share_after_scale_out(self) -> float:
        """Fraction of new flows landing on the added server."""
        total = sum(self.new_flows_after_scale_out.values())
        if total == 0:
            return 0.0
        newcomer = self.config.n_servers - 1
        return self.new_flows_after_scale_out.get(
            "server%d" % newcomer, 0
        ) / total


def run_churn(config: Optional[ChurnConfig] = None) -> ChurnResult:
    """Run the scale-out + drain timeline and collect invariants."""
    config = config or ChurnConfig()
    scenario_config = ScenarioConfig(
        seed=config.seed,
        duration=config.duration,
        n_servers=config.n_servers,
        policy=PolicyName.MAGLEV,
        memtier=config.memtier,
    )
    scenario = build_scenario(scenario_config)
    sim = scenario.sim
    pool = scenario.pool
    newcomer = "server%d" % (config.n_servers - 1)

    # Topology has n_servers, but the pool starts without the newcomer.
    pool.remove(newcomer)

    # Membership timeline.  At drain time, record whether any live flow
    # is pinned to the drained backend — only then is draining traffic
    # expected afterwards.
    pinned_at_drain = [0]

    def drain() -> None:
        pinned_at_drain[0] = scenario.lb.conntrack.live_flows("server0")
        pool.remove("server0")

    sim.schedule_fire_at(config.scale_out_at, lambda: pool.add(Backend(newcomer)))
    sim.schedule_fire_at(config.drain_at, drain)

    # Observe affinity and per-phase new-flow routing via the LB tap.
    watch = AffinityWatch(
        scenario.lb, phases=(config.scale_out_at, config.drain_at)
    )

    for client in scenario.clients:
        client.start()
    sim.run_until(config.duration)
    for client in scenario.clients:
        client.stop()

    return ChurnResult(
        config=config,
        scenario=scenario,
        affinity_violations=watch.violations,
        new_flows_before=watch.phase_counts[0],
        new_flows_after_scale_out=watch.phase_counts[1],
        new_flows_after_drain=watch.phase_counts[2],
        pinned_at_drain=pinned_at_drain[0],
    )


def churn_point(config: ChurnConfig) -> Dict[str, object]:
    """One churn run distilled into a flat sweep row."""
    result = run_churn(config)
    return {
        "seed": config.seed,
        "affinity_violations": len(result.affinity_violations),
        "newcomer_share": round(result.newcomer_share_after_scale_out(), 4),
        "pinned_at_drain": result.pinned_at_drain,
        "new_flows_before": result.new_flows_before,
        "new_flows_after_scale_out": result.new_flows_after_scale_out,
        "new_flows_after_drain": result.new_flows_after_drain,
    }


def sweep_churn(
    seeds: Sequence[int] = (29, 31, 37),
    base: Optional[ChurnConfig] = None,
    jobs: int = 1,
    store=None,
) -> List[Dict[str, object]]:
    """Churn invariants across seeds, fanned out through the sweep executor."""
    from repro.sweep.executor import run_tasks, task

    base = base or ChurnConfig()
    tasks = [
        task(churn_point, replace(base, seed=seed), label="seed=%d" % seed)
        for seed in seeds
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows
