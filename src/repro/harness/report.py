"""Plain-text rendering helpers for experiment output.

Everything the benches print goes through these, so reports share one
look: fixed-width columns, values pre-scaled by the caller.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

_WALLCLOCK = re.compile(r", \d+ events/sec wall-clock")


def scrub_wallclock(text: str) -> str:
    """Drop the wall-clock fragment from engine footers.

    ``ScenarioResult.report()`` appends host-dependent throughput to its
    engine line; a report that embeds it can never regenerate
    byte-identically.  Prefer ``report(deterministic=True)`` when you
    control the render call — this scrubber covers already-rendered
    text (persisted golden reports, mixed output).
    """
    return _WALLCLOCK.sub("", text)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a left-aligned fixed-width table."""
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def format_series(
    rows: Sequence[Tuple[float, float]],
    x_label: str,
    y_label: str,
    width: int = 40,
    marks: Optional[Sequence[str]] = None,
) -> str:
    """Render an (x, y) series as a table with an inline bar chart.

    ``marks``, when given, is a per-row annotation column (index-aligned
    with ``rows``; missing entries render empty) — used to flag which
    buckets fall inside fault windows.
    """
    if not rows:
        return "(empty series)"
    peak = max(y for _x, y in rows) or 1.0
    table_rows: List[Sequence[object]] = []
    for index, (x, y) in enumerate(rows):
        bar = "#" * max(1, round(width * y / peak)) if y > 0 else ""
        row = ["%.1f" % x, "%.3f" % y, bar]
        if marks is not None:
            row.append(marks[index] if index < len(marks) else "")
        table_rows.append(row)
    headers = [x_label, y_label, ""]
    if marks is not None:
        headers.append("faults")
    return format_table(headers, table_rows)


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)
