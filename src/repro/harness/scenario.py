"""Scenario assembly: config → a ready-to-run simulated deployment.

The built topology is the paper's (Fig 1): every client routes via the
LB to the VIP; each server owns the VIP alias and returns responses to
clients over direct pipes — the LB never sees a response.

::

    client0 ──► lb ──► server0        server0 ──► client0   (direct)
            ╲        ╲
             ─► ...   ─► server1      server1 ──► client0   (direct)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.app.client import MemtierClient
from repro.app.server import ServerApp
from repro.core.feedback import InbandFeedback
from repro.errors import ConfigError
from repro.faults.injector import Injector
from repro.faults.schedule import FaultSchedule
from repro.harness.config import PolicyName, ScenarioConfig
from repro.lb.backend import Backend, BackendPool
from repro.lb.conntrack import ConnTrack
from repro.lb.dataplane import LoadBalancer
from repro.lb.oracle import OracleFeedback
from repro.lb.policies import (
    BreakerGatedPolicy,
    LeastConnections,
    MaglevPolicy,
    PowerOfTwoChoices,
    RandomPolicy,
    RoundRobin,
    RoutingPolicy,
    WeightedRandom,
)
from repro.lb.health import HealthChecker
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import PacketSlab
from repro.resilience.breaker import BreakerBoard
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.transport.endpoint import Host

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.fleet.autoscaler import AutoscalingGroup
    from repro.insight.plane import InsightPlane
    from repro.net.trace import PacketTrace
    from repro.obs.plane import ObsPlane

VIP_HOST = "vip"


@dataclass
class Scenario:
    """A fully wired deployment, ready for :func:`~repro.harness.runner.run_scenario`."""

    config: ScenarioConfig
    sim: Simulator
    network: Network
    streams: RandomStreams
    lb: LoadBalancer
    pool: BackendPool
    servers: List[ServerApp]
    clients: List[MemtierClient]
    feedback: Optional[InbandFeedback] = None
    oracle: Optional[OracleFeedback] = None
    #: Chaos plane, armed when the config declares faults/injections.
    injector: Optional[Injector] = None
    #: Resilience plane (None unless ``config.resilience.enabled``).
    breakers: Optional[BreakerBoard] = None
    health: Optional[HealthChecker] = None
    prober: Optional[Host] = None
    #: Observability plane (None unless ``config.obs.enabled``).
    obs: Optional["ObsPlane"] = None
    #: Packet trace, installed by the obs plane on request.
    trace: Optional["PacketTrace"] = None
    #: Fleet plane (None unless ``config.fleet.enabled``).
    fleet: Optional["AutoscalingGroup"] = None
    #: Insight plane (None unless ``config.insight.enabled``).
    insight: Optional["InsightPlane"] = None
    #: Extra series populated by the runner.
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def vip(self) -> Endpoint:
        """The virtual endpoint clients talk to."""
        return Endpoint(VIP_HOST, self.config.vip_port)


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Construct the simulated deployment described by ``config``."""
    config.validate()
    sim = Simulator()
    network = Network(sim, PacketSlab() if config.slab else None)
    streams = RandomStreams(config.seed)
    net_params = config.network

    # --- backends and routing policy ----------------------------------
    # With the fleet plane enabled the *topology* provisions the whole
    # server universe (the world can't change shape mid-run) while the
    # pool starts with only the first n_servers; the autoscaler grows
    # and shrinks membership from there.
    fleet = config.fleet
    n_provisioned = fleet.max_backends if fleet.enabled else config.n_servers
    pool = BackendPool(
        [Backend(config.server_name(i)) for i in range(config.n_servers)]
    )
    conntrack = ConnTrack()
    policy = _make_policy(config, pool, conntrack, streams)

    # --- resilience plane (structurally absent unless enabled) ---------
    resilience = config.resilience
    board: Optional[BreakerBoard] = None
    if resilience.enabled:
        board = BreakerBoard(resilience.breaker)
        policy = BreakerGatedPolicy(policy, pool, board)

    # --- the load balancer, owner of the VIP ---------------------------
    lb = LoadBalancer(
        network,
        "lb",
        Endpoint(VIP_HOST, config.vip_port),
        pool,
        policy,
        conntrack,
        breakers=board,
    )

    # --- servers --------------------------------------------------------
    servers: List[ServerApp] = []
    for index in range(n_provisioned):
        name = config.server_name(index)
        host = Host(network, name)
        network.add_alias(VIP_HOST, name)
        network.connect(
            "lb",
            name,
            prop_delay=net_params.lb_server_delay,
            bandwidth_bps=net_params.bandwidth_bps,
            queue_capacity=net_params.queue_capacity,
        )
        server = ServerApp(
            host,
            config.server_config(index),
            streams.get("server.%s.service" % name),
            service_endpoint=Endpoint(VIP_HOST, config.vip_port),
        )
        servers.append(server)

    # --- clients ----------------------------------------------------------
    clients: List[MemtierClient] = []
    vip = Endpoint(VIP_HOST, config.vip_port)
    for index in range(config.n_clients):
        name = config.client_name(index)
        host = Host(network, name)
        client_delay = net_params.client_delay(index)
        network.connect(
            name,
            "lb",
            prop_delay=client_delay,
            bandwidth_bps=net_params.bandwidth_bps,
            queue_capacity=net_params.queue_capacity,
        )
        network.set_default_route(name, "lb")
        # Direct server→client return pipes (DSR).  A far client is far
        # on the return path by the same margin.
        extra_return = client_delay - net_params.client_lb_delay
        for s_index in range(n_provisioned):
            s_name = config.server_name(s_index)
            network.connect(
                s_name,
                name,
                prop_delay=net_params.server_client_delay + max(0, extra_return),
                bandwidth_bps=net_params.bandwidth_bps,
                queue_capacity=net_params.queue_capacity,
            )
        client = MemtierClient(
            host,
            vip,
            config.memtier,
            streams.get("client.%s.workload" % name),
            retry=resilience.retry if resilience.enabled else None,
            retry_rng=(
                streams.get("client.%s.retry" % name)
                if resilience.enabled
                else None
            ),
        )
        clients.append(client)

    scenario = Scenario(
        config=config,
        sim=sim,
        network=network,
        streams=streams,
        lb=lb,
        pool=pool,
        servers=servers,
        clients=clients,
        breakers=board,
    )

    # --- active health checks (prober host colocated with the LB) --------
    if resilience.enabled and resilience.health_checks:
        from repro.lb.health import HealthCheckConfig

        prober = Host(network, "prober")
        targets: Dict[str, Endpoint] = {}
        for index in range(config.n_servers):
            s_name = config.server_name(index)
            network.connect_bidirectional(
                "prober",
                s_name,
                prop_delay=net_params.lb_server_delay,
                bandwidth_bps=net_params.bandwidth_bps,
                queue_capacity=net_params.queue_capacity,
            )
            targets[s_name] = Endpoint(
                s_name, config.server_config(index).port
            )
        scenario.prober = prober
        scenario.health = HealthChecker(
            prober,
            pool,
            targets,
            resilience.health or HealthCheckConfig(),
            breakers=board,
        )

    # --- measurement / control plane --------------------------------------
    if config.policy is PolicyName.FEEDBACK:
        scenario.feedback = InbandFeedback(
            lb, config.feedback, resilience=resilience, breakers=board
        )
    elif config.policy is PolicyName.ORACLE:
        oracle = OracleFeedback(
            pool,
            estimator_config=config.feedback.estimator,
            controller_config=config.feedback.controller,
            control=config.feedback.control,
        )
        for client in clients:
            client.on_record = oracle.on_record
        scenario.oracle = oracle

    # --- fleet plane -------------------------------------------------------
    # Created after the measurement plane (the autoscaler reads the
    # feedback loop's estimator/quality state) and before obs (which
    # instruments it).  start() schedules the first evaluation tick.
    if fleet.enabled:
        from repro.fleet.autoscaler import AutoscalingGroup

        scenario.fleet = AutoscalingGroup(
            sim,
            pool,
            conntrack,
            fleet,
            [config.server_name(i) for i in range(n_provisioned)],
            feedback=scenario.feedback,
        )
        scenario.fleet.start()

    # --- chaos plane -------------------------------------------------------
    # Legacy DelayInjections and declarative faults share one path: both
    # become FaultSpecs, get compiled to windows, and are armed on the
    # simulator by the injector (deterministic revert-on-expiry).
    faults = config.all_faults()
    if faults:
        injector = Injector.for_scenario(scenario)
        injector.arm(FaultSchedule(faults), config.duration)
        scenario.injector = injector

    # --- observability plane ----------------------------------------------
    # Installed last so every component it instruments already exists.
    # Passive by construction: no events scheduled, no RNG draws.
    if config.obs.enabled:
        from repro.obs.plane import ObsPlane

        scenario.obs = ObsPlane.install(scenario)

    # --- insight plane ----------------------------------------------------
    # After obs, so the recorder's tap sees post-update state.  Same
    # passivity contract: no events scheduled, no RNG draws.
    if config.insight.enabled:
        from repro.insight.plane import InsightPlane

        scenario.insight = InsightPlane.install(scenario)

    return scenario


def _make_policy(
    config: ScenarioConfig,
    pool: BackendPool,
    conntrack: ConnTrack,
    streams: RandomStreams,
) -> RoutingPolicy:
    policy = config.policy
    if policy in (PolicyName.MAGLEV, PolicyName.FEEDBACK, PolicyName.ORACLE):
        return MaglevPolicy(
            pool,
            table_size=config.maglev_size,
            incremental=config.fleet.enabled and config.fleet.incremental_maglev,
        )
    if policy is PolicyName.ROUND_ROBIN:
        return RoundRobin(pool)
    if policy is PolicyName.RANDOM:
        return RandomPolicy(pool, streams.get("lb.policy"))
    if policy is PolicyName.WEIGHTED_RANDOM:
        return WeightedRandom(pool, streams.get("lb.policy"))
    if policy is PolicyName.LEAST_CONNECTIONS:
        return LeastConnections(pool, conntrack)
    if policy is PolicyName.POWER_OF_TWO:
        return PowerOfTwoChoices(pool, conntrack, streams.get("lb.policy"))
    raise ConfigError("unhandled policy %r" % policy)
