"""Scenario execution and result collection."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.app.client import RequestRecord
from repro.app.protocol import Op
from repro.harness.config import ScenarioConfig
from repro.harness.report import format_series
from repro.harness.scenario import Scenario, build_scenario
from repro.telemetry.summary import DistributionSummary, summarize
from repro.telemetry.timeseries import BucketedSeries
from repro.units import MILLISECONDS, to_millis


@dataclass
class ScenarioResult:
    """Everything measured during one scenario run."""

    config: ScenarioConfig
    scenario: Scenario
    records: List[RequestRecord]
    wall_events: int
    #: Wall-clock seconds the run took (drives the events/sec footer).
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Request-latency views
    # ------------------------------------------------------------------

    def latencies(
        self,
        op: Optional[Op] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[int]:
        """Latencies (ns) filtered by op and completion-time window."""
        if op is None and start is None and end is None:
            return [r.latency for r in self.records]
        lo = start if start is not None else 0
        if end is None:
            # No upper bound: skip the per-record float("inf") compare.
            return [
                r.latency
                for r in self.records
                if (op is None or r.op is op) and lo <= r.completed_at
            ]
        return [
            r.latency
            for r in self.records
            if (op is None or r.op is op) and lo <= r.completed_at < end
        ]

    def summary(
        self,
        op: Optional[Op] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> Optional[DistributionSummary]:
        """Distribution summary over a window; None if empty."""
        values = self.latencies(op, start, end)
        if not values:
            return None
        return summarize(values)

    def latency_series(
        self, bucket: int = 250 * MILLISECONDS, op: Optional[Op] = Op.GET, q: float = 0.95
    ) -> List[Tuple[int, float]]:
        """Per-bucket ``q``-quantile latency over time (the Fig 3 line)."""
        series = BucketedSeries(bucket)
        for record in self.records:
            if op is None or record.op is op:
                series.append(record.completed_at, record.latency)
        return series.quantile_series(q)

    def per_server_counts(self) -> Dict[str, int]:
        """Completed requests per responding server."""
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.server is not None:
                counts[record.server] = counts.get(record.server, 0) + 1
        return counts

    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        duration_s = self.config.duration / 1e9
        return len(self.records) / duration_s if duration_s > 0 else 0.0

    # ------------------------------------------------------------------
    # Control-plane views
    # ------------------------------------------------------------------

    def shift_times(self) -> List[int]:
        """Times of executed weight shifts (in-band or oracle)."""
        if self.scenario.feedback is not None:
            return [e.time for e in self.scenario.feedback.shift_events()]
        if self.scenario.oracle is not None and self.scenario.oracle.controller:
            return [e.time for e in self.scenario.oracle.controller.shifts]
        return []

    def first_shift_after(self, time: int) -> Optional[int]:
        """First weight shift at or after ``time`` (reaction latency)."""
        for t in self.shift_times():
            if t >= time:
                return t
        return None

    # ------------------------------------------------------------------
    # Resilience-plane views
    # ------------------------------------------------------------------

    def mode_transitions(self) -> List:
        """The degradation ladder's telemetry (empty without resilience)."""
        if self.scenario.feedback is None:
            return []
        return self.scenario.feedback.mode_transitions()

    def first_mode_entry(self, mode_name: str, after: int = 0) -> Optional[int]:
        """Time the ladder first entered ``mode_name`` at/after ``after``."""
        for transition in self.mode_transitions():
            if transition.to_mode.name == mode_name and transition.time >= after:
                return transition.time
        return None

    def breaker_transitions(self) -> List:
        """Circuit-breaker state changes (empty without resilience)."""
        if self.scenario.breakers is None:
            return []
        return self.scenario.breakers.transitions

    def retry_stats(self) -> Optional[object]:
        """Aggregated client retry counters (None without a retry plane)."""
        from repro.resilience.retry import RetryStats

        if not any(c.retry is not None for c in self.scenario.clients):
            return None
        total = RetryStats()
        for client in self.scenario.clients:
            stats = client.retry_stats
            total.first_attempts += stats.first_attempts
            total.retries += stats.retries
            total.deadline_expiries += stats.deadline_expiries
            total.budget_denied += stats.budget_denied
            total.attempts_exhausted += stats.attempts_exhausted
            total.aborted_connections += stats.aborted_connections
        return total

    # ------------------------------------------------------------------
    # Chaos-plane views
    # ------------------------------------------------------------------

    def fault_windows(self) -> List[Tuple[str, Tuple[str, ...], int, Optional[int]]]:
        """Armed fault windows as ``(kind, targets, start, end)`` tuples."""
        injector = self.scenario.injector
        if injector is None:
            return []
        return [
            (a.window.fault.kind, a.targets, a.window.start, a.window.end)
            for a in injector.armed_windows
        ]

    def drop_counts(self) -> Tuple[int, int]:
        """Network-wide ``(queue_drops, loss_drops)`` across all pipes."""
        queue = loss = 0
        for pipe in self.scenario.network.pipes().values():
            queue += pipe.stats.packets_dropped_queue
            loss += pipe.stats.packets_dropped_loss
        return queue, loss

    def partition_drops(self) -> int:
        """Network-wide packets discarded by partition faults."""
        return sum(
            pipe.stats.packets_dropped_partition
            for pipe in self.scenario.network.pipes().values()
        )

    def _bucket_marks(self, rows: List[Tuple[int, float]], bucket: int) -> List[str]:
        """Per-bucket fault annotation: kinds active during each bucket."""
        marks = []
        for t, _v in rows:
            bucket_start = (t // bucket) * bucket
            bucket_end = bucket_start + bucket
            kinds = []
            for kind, _targets, start, end in self.fault_windows():
                overlaps = start < bucket_end and (end is None or end > bucket_start)
                if overlaps and kind not in kinds:
                    kinds.append(kind)
            marks.append("+".join(kinds))
        return marks

    def timeline(self):
        """The insight plane's recorded timeline (None when disabled)."""
        insight = self.scenario.insight
        if insight is None:
            return None
        return insight.timeline

    def report(self, deterministic: bool = False) -> str:
        """Multi-line human-readable run summary.

        With ``deterministic=True`` wall-clock-derived fragments (the
        events/sec engine-footer rate) are omitted, so regenerated
        golden reports never drift across machines.
        """
        lines = [
            "scenario: policy=%s servers=%d clients=%d duration=%.1fs seed=%d"
            % (
                self.config.policy.value,
                self.config.n_servers,
                self.config.n_clients,
                self.config.duration / 1e9,
                self.config.seed,
            ),
            "completed requests: %d (%.0f req/s)"
            % (len(self.records), self.throughput_rps()),
        ]
        overall = self.summary(start=self.config.warmup)
        if overall is not None:
            lines.append("latency (all ops): " + overall.format(scale=1e6, unit="ms"))
        gets = self.summary(op=Op.GET, start=self.config.warmup)
        if gets is not None:
            lines.append("latency (GET):     " + gets.format(scale=1e6, unit="ms"))
        share = self.scenario.lb.backend_share()
        if share:
            lines.append(
                "backend packet share: "
                + ", ".join("%s=%.1f%%" % (k, 100 * v) for k, v in share.items())
            )
        shifts = self.shift_times()
        if shifts:
            lines.append(
                "weight shifts: %d (first %.3fms, last %.3fms)"
                % (len(shifts), to_millis(shifts[0]), to_millis(shifts[-1]))
            )
        windows = self.fault_windows()
        if windows:
            lines.append("fault windows:")
            for kind, targets, start, end in windows:
                span = (
                    "start=%.3fms until end of run" % to_millis(start)
                    if end is None
                    else "start=%.3fms duration=%.3fms"
                    % (to_millis(start), to_millis(end - start))
                )
                lines.append(
                    "  %-9s %s on %s" % (kind, span, ", ".join(targets))
                )
            queue_drops, loss_drops = self.drop_counts()
            drops = "packet drops: queue=%d loss=%d" % (queue_drops, loss_drops)
            partition_drops = self.partition_drops()
            if partition_drops:
                drops += " partition=%d" % partition_drops
            lines.append(drops)
        transitions = self.mode_transitions()
        if transitions:
            lines.append("controller mode transitions:")
            for t in transitions:
                lines.append(
                    "  %10.3fms  %s -> %s  (%s)"
                    % (
                        to_millis(t.time),
                        t.from_mode.name,
                        t.to_mode.name,
                        t.reason,
                    )
                )
        breaker_events = self.breaker_transitions()
        if breaker_events:
            lines.append("circuit breakers:")
            for b in breaker_events:
                lines.append(
                    "  %10.3fms  %s: %s -> %s  (%s)"
                    % (
                        to_millis(b.time),
                        b.backend,
                        b.from_state.name,
                        b.to_state.name,
                        b.reason,
                    )
                )
        verdicts = self.scenario.extras.get("invariants")
        if verdicts:
            violated = sum(1 for v in verdicts if not v.passed)
            lines.append(
                "invariants: %d checked, %d violated"
                % (len(verdicts), violated)
            )
            for v in verdicts:
                status = (
                    "ok"
                    if v.passed
                    else "VIOLATED (%d)" % len(v.violations)
                )
                lines.append("  %-22s %-8s %s" % (v.name, v.kind, status))
                for message in v.violations[:3]:
                    lines.append("    %s" % message)
        retry = self.retry_stats()
        if retry is not None:
            lines.append(
                "retries: %d of %d first attempts "
                "(deadline expiries=%d, budget denied=%d, exhausted=%d, "
                "aborted conns=%d)"
                % (
                    retry.retries,
                    retry.first_attempts,
                    retry.deadline_expiries,
                    retry.budget_denied,
                    retry.attempts_exhausted,
                    retry.aborted_connections,
                )
            )
        bucket = 250 * MILLISECONDS
        series = self.latency_series(bucket=bucket)
        rows = [(to_millis(t), to_millis(v)) for t, v in series]
        if rows:
            lines.append("p95 GET latency per 250ms bucket:")
            marks = self._bucket_marks(series, bucket) if windows else None
            lines.append(
                format_series(rows, "t(ms)", "p95(ms)", marks=marks)
            )
        trace = self.scenario.trace
        if trace is not None:
            captured = len(trace)
            if trace.dropped:
                lines.append(
                    "packet trace: %d records captured, %d dropped past "
                    "limit=%s" % (captured, trace.dropped, trace.limit)
                )
            else:
                lines.append("packet trace: %d records captured" % captured)
        insight = self.scenario.insight
        if insight is not None:
            lines.append(insight.summary())
        engine = "engine: %d events processed" % self.wall_events
        if self.wall_seconds > 0 and not deterministic:
            engine += ", %.0f events/sec wall-clock" % (
                self.wall_events / self.wall_seconds
            )
        sim = self.scenario.sim
        engine += ", peak queue depth %d" % sim.peak_queue_depth
        engine += ", %d live / %d pending at end" % (
            sim.live_events,
            sim.pending_events,
        )
        lines.append(engine)
        obs = self.scenario.obs
        if obs is not None and obs.profiler is not None and obs.profiler.events:
            lines.extend(obs.profiler.report_lines())
        return "\n".join(lines)


def run_scenario(
    config: ScenarioConfig, scenario: Optional[Scenario] = None
) -> ScenarioResult:
    """Build (unless given) and run a scenario to its configured duration."""
    if scenario is None:
        scenario = build_scenario(config)
    for client in scenario.clients:
        client.start()
    started = time.perf_counter()
    scenario.sim.run_until(config.duration)
    wall_seconds = time.perf_counter() - started
    for client in scenario.clients:
        client.stop()
    if scenario.insight is not None:
        # Closing frame at end-of-run; purely observational, after the
        # simulator has drained, so results stay byte-identical.
        scenario.insight.finalize(config.duration)

    records: List[RequestRecord] = []
    for client in scenario.clients:
        records.extend(client.records)
    records.sort(key=lambda r: r.completed_at)

    return ScenarioResult(
        config=config,
        scenario=scenario,
        records=records,
        wall_events=scenario.sim.events_processed,
        wall_seconds=wall_seconds,
    )
