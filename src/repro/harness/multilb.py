"""Multiple independent feedback LBs over one server pool.

Open question #4 asks how to design control loops that converge "without
thundering-herd problems, with many LBs".  This scenario provides the
substrate: N load balancers, each with its *own* conntrack, weights, and
in-band feedback loop (they share nothing), all forwarding to the same
servers.  A server-side slowdown is observed — and reacted to —
independently by every LB.

The herd risk: every LB shifts off the slow server at once, the healthy
server's queue grows, every LB then sees *it* as slow and shifts back,
and the system oscillates.  The scenario records per-LB weight
trajectories so benches can quantify exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.app.client import MemtierClient, MemtierConfig
from repro.app.server import ServerApp, ServerConfig
from repro.app.servicetime import Deterministic
from repro.app.variability import StepInjector
from repro.core.feedback import FeedbackConfig, InbandFeedback
from repro.errors import ConfigError
from repro.lb.backend import Backend, BackendPool
from repro.lb.dataplane import LoadBalancer
from repro.lb.policies import MaglevPolicy
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import PacketSlab
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.telemetry.timeseries import TimeSeries
from repro.transport.endpoint import Host
from repro.units import (
    GIGABITS_PER_SECOND,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
)


@dataclass
class MultiLbConfig:
    """Knobs for the many-LBs experiment."""

    seed: int = 23
    duration: int = 2 * SECONDS
    n_lbs: int = 2
    n_servers: int = 2
    clients_per_lb: int = 1
    vip_port: int = 11211
    injected_server: str = "server0"
    injection_extra: int = 1 * MILLISECONDS
    memtier: MemtierConfig = field(
        default_factory=lambda: MemtierConfig(connections=2, pipeline=2)
    )
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    server: ServerConfig = field(
        default_factory=lambda: ServerConfig(
            service_model=Deterministic(50 * MICROSECONDS)
        )
    )

    @property
    def injection_at(self) -> int:
        """Fault onset: the midpoint of the run."""
        return self.duration // 2

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.n_lbs < 1 or self.n_servers < 1 or self.clients_per_lb < 1:
            raise ConfigError("counts must be >= 1")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")


@dataclass
class MultiLbResult:
    """Per-LB control trajectories plus the client view."""

    config: MultiLbConfig
    lbs: List[LoadBalancer]
    feedbacks: List[InbandFeedback]
    clients: List[MemtierClient]
    servers: List[ServerApp]
    #: Per LB: time series of the injected server's weight share.
    weight_series: List[TimeSeries]

    def all_records(self) -> list:
        """Merged client records, completion-ordered."""
        records = []
        for client in self.clients:
            records.extend(client.records)
        records.sort(key=lambda r: r.completed_at)
        return records

    def injected_share_after(self, start: int) -> float:
        """Fraction of requests served by the injected server after ``start``."""
        total = 0
        hit = 0
        for record in self.all_records():
            if record.completed_at >= start:
                total += 1
                if record.server == self.config.injected_server:
                    hit += 1
        return hit / total if total else 0.0

    def oscillations(self, lb_index: int) -> int:
        """Direction changes of the injected server's weight at one LB."""
        values = list(self.weight_series[lb_index].values)
        changes = 0
        last_direction = 0
        for previous, current in zip(values, values[1:]):
            if current == previous:
                continue
            direction = 1 if current > previous else -1
            if last_direction and direction != last_direction:
                changes += 1
            last_direction = direction
        return changes


def run_multilb(config: Optional[MultiLbConfig] = None) -> MultiLbResult:
    """Build and run the many-LBs scenario."""
    config = config or MultiLbConfig()
    config.validate()
    sim = Simulator()
    network = Network(sim, PacketSlab())
    streams = RandomStreams(config.seed)
    bw = 10 * GIGABITS_PER_SECOND

    server_names = ["server%d" % i for i in range(config.n_servers)]

    # Servers (shared by every LB).  The injected fault is server-side
    # processing delay, so every LB observes it.
    servers: List[ServerApp] = []
    for name in server_names:
        host = Host(network, name)
        network.add_alias("vip", name)
        server_config = ServerConfig(
            port=config.vip_port,
            workers=config.server.workers,
            service_model=config.server.service_model,
        )
        if name == config.injected_server:
            server_config.injector = StepInjector(
                extra=config.injection_extra, start=config.injection_at
            )
        servers.append(
            ServerApp(
                host,
                server_config,
                streams.get("server.%s" % name),
                service_endpoint=Endpoint("vip", config.vip_port),
            )
        )

    # LBs, each with an independent pool + feedback loop.
    lbs: List[LoadBalancer] = []
    feedbacks: List[InbandFeedback] = []
    weight_series: List[TimeSeries] = []
    for index in range(config.n_lbs):
        lb_name = "lb%d" % index
        pool = BackendPool([Backend(name) for name in server_names])
        lb = LoadBalancer(
            network,
            lb_name,
            Endpoint("vip", config.vip_port),
            pool,
            MaglevPolicy(pool, table_size=1021),
        )
        feedback = InbandFeedback(lb, config.feedback)
        for name in server_names:
            network.connect(lb_name, name, prop_delay=40 * MICROSECONDS, bandwidth_bps=bw)
        lbs.append(lb)
        feedbacks.append(feedback)

        series = TimeSeries(name="%s/injected-weight" % lb_name)
        weight_series.append(series)

        def track(
            pool=pool, series=series, injected=config.injected_server
        ) -> None:
            weights = pool.weights()
            total = sum(weights.values())
            series.append(sim.now, weights.get(injected, 0.0) / total)

        pool.on_change(track)

    # Clients, partitioned across LBs.
    clients: List[MemtierClient] = []
    for lb_index in range(config.n_lbs):
        for c_index in range(config.clients_per_lb):
            name = "client%d_%d" % (lb_index, c_index)
            host = Host(network, name)
            network.connect(name, "lb%d" % lb_index, prop_delay=10 * MICROSECONDS, bandwidth_bps=bw)
            network.set_default_route(name, "lb%d" % lb_index)
            for s_name in server_names:
                network.connect(s_name, name, prop_delay=50 * MICROSECONDS, bandwidth_bps=bw)
            clients.append(
                MemtierClient(
                    host,
                    Endpoint("vip", config.vip_port),
                    config.memtier,
                    streams.get("client.%s" % name),
                )
            )

    for client in clients:
        client.start()
    sim.run_until(config.duration)
    for client in clients:
        client.stop()

    return MultiLbResult(
        config=config,
        lbs=lbs,
        feedbacks=feedbacks,
        clients=clients,
        servers=servers,
        weight_series=weight_series,
    )


def multilb_point(config: MultiLbConfig) -> Dict[str, object]:
    """One many-LBs run distilled into a flat sweep row."""
    result = run_multilb(config)
    settle = config.injection_at + config.duration // 8
    return {
        "n_lbs": config.n_lbs,
        "seed": config.seed,
        "requests": len(result.all_records()),
        "injected_share_after": round(result.injected_share_after(settle), 4),
        "oscillations": [result.oscillations(i) for i in range(config.n_lbs)],
        "max_oscillations": max(
            result.oscillations(i) for i in range(config.n_lbs)
        ),
    }


def sweep_multilb(
    n_lbs_values: Sequence[int] = (1, 2, 4),
    base: Optional[MultiLbConfig] = None,
    jobs: int = 1,
    store=None,
) -> List[Dict[str, object]]:
    """Herd behaviour vs LB count, fanned out through the sweep executor."""
    from repro.sweep.executor import run_tasks, task

    base = base or MultiLbConfig()
    tasks = [
        task(
            multilb_point,
            replace(base, n_lbs=n_lbs),
            label="n_lbs=%d" % n_lbs,
        )
        for n_lbs in n_lbs_values
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows
