"""``repro compare`` — race the controller zoo across chaos presets.

Every registered control law (see :mod:`repro.controllers`) runs the
same scenario — same seed, same topology, same fault preset — and the
leaderboard ranks them on what the paper cares about: tail latency
first, then recovery speed and actuation cost.

The race rides on the sweep executor (:mod:`repro.sweep.executor`), so
points are content-addressed: a re-run with an unchanged roster is
served entirely from the result store, and ``--jobs N`` produces rows
byte-identical to ``--jobs 1``.  All leaderboard text is derived from
cached rows only — wall-clock appears nowhere in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.app.protocol import Op
from repro.controllers.base import total_weight_movement
from repro.errors import ConfigError
from repro.faults.presets import preset as fault_preset
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.recovery import fault_window, time_to_recovery
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.resilience.config import ResilienceConfig
from repro.sweep.executor import Outcome, SweepReport, run_tasks, task
from repro.sweep.store import ResultStore
from repro.telemetry.quantiles import exact_quantile
from repro.units import SECONDS

#: The default race card: the paper's stimulus plus the chaos shapes the
#: newer laws were designed for (flapping for KnapsackLB, correlated
#: bursts for Morpheus, crash for the resilience plane, elastic for the
#: fleet plane's membership churn).
RACE_PRESETS: Tuple[str, ...] = (
    "fig3",
    "flapping_server",
    "lossy_path",
    "correlated_burst",
    "crash",
    "elastic",
)


def compare_config(
    preset_name: str,
    strategy: str,
    seed: int = 1,
    duration: int = 2 * SECONDS,
    n_servers: int = 3,
    n_clients: int = 1,
    insight: bool = False,
) -> ScenarioConfig:
    """One race lane: FEEDBACK policy, ``strategy``'s law, one preset.

    The resilience plane is on for every lane — stale-signal gating is
    part of the contract being compared, and the ``crash`` preset is
    meaningless without it.  Every controller gets the identical
    scenario, so differences in the rows are differences in the law.

    The ``elastic`` preset additionally arms the fleet plane: the pool
    scales out mid-run (scheduled ramp plus target tracking) so the
    burst lands while new backends are warming — membership churn is
    the whole point of that lane.
    """
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        n_clients=n_clients,
        n_servers=n_servers,
        policy=PolicyName.FEEDBACK,
        faults=fault_preset(preset_name, duration),
        resilience=ResilienceConfig(enabled=True, health_checks=True),
        warmup=duration // 10,
    )
    if insight:
        from repro.insight.config import InsightConfig

        config.insight = InsightConfig(enabled=True)
    config.feedback.strategy = strategy
    if preset_name == "elastic":
        from repro.fleet import FleetConfig, ScheduledAction

        config.fleet = FleetConfig(
            enabled=True,
            max_backends=max(8, 2 * n_servers),
            min_in_service=n_servers,
            schedule=[
                # Scale out ahead of the burst, back in after it.
                ScheduledAction(at=duration // 3, desired=max(8, 2 * n_servers)),
                ScheduledAction(at=5 * duration // 6, desired=n_servers),
            ],
        )
    return config


def compare_point(config: ScenarioConfig) -> Dict[str, object]:
    """Run one race lane and distill it into a flat leaderboard row."""
    from repro.harness.churn import AffinityWatch
    from repro.harness.scenario import build_scenario

    scenario = build_scenario(config)
    # Stickiness audit on every lane: weight shifts (and, on elastic
    # lanes, scale events) must never re-route an established flow.
    watch = AffinityWatch(scenario.lb)
    result = run_scenario(config, scenario=scenario)
    values = result.latencies(op=Op.GET, start=config.warmup or None)
    window = fault_window(config)
    recovery = time_to_recovery(result, window)
    feedback = result.scenario.feedback
    controller = feedback.controller if feedback is not None else None
    updates = list(controller.updates) if controller is not None else []
    initial = {
        config.server_name(i): 1.0 for i in range(config.n_servers)
    }
    row: Dict[str, object] = {
        "strategy": config.feedback.strategy,
        "requests": len(result.records),
        "p50_ms": _ms(exact_quantile(values, 0.50)) if values else None,
        "p95_ms": _ms(exact_quantile(values, 0.95)) if values else None,
        "p99_ms": _ms(exact_quantile(values, 0.99)) if values else None,
        "recovery_ms": None if recovery is None else _ms(recovery),
        "shifts": len(updates),
        "churn": round(total_weight_movement(updates, initial), 6),
        "stale_holds": getattr(controller, "stale_holds", 0),
        "violations": len(watch.violations),
    }
    if scenario.insight is not None:
        # Carried as a JSONL string so the row stays flat JSON-native
        # (cacheable by the sweep store); written to a file post-sweep.
        row["timeline"] = scenario.insight.dumps()
    return row


@dataclass
class CompareReport:
    """Everything one race produced, plus the renderers."""

    presets: List[str]
    controllers: List[str]
    report: SweepReport
    #: ``(preset, controller) -> row``, in submission order.
    rows: Dict[Tuple[str, str], Dict[str, object]] = field(
        default_factory=dict
    )

    def ranking(self, preset_name: str) -> List[Tuple[str, Dict[str, object]]]:
        """Controllers of one preset, best first.

        Sort key: p95, then p99 (missing quantiles rank last), then
        churn (cheaper actuation wins ties), then name — fully
        deterministic, derived from cached rows only.
        """
        entries = [
            (name, self.rows[(preset_name, name)])
            for name in self.controllers
        ]

        def key(entry):
            name, row = entry
            return (
                _rank_value(row.get("p95_ms")),
                _rank_value(row.get("p99_ms")),
                _rank_value(row.get("churn")),
                name,
            )

        return sorted(entries, key=key)

    def leaderboard(self) -> str:
        """The full leaderboard: one table per preset, plus the overall
        mean-rank standings when more than one preset raced."""
        sections: List[str] = []
        mean_ranks: Dict[str, List[int]] = {n: [] for n in self.controllers}
        for preset_name in self.presets:
            ranked = self.ranking(preset_name)
            rows = []
            for position, (name, row) in enumerate(ranked, start=1):
                mean_ranks[name].append(position)
                rows.append(
                    (
                        position,
                        name,
                        _cell(row.get("p95_ms")),
                        _cell(row.get("p99_ms")),
                        _cell(row.get("recovery_ms")),
                        row.get("shifts"),
                        _cell(row.get("churn")),
                        row.get("stale_holds"),
                        # Rows cached before the column existed render "-".
                        _cell(row.get("violations")),
                        row.get("requests"),
                    )
                )
            sections.append(
                "leaderboard [%s]:\n%s"
                % (
                    preset_name,
                    format_table(
                        (
                            "rank",
                            "controller",
                            "p95(ms)",
                            "p99(ms)",
                            "recovery(ms)",
                            "shifts",
                            "churn",
                            "stale",
                            "affinity",
                            "requests",
                        ),
                        rows,
                    ),
                )
            )
        if len(self.presets) > 1:
            overall = sorted(
                self.controllers,
                key=lambda n: (
                    sum(mean_ranks[n]) / len(mean_ranks[n]),
                    n,
                ),
            )
            rows = [
                (
                    position,
                    name,
                    "%.2f" % (sum(mean_ranks[name]) / len(mean_ranks[name])),
                    " ".join(str(r) for r in mean_ranks[name]),
                )
                for position, name in enumerate(overall, start=1)
            ]
            sections.append(
                "overall (mean rank across %d presets):\n%s"
                % (
                    len(self.presets),
                    format_table(
                        ("rank", "controller", "mean", "per-preset"), rows
                    ),
                )
            )
        return "\n\n".join(sections)

    def summary(self) -> str:
        """The executor's one-line accounting (grepped by CI)."""
        return self.report.summary("compare")

    def write_timelines(self, directory: str) -> List[str]:
        """Write each lane's timeline artifact (rows recorded with the
        insight plane armed) as ``<preset>-<controller>.jsonl``."""
        import os

        os.makedirs(directory, exist_ok=True)
        paths: List[str] = []
        for (preset_name, controller_name), row in self.rows.items():
            text = row.get("timeline")
            if not text:
                continue
            path = os.path.join(
                directory, "%s-%s.jsonl" % (preset_name, controller_name)
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            paths.append(path)
        return paths


def run_compare(
    presets: Sequence[str],
    controllers: Sequence[str],
    seed: int = 1,
    duration: int = 2 * SECONDS,
    n_servers: int = 3,
    n_clients: int = 1,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    progress: Optional[Callable[[Outcome, int, int], None]] = None,
    insight: bool = False,
) -> CompareReport:
    """Race ``controllers`` across ``presets`` through the executor."""
    from repro.controllers import available

    registered = available()
    for name in controllers:
        if name not in registered:
            raise ConfigError(
                "unknown control strategy %r (registered: %s)"
                % (name, ", ".join(registered))
            )
    if not presets:
        raise ConfigError("compare needs at least one fault preset")
    if len(controllers) < 2:
        raise ConfigError("compare needs at least two controllers to race")

    tasks = []
    pairs: List[Tuple[str, str]] = []
    for preset_name in presets:
        for controller_name in controllers:
            config = compare_config(
                preset_name,
                controller_name,
                seed=seed,
                duration=duration,
                n_servers=n_servers,
                n_clients=n_clients,
                insight=insight,
            )
            pairs.append((preset_name, controller_name))
            tasks.append(
                task(
                    compare_point,
                    config,
                    label="%s/%s" % (preset_name, controller_name),
                )
            )

    report = run_tasks(
        tasks, jobs=jobs, store=store, use_cache=use_cache, progress=progress
    )
    compare = CompareReport(
        presets=list(presets),
        controllers=list(controllers),
        report=report,
    )
    for pair, outcome in zip(pairs, report.outcomes):
        compare.rows[pair] = outcome.row
    return compare


def _ms(value) -> float:
    return round(value / 1e6, 6)


def _rank_value(value) -> float:
    """Missing metrics rank after every measured one."""
    return float("inf") if value is None else float(value)


def _cell(value) -> object:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%g" % value
    return value
