"""The paper's experiments, as runnable definitions.

Each function builds, runs, and distills one of the paper's figures (or
quantified claims) into a result object whose fields are the same series
the paper plots.  Benchmarks and examples call these; EXPERIMENTS.md
records the outcomes.

* :func:`run_fig2a` — FIXEDTIMEOUT with fixed δ = 64 µs / 1024 µs vs
  ground truth, across an RTT step (paper Fig 2a).
* :func:`run_fig2b` — ENSEMBLETIMEOUT tracking the same step (Fig 2b).
* :func:`run_fig3`  — p95 GET latency over time, plain Maglev vs the
  latency-aware LB, 1 ms injection mid-run (Fig 3).
* :func:`run_reaction` — reaction-time decomposition of the §1/§4 claim
  ("adapts to a 1 ms inflation ... in milliseconds").
* :func:`run_error_decomposition` — the §3 error identity
  ``T_LB − T_client = O3 − O1 + T_trigger``.

The Fig 2 scenarios ride on a *backlogged* flow through the LB toward a
sink server.  Client-side jitter (scheduling noise before the LB) is
what makes too-small timeouts produce false batch splits, reproducing
the figure's "too many low estimates" band; it defaults to a 0–96 µs
uniform jitter on the client→LB pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.app.client import BacklogClient, MemtierConfig
from repro.app.protocol import Op
from repro.app.server import SinkApp
from repro.core.ensemble import EnsembleConfig, EnsembleTimeout
from repro.core.fixed_timeout import FixedTimeout
from repro.faults.injector import Injector
from repro.faults.model import DelayFault
from repro.faults.schedule import FaultSchedule
from repro.harness.config import (
    NetworkParams,
    PolicyName,
    ScenarioConfig,
)
from repro.insight.config import InsightConfig
from repro.obs.config import ObsConfig
from repro.harness.runner import ScenarioResult, run_scenario
from repro.lb.backend import Backend, BackendPool
from repro.lb.dataplane import LoadBalancer
from repro.lb.policies import MaglevPolicy
from repro.net.addr import Endpoint, FlowKey
from repro.net.network import Network
from repro.net.packet import Packet, PacketSlab
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.telemetry.quantiles import exact_quantile
from repro.telemetry.timeseries import TimeSeries
from repro.transport.ack_policy import DelayedAck
from repro.transport.connection import TransportConfig
from repro.transport.endpoint import Host
from repro.units import (
    GIGABITS_PER_SECOND,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
)

VIP_PORT = 9000


# ======================================================================
# Fig 2 substrate: one backlogged flow through the LB
# ======================================================================


@dataclass
class BacklogConfig:
    """The Fig 2 single-flow scenario."""

    seed: int = 7
    duration: int = 6 * SECONDS
    #: RTT step (paper Fig 2: true RTT increases at t = 3 s).
    step_at: int = 3 * SECONDS
    #: Extra one-way delay injected on the LB→server pipe at the step.
    step_extra: int = 750 * MICROSECONDS
    client_lb_delay: int = 10 * MICROSECONDS
    lb_server_delay: int = 40 * MICROSECONDS
    server_client_delay: int = 50 * MICROSECONDS
    bandwidth_bps: int = 10 * GIGABITS_PER_SECOND
    #: Max uniform client-side jitter before the LB (scheduling noise);
    #: the source of false batch splits at small δ.
    jitter_max: int = 96 * MICROSECONDS
    #: Rare long client-side stalls (OS preemption, §2.2): with
    #: probability ``spike_prob`` a packet is delayed by
    #: uniform(spike_min, spike_max) instead.  These produce the "small
    #: number of erroneously large outputs" of too-large fixed timeouts.
    spike_prob: float = 0.002
    spike_min: int = 1100 * MICROSECONDS
    spike_max: int = 2 * MILLISECONDS
    #: Flow-control window: small enough to stay window-limited (bursty).
    window: int = 16 * 1024
    mss: int = 1448
    #: Slab dataplane (see :attr:`ScenarioConfig.slab`); byte-identical.
    slab: bool = True


@dataclass
class BacklogRun:
    """A built backlog scenario plus its probes."""

    config: BacklogConfig
    sim: Simulator
    lb: LoadBalancer
    client: BacklogClient
    ground_truth: TimeSeries  # (t, true RTT) from the client's transport


def build_backlog(config: BacklogConfig) -> BacklogRun:
    """Assemble the single-flow Fig 2 scenario (no probes attached yet)."""
    sim = Simulator()
    network = Network(sim, PacketSlab() if config.slab else None)
    streams = RandomStreams(config.seed)
    jitter_rng = streams.get("net.jitter")

    client_host = Host(network, "client0")
    server_host = Host(network, "server0")
    pool = BackendPool([Backend("server0")])
    lb = LoadBalancer(
        network,
        "lb",
        Endpoint("vip", VIP_PORT),
        pool,
        MaglevPolicy(pool, table_size=251),
    )
    network.add_alias("vip", "server0")

    jitter = None
    if config.jitter_max > 0:

        def jitter() -> int:
            if config.spike_prob > 0 and jitter_rng.random() < config.spike_prob:
                return jitter_rng.randint(config.spike_min, config.spike_max)
            return jitter_rng.randrange(config.jitter_max)
    network.connect(
        "client0",
        "lb",
        prop_delay=config.client_lb_delay,
        bandwidth_bps=config.bandwidth_bps,
        jitter=jitter,
    )
    network.set_default_route("client0", "lb")
    network.connect(
        "lb",
        "server0",
        prop_delay=config.lb_server_delay,
        bandwidth_bps=config.bandwidth_bps,
    )
    network.connect(
        "server0",
        "client0",
        prop_delay=config.server_client_delay,
        bandwidth_bps=config.bandwidth_bps,
    )

    SinkApp(server_host, VIP_PORT)
    transport = TransportConfig(window=config.window, mss=config.mss)
    client = BacklogClient(
        client_host, Endpoint("vip", VIP_PORT), transport=transport
    )

    ground_truth = TimeSeries(name="T_client")
    client.on_rtt = lambda now, rtt: ground_truth.append(now, float(rtt))

    # The RTT step, expressed as a chaos-plane fault.
    injector = Injector(
        sim, network, server_names=["server0"], client_names=["client0"]
    )
    injector.arm(
        FaultSchedule(
            [DelayFault(start=config.step_at, extra=config.step_extra, node="server0")]
        ),
        config.duration,
    )

    return BacklogRun(
        config=config, sim=sim, lb=lb, client=client, ground_truth=ground_truth
    )


# ======================================================================
# Fig 2(a): fixed timeouts
# ======================================================================


@dataclass
class Fig2aResult:
    """Per-δ estimate series vs ground truth, split at the RTT step."""

    config: BacklogConfig
    ground_truth: TimeSeries
    estimates: Dict[int, TimeSeries]           # δ → (t, T_LB)
    #: δ → (pre-step count, post-step count)
    sample_counts: Dict[int, Tuple[int, int]]

    def median_estimate(self, delta: int, after_step: bool) -> Optional[float]:
        """Median ``T_LB`` for one δ, before or after the step."""
        series = self.estimates[delta]
        cut = self.config.step_at
        values = [
            v
            for t, v in series.items()
            if (t >= cut) == after_step
        ]
        if not values:
            return None
        return exact_quantile(values, 0.5)

    def median_ground_truth(self, after_step: bool) -> Optional[float]:
        """Median true RTT before or after the step."""
        cut = self.config.step_at
        values = [
            v for t, v in self.ground_truth.items() if (t >= cut) == after_step
        ]
        if not values:
            return None
        return exact_quantile(values, 0.5)


def run_fig2a(
    config: Optional[BacklogConfig] = None,
    deltas: Sequence[int] = (64 * MICROSECONDS, 1024 * MICROSECONDS),
) -> Fig2aResult:
    """FIXEDTIMEOUT at fixed timeouts vs ground truth across an RTT step."""
    config = config or BacklogConfig()
    run = build_backlog(config)

    trackers: Dict[int, Dict[FlowKey, FixedTimeout]] = {d: {} for d in deltas}
    estimates: Dict[int, TimeSeries] = {
        d: TimeSeries(name="T_LB@%dus" % (d // MICROSECONDS)) for d in deltas
    }

    def probe(now: int, flow: FlowKey, backend: str, packet: Packet) -> None:
        for delta in deltas:
            per_flow = trackers[delta]
            tracker = per_flow.get(flow)
            if tracker is None:
                tracker = FixedTimeout(delta)
                per_flow[flow] = tracker
            t_lb = tracker.observe(now)
            if t_lb is not None:
                estimates[delta].append(now, float(t_lb))

    run.lb.add_tap(probe)
    run.sim.run_until(config.duration)

    counts = {}
    for delta in deltas:
        series = estimates[delta]
        pre = sum(1 for t, _v in series.items() if t < config.step_at)
        counts[delta] = (pre, len(series) - pre)

    return Fig2aResult(
        config=config,
        ground_truth=run.ground_truth,
        estimates=estimates,
        sample_counts=counts,
    )


# ======================================================================
# Fig 2(b): the ensemble
# ======================================================================


@dataclass
class Fig2bResult:
    """Ensemble estimates, chosen timeouts, and tracking error."""

    config: BacklogConfig
    ground_truth: TimeSeries
    estimates: TimeSeries                      # (t, T_LB) from δₑ
    chosen_timeouts: TimeSeries                # (t, δₘ) per epoch
    epochs: int

    def median_estimate(self, after_step: bool) -> Optional[float]:
        """Median ensemble ``T_LB`` before or after the step."""
        cut = self.config.step_at
        values = [
            v for t, v in self.estimates.items() if (t >= cut) == after_step
        ]
        if not values:
            return None
        return exact_quantile(values, 0.5)

    def median_ground_truth(self, after_step: bool) -> Optional[float]:
        """Median true RTT before or after the step."""
        cut = self.config.step_at
        values = [
            v for t, v in self.ground_truth.items() if (t >= cut) == after_step
        ]
        if not values:
            return None
        return exact_quantile(values, 0.5)

    def tracking_error(self, after_step: bool) -> Optional[float]:
        """|median(T_LB) − median(T_client)| / median(T_client)."""
        est = self.median_estimate(after_step)
        truth = self.median_ground_truth(after_step)
        if est is None or truth is None or truth == 0:
            return None
        return abs(est - truth) / truth


def run_fig2b(
    config: Optional[BacklogConfig] = None,
    ensemble: Optional[EnsembleConfig] = None,
) -> Fig2bResult:
    """ENSEMBLETIMEOUT tracking the RTT step (paper Fig 2b)."""
    config = config or BacklogConfig()
    ensemble_config = ensemble or EnsembleConfig()
    run = build_backlog(config)

    ensembles: Dict[FlowKey, EnsembleTimeout] = {}
    estimates = TimeSeries(name="T_LB_ensemble")
    chosen = TimeSeries(name="delta_m")

    def probe(now: int, flow: FlowKey, backend: str, packet: Packet) -> None:
        tracker = ensembles.get(flow)
        if tracker is None:
            tracker = EnsembleTimeout(ensemble_config)
            ensembles[flow] = tracker
        before = tracker.epochs_completed
        t_lb = tracker.observe(now)
        if tracker.epochs_completed != before:
            chosen.append(now, float(tracker.current_timeout))
        if t_lb is not None:
            estimates.append(now, float(t_lb))

    run.lb.add_tap(probe)
    run.sim.run_until(config.duration)

    epochs = max((e.epochs_completed for e in ensembles.values()), default=0)
    return Fig2bResult(
        config=config,
        ground_truth=run.ground_truth,
        estimates=estimates,
        chosen_timeouts=chosen,
        epochs=epochs,
    )


# ======================================================================
# Fig 3: the end-to-end tail-latency experiment
# ======================================================================


@dataclass
class Fig3Config:
    """Scaled-down Fig 3: two memcached-like servers, mid-run injection.

    The paper ran 200 s with injection at t = 100 s; simulation runs a
    shorter window with the same structure (injection at the midpoint).
    """

    seed: int = 11
    duration: int = 4 * SECONDS
    injection_extra: int = 1 * MILLISECONDS
    injected_server: str = "server0"
    n_servers: int = 2
    bucket: int = 100 * MILLISECONDS
    memtier: MemtierConfig = field(default_factory=MemtierConfig)
    #: Observability plane for each arm (None keeps it off).
    obs: Optional[ObsConfig] = None
    #: Insight plane for each arm (None keeps it off).
    insight: Optional[InsightConfig] = None

    @property
    def injection_at(self) -> int:
        """Injection fires at the midpoint of the run."""
        return self.duration // 2


@dataclass
class Fig3Result:
    """Both arms of Fig 3 plus the headline numbers."""

    config: Fig3Config
    results: Dict[str, ScenarioResult]         # policy value → result

    def p95_series(self, policy: str) -> List[Tuple[int, float]]:
        """(bucket start ns, p95 GET ns) series for one arm."""
        return self.results[policy].latency_series(
            bucket=self.config.bucket, op=Op.GET, q=0.95
        )

    def p95_window(
        self, policy: str, start: int, end: int
    ) -> Optional[float]:
        """p95 GET latency over a completion-time window."""
        values = self.results[policy].latencies(Op.GET, start, end)
        if not values:
            return None
        return exact_quantile(values, 0.95)

    def steady_state_p95(self, policy: str) -> Optional[float]:
        """p95 before the injection (after 10% warmup)."""
        return self.p95_window(
            policy, self.config.duration // 10, self.config.injection_at
        )

    def post_injection_p95(self, policy: str, settle: int = 0) -> Optional[float]:
        """p95 after the injection (+optional settle time)."""
        return self.p95_window(
            policy, self.config.injection_at + settle, self.config.duration
        )


def run_fig3(
    config: Optional[Fig3Config] = None,
    policies: Sequence[PolicyName] = (PolicyName.MAGLEV, PolicyName.FEEDBACK),
) -> Fig3Result:
    """Run the Fig 3 experiment for each policy arm (identical seeds)."""
    config = config or Fig3Config()
    results: Dict[str, ScenarioResult] = {}
    for policy in policies:
        scenario_config = ScenarioConfig(
            seed=config.seed,
            duration=config.duration,
            n_servers=config.n_servers,
            policy=policy,
            memtier=config.memtier,
            faults=[
                DelayFault(
                    start=config.injection_at,
                    node=config.injected_server,
                    extra=config.injection_extra,
                )
            ],
            obs=config.obs or ObsConfig(),
            insight=config.insight or InsightConfig(),
            warmup=config.duration // 10,
        )
        results[policy.value] = run_scenario(scenario_config)
    return Fig3Result(config=config, results=results)


def fig3_robustness_point(config: Fig3Config) -> Dict[str, object]:
    """Both Fig 3 arms for one seed, distilled into a flat sweep row.

    Values are raw nanoseconds so downstream assertions (e.g. the
    seed-robustness bench) stay exact; ``settle`` matches the bench's
    ``duration // 8`` post-injection settling window.
    """
    result = run_fig3(config)
    settle = config.duration // 8
    return {
        "seed": config.seed,
        "maglev_pre_p95_ns": result.steady_state_p95("maglev"),
        "maglev_post_p95_ns": result.post_injection_p95("maglev", settle),
        "feedback_pre_p95_ns": result.steady_state_p95("feedback"),
        "feedback_post_p95_ns": result.post_injection_p95("feedback", settle),
    }


# ======================================================================
# Reaction-time claim (§1, §4)
# ======================================================================


@dataclass
class ReactionResult:
    """How fast the feedback loop responded to the injection."""

    injection_at: int
    first_shift_after: Optional[int]
    injected_weight_floor_at: Optional[int]
    shifts_total: int

    @property
    def reaction_ns(self) -> Optional[int]:
        """Injection → first weight shift."""
        if self.first_shift_after is None:
            return None
        return self.first_shift_after - self.injection_at


def run_reaction(config: Optional[Fig3Config] = None) -> ReactionResult:
    """Measure the §4 claim: traffic shifts within milliseconds."""
    config = config or Fig3Config()
    fig3 = run_fig3(config, policies=(PolicyName.FEEDBACK,))
    result = fig3.results[PolicyName.FEEDBACK.value]
    injection = config.injection_at

    first_shift = result.first_shift_after(injection)
    feedback = result.scenario.feedback
    assert feedback is not None and feedback.controller is not None

    # When did the injected server's weight reach the floor?
    floor_time: Optional[int] = None
    floor = feedback.controller.config.weight_floor
    for event in feedback.controller.shifts:
        weights = event.weights_after
        total = sum(weights.values())
        injected = weights.get(config.injected_server, 0.0)
        if event.time >= injection and injected <= floor * total * 1.01:
            floor_time = event.time
            break

    return ReactionResult(
        injection_at=injection,
        first_shift_after=first_shift,
        injected_weight_floor_at=floor_time,
        shifts_total=len(feedback.controller.shifts),
    )


# ======================================================================
# Error-model claim (§3): T_LB − T_client = O3 − O1 + T_trigger
# ======================================================================


@dataclass
class ErrorDecompositionResult:
    """Measured error of the proxy latency vs the paper's identity."""

    think_time: int
    median_t_lb: float
    median_t_client: float
    #: O3 − O1 is 0 by construction (symmetric client↔LB path, no jitter).
    predicted_error: float
    measured_error: float

    @property
    def identity_gap(self) -> float:
        """|measured − predicted| (ns); small gap validates the model."""
        return abs(self.measured_error - self.predicted_error)


def run_error_decomposition(
    think_time: int = 0,
    duration: int = 1 * SECONDS,
    seed: int = 3,
) -> ErrorDecompositionResult:
    """Single serialized client: each response triggers the next request.

    With pipeline = 1 the next request *is* the causally-triggered
    packet, so ``T_trigger = think_time`` exactly; with a symmetric,
    jitter-free client↔LB path, ``O3 − O1 = 0``.  The paper's identity
    then predicts ``median(T_LB) − median(T_client) = think_time``.

    The client uses delayed ACKs so its cumulative ACK piggybacks on the
    next request.  With immediate ACKs the pure ACK for the response —
    itself a causally-triggered packet with ``T_trigger ≈ 0`` — would
    reach the LB first and split the batch early; that regime is also
    interesting (it *reduces* the error) and is exercised by the
    ack-policy ablation instead.
    """
    memtier = MemtierConfig(
        connections=1,
        pipeline=1,
        requests_per_connection=1_000_000,  # one long-lived connection
        think_time=think_time,
        transport=TransportConfig(ack_policy_factory=DelayedAck),
    )
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        n_servers=1,
        policy=PolicyName.FEEDBACK,
        memtier=memtier,
        warmup=duration // 10,
    )
    config.feedback.control = False  # measurement only
    result = run_scenario(config)

    feedback = result.scenario.feedback
    assert feedback is not None
    t_lb_values = [float(s.t_lb) for s in feedback.samples]
    t_client_values = [
        float(r.latency)
        for r in result.records
        if r.completed_at >= config.warmup
    ]
    median_t_lb = exact_quantile(t_lb_values, 0.5) if t_lb_values else 0.0
    median_t_client = (
        exact_quantile(t_client_values, 0.5) if t_client_values else 0.0
    )
    return ErrorDecompositionResult(
        think_time=think_time,
        median_t_lb=median_t_lb,
        median_t_client=median_t_client,
        predicted_error=float(think_time),
        measured_error=median_t_lb - median_t_client,
    )
