"""Parameter sweeps around the paper's design choices.

Each ``sweep_*`` function builds a family of scenarios differing in
exactly one knob and returns a list of row dicts, which the ablation
benches print with :func:`~repro.harness.report.format_table`.
DESIGN.md §5 lists the design choices these interrogate.

Every sweep submits its points through the sweep executor
(:mod:`repro.sweep`): pass ``jobs=N`` to fan points out across worker
processes and ``store=ResultStore(...)`` to make unchanged points cache
hits.  Each point is a module-level runner function over a picklable
payload, so rows are pure functions of their configs — ``jobs=1`` and
``jobs=N`` produce identical rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.app.protocol import Op
from repro.core.ensemble import EnsembleConfig
from repro.faults.model import DelayFault
from repro.harness.config import NetworkParams, PolicyName, ScenarioConfig
from repro.harness.figures import (
    BacklogConfig,
    Fig3Config,
    run_fig2b,
)
from repro.harness.runner import run_scenario
from repro.sweep.executor import run_tasks, task
from repro.telemetry.quantiles import exact_quantile
from repro.units import (
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
    to_micros,
    to_millis,
)

Row = Dict[str, object]


def sweep_epoch(
    epochs_ms: Sequence[int] = (8, 16, 32, 64, 128, 256),
    backlog: Optional[BacklogConfig] = None,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """ABL-EPOCH: ENSEMBLETIMEOUT tracking quality vs epoch length E.

    Short epochs adapt faster but count fewer samples per timeout (noisy
    cliffs); long epochs are stable but stale after an RTT change.
    """
    backlog = backlog or BacklogConfig(duration=2 * SECONDS, step_at=1 * SECONDS)
    tasks = [
        task(
            _epoch_point,
            {
                "backlog": backlog,
                "ensemble": EnsembleConfig(epoch=epoch_ms * MILLISECONDS),
                "epoch_ms": epoch_ms,
            },
            label="epoch=%dms" % epoch_ms,
        )
        for epoch_ms in epochs_ms
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _epoch_point(payload: Dict[str, object]) -> Row:
    result = run_fig2b(payload["backlog"], payload["ensemble"])
    return {
        "epoch_ms": payload["epoch_ms"],
        "epochs": result.epochs,
        "err_pre": _fmt_ratio(result.tracking_error(False)),
        "err_post": _fmt_ratio(result.tracking_error(True)),
        "est_post_us": _fmt_us(result.median_estimate(True)),
        "truth_post_us": _fmt_us(result.median_ground_truth(True)),
    }


def sweep_ensemble(
    backlog: Optional[BacklogConfig] = None,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """ABL-ENSEMBLE: ensemble width/range vs tracking quality.

    A too-narrow ensemble cannot bracket the true RTT after the step; a
    wider one costs more per-packet state but keeps tracking.
    """
    backlog = backlog or BacklogConfig(duration=2 * SECONDS, step_at=1 * SECONDS)
    variants = {
        "narrow-3 (64..256us)": [64 * MICROSECONDS * (2 ** i) for i in range(3)],
        "paper-7 (64us..4ms)": [64 * MICROSECONDS * (2 ** i) for i in range(7)],
        "wide-9 (16us..4ms)": [16 * MICROSECONDS * (2 ** i) for i in range(9)],
        "coarse-4 (64us..4ms x4)": [64 * MICROSECONDS * (4 ** i) for i in range(4)],
    }
    tasks = [
        task(
            _ensemble_point,
            {
                "backlog": backlog,
                "ensemble": EnsembleConfig(timeouts=timeouts),
                "label": label,
            },
            label=label,
        )
        for label, timeouts in variants.items()
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _ensemble_point(payload: Dict[str, object]) -> Row:
    result = run_fig2b(payload["backlog"], payload["ensemble"])
    return {
        "ensemble": payload["label"],
        "k": len(payload["ensemble"].timeouts),
        "err_pre": _fmt_ratio(result.tracking_error(False)),
        "err_post": _fmt_ratio(result.tracking_error(True)),
        "est_post_us": _fmt_us(result.median_estimate(True)),
    }


def sweep_alpha(
    alphas: Sequence[float] = (0.02, 0.05, 0.10, 0.20, 0.40),
    fig3: Optional[Fig3Config] = None,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """ABL-ALPHA: shift fraction vs recovery speed and stability.

    Small α converges slowly (many shifts to drain the slow server);
    large α converges in one or two shifts but overshoots more
    aggressively on noise.
    """
    fig3 = fig3 or Fig3Config(duration=2 * SECONDS)
    tasks = []
    for alpha in alphas:
        config = _fig3_scenario(fig3, PolicyName.FEEDBACK)
        config.feedback.controller.alpha = alpha
        tasks.append(
            task(
                _alpha_point,
                {"config": config, "fig3": _fig3_meta(fig3), "alpha": alpha},
                label="alpha=%g" % alpha,
            )
        )
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _alpha_point(payload: Dict[str, object]) -> Row:
    meta = payload["fig3"]
    result = run_scenario(payload["config"])
    injection = meta["injection_at"]
    first = result.first_shift_after(injection)
    post = result.latencies(Op.GET, injection + meta["duration"] // 8, None)
    return {
        "alpha": payload["alpha"],
        "shifts": len(result.shift_times()),
        "react_ms": _fmt_ms(None if first is None else first - injection),
        "post_p95_ms": _fmt_ms(exact_quantile(post, 0.95) if post else None),
        "slow_server_share": "%.3f" % _injected_share(result, meta),
    }


def sweep_hysteresis(
    ratios: Sequence[float] = (1.0, 1.1, 1.2, 1.5, 2.0),
    fig3: Optional[Fig3Config] = None,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """ABL-HYST: the paper-verbatim always-shift rule vs damped variants.

    At ratio 1.0 the controller shifts on noise every sample and weights
    collapse to the floor *before* any fault — the instability that
    motivated our 1.2 default (see controller module docs).
    """
    fig3 = fig3 or Fig3Config(duration=2 * SECONDS)
    tasks = []
    for ratio in ratios:
        config = _fig3_scenario(fig3, PolicyName.FEEDBACK)
        config.feedback.controller.hysteresis_ratio = ratio
        tasks.append(
            task(
                _hysteresis_point,
                {"config": config, "fig3": _fig3_meta(fig3), "ratio": ratio},
                label="hysteresis=%g" % ratio,
            )
        )
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _hysteresis_point(payload: Dict[str, object]) -> Row:
    meta = payload["fig3"]
    result = run_scenario(payload["config"])
    injection = meta["injection_at"]
    shifts = result.shift_times()
    first = result.first_shift_after(injection)
    return {
        "hysteresis": payload["ratio"],
        "pre_injection_shifts": sum(1 for t in shifts if t < injection),
        "post_injection_shifts": sum(1 for t in shifts if t >= injection),
        "react_ms": _fmt_ms(None if first is None else first - injection),
    }


def sweep_policies(
    fig3: Optional[Fig3Config] = None,
    policies: Sequence[PolicyName] = (
        PolicyName.MAGLEV,
        PolicyName.FEEDBACK,
        PolicyName.ORACLE,
        PolicyName.ROUND_ROBIN,
        PolicyName.LEAST_CONNECTIONS,
        PolicyName.POWER_OF_TWO,
    ),
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """ABL-POLICY: every routing policy on the Fig 3 stimulus.

    Connection-oblivious policies (Maglev, RR, least-conn, P2C without a
    latency signal) keep feeding the slow server; the in-band feedback
    loop and the oracle drain it.
    """
    fig3 = fig3 or Fig3Config(duration=2 * SECONDS)
    tasks = [
        task(
            _policy_point,
            {
                "config": _fig3_scenario(fig3, policy),
                "fig3": _fig3_meta(fig3),
                "policy": policy.value,
            },
            label="policy=%s" % policy.value,
        )
        for policy in policies
    ]
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _policy_point(payload: Dict[str, object]) -> Row:
    meta = payload["fig3"]
    result = run_scenario(payload["config"])
    injection = meta["injection_at"]
    settle = meta["duration"] // 8
    pre = result.latencies(Op.GET, meta["duration"] // 10, injection)
    post = result.latencies(Op.GET, injection + settle, meta["duration"])
    return {
        "policy": payload["policy"],
        "pre_p95_ms": _fmt_ms(exact_quantile(pre, 0.95) if pre else None),
        "post_p95_ms": _fmt_ms(exact_quantile(post, 0.95) if post else None),
        "slow_server_share": "%.3f" % _injected_share(result, meta),
        "requests": len(result.records),
    }


def sweep_far_clients(
    extra_delays_us: Sequence[int] = (0, 100, 500, 2000),
    duration: int = 2 * SECONDS,
    seed: int = 5,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """Open question #1: how far clients distort the in-band signal.

    The LB's ``T_LB`` includes the client↔LB legs it cannot control; as
    those grow, per-backend estimates inflate uniformly.  Ranking (and
    therefore control) still works when all backends serve the same
    client mix, which this sweep demonstrates: the *difference* between
    the injected and healthy backends' estimates stays ≈ the injected
    delay even for far clients.
    """
    tasks = []
    for extra_us in extra_delays_us:
        network = NetworkParams(
            client_lb_delay_overrides=[10 * MICROSECONDS + extra_us * MICROSECONDS]
        )
        config = ScenarioConfig(
            seed=seed,
            duration=duration,
            policy=PolicyName.FEEDBACK,
            network=network,
            faults=[
                DelayFault(
                    start=duration // 2, node="server0", extra=1 * MILLISECONDS
                )
            ],
            warmup=duration // 10,
        )
        config.feedback.control = False  # isolate measurement
        tasks.append(
            task(
                _far_clients_point,
                {"config": config, "extra_us": extra_us},
                label="extra=%dus" % extra_us,
            )
        )
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _far_clients_point(payload: Dict[str, object]) -> Row:
    result = run_scenario(payload["config"])
    feedback = result.scenario.feedback
    assert feedback is not None
    est0 = feedback.estimator.estimate("server0")
    est1 = feedback.estimator.estimate("server1")
    gap = None
    if est0 is not None and est1 is not None:
        gap = est0 - est1
    return {
        "client_extra_us": payload["extra_us"],
        "est_injected_us": _fmt_us(est0),
        "est_healthy_us": _fmt_us(est1),
        "gap_us": _fmt_us(gap),
        "samples": feedback.sample_count,
    }


def sweep_pipeline_depth(
    depths: Sequence[int] = (1, 2, 4, 8),
    duration: int = 2 * SECONDS,
    seed: int = 9,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """Measurement quality vs application concurrency limit.

    Deeper pipelines make batches longer and pauses shorter; at some
    depth flows stop pausing (the flow-control assumption of §3 erodes)
    and samples get scarcer relative to traffic.
    """
    tasks = []
    for depth in depths:
        config = ScenarioConfig(
            seed=seed,
            duration=duration,
            policy=PolicyName.FEEDBACK,
            warmup=duration // 10,
        )
        config.memtier = replace(config.memtier, pipeline=depth)
        config.feedback.control = False
        tasks.append(
            task(
                _pipeline_point,
                {"config": config, "depth": depth},
                label="pipeline=%d" % depth,
            )
        )
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _pipeline_point(payload: Dict[str, object]) -> Row:
    config = payload["config"]
    result = run_scenario(config)
    feedback = result.scenario.feedback
    assert feedback is not None
    t_lbs = [float(s.t_lb) for s in feedback.samples]
    truth = result.latencies(start=config.warmup)
    return {
        "pipeline": payload["depth"],
        "requests": len(result.records),
        "t_lb_samples": feedback.sample_count,
        "med_t_lb_us": _fmt_us(exact_quantile(t_lbs, 0.5) if t_lbs else None),
        "med_t_client_us": _fmt_us(
            exact_quantile([float(v) for v in truth], 0.5) if truth else None
        ),
    }


def sweep_ack_and_pacing(
    duration: int = 2 * SECONDS,
    seed: int = 13,
    jobs: int = 1,
    store=None,
) -> List[Row]:
    """Open question #2: packet-timing behaviours vs estimator accuracy.

    Compares the measurement error (median T_LB vs median T_client) of
    the same workload under: immediate ACKs, delayed ACKs, and paced
    clients.  Delayed ACKs remove the early pure-ACK trigger (error
    grows toward T_trigger); pacing smears batch boundaries.
    """
    from repro.transport.ack_policy import DelayedAck, ImmediateAck
    from repro.transport.connection import TransportConfig

    variants = {
        "immediate-acks": TransportConfig(ack_policy_factory=ImmediateAck),
        "delayed-acks": TransportConfig(ack_policy_factory=DelayedAck),
        "paced-1gbps": TransportConfig(pacing_rate_bps=1_000_000_000),
    }
    tasks = []
    for label, transport in variants.items():
        config = ScenarioConfig(
            seed=seed,
            duration=duration,
            policy=PolicyName.FEEDBACK,
            warmup=duration // 10,
        )
        config.memtier = replace(config.memtier, transport=transport)
        config.feedback.control = False
        tasks.append(
            task(
                _ack_pacing_point,
                {"config": config, "label": label},
                label=label,
            )
        )
    return run_tasks(tasks, jobs=jobs, store=store).rows


def _ack_pacing_point(payload: Dict[str, object]) -> Row:
    config = payload["config"]
    result = run_scenario(config)
    feedback = result.scenario.feedback
    assert feedback is not None
    t_lbs = [float(s.t_lb) for s in feedback.samples]
    truth = [float(v) for v in result.latencies(start=config.warmup)]
    med_lb = exact_quantile(t_lbs, 0.5) if t_lbs else None
    med_truth = exact_quantile(truth, 0.5) if truth else None
    error = None
    if med_lb is not None and med_truth:
        error = abs(med_lb - med_truth) / med_truth
    return {
        "transport": payload["label"],
        "t_lb_samples": feedback.sample_count,
        "med_t_lb_us": _fmt_us(med_lb),
        "med_t_client_us": _fmt_us(med_truth),
        "rel_error": _fmt_ratio(error),
    }


# ----------------------------------------------------------------------


def _fig3_scenario(fig3: Fig3Config, policy: PolicyName) -> ScenarioConfig:
    return ScenarioConfig(
        seed=fig3.seed,
        duration=fig3.duration,
        n_servers=fig3.n_servers,
        policy=policy,
        memtier=fig3.memtier,
        faults=[
            DelayFault(
                start=fig3.injection_at,
                node=fig3.injected_server,
                extra=fig3.injection_extra,
            )
        ],
        warmup=fig3.duration // 10,
    )


def _fig3_meta(fig3: Fig3Config) -> Dict[str, object]:
    """The picklable slice of Fig3Config the point metrics need."""
    return {
        "injection_at": fig3.injection_at,
        "duration": fig3.duration,
        "injected_server": fig3.injected_server,
    }


def _injected_share(result, meta: Dict[str, object]) -> float:
    """Fraction of post-injection requests served by the slow server."""
    injected = meta["injected_server"]
    start = meta["injection_at"] + meta["duration"] // 8
    total = 0
    hit = 0
    for record in result.records:
        if record.completed_at >= start:
            total += 1
            if record.server == injected:
                hit += 1
    return hit / total if total else 0.0


def _fmt_us(value) -> str:
    return "-" if value is None else "%.1f" % to_micros(round(value))


def _fmt_ms(value) -> str:
    return "-" if value is None else "%.3f" % to_millis(round(value))


def _fmt_ratio(value) -> str:
    return "-" if value is None else "%.3f" % value
