"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses partition the
failure domains: simulation scheduling, network configuration, transport
protocol violations, and load-balancer configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """Bad network configuration: unknown nodes, missing pipes, etc."""


class AddressError(NetworkError):
    """Malformed or unresolvable address."""


class TransportError(ReproError):
    """Violation of transport-protocol state (e.g. send on closed socket)."""


class ConnectionResetError_(TransportError):
    """Peer aborted the connection (named to avoid shadowing the builtin)."""


class ProtocolError(ReproError):
    """Malformed application-layer message."""


class BalancerError(ReproError):
    """Invalid load-balancer configuration (e.g. empty backend pool)."""


class ConfigError(ReproError):
    """Invalid experiment/scenario configuration value."""


class SweepError(ReproError):
    """A sweep point failed permanently (runner error or worker crash)."""


class FleetError(ReproError):
    """Invalid fleet operation (e.g. an illegal lifecycle transition)."""


class InvariantViolation(ReproError):
    """A chaos campaign found a run that breaks a registered invariant.

    Carries the violations and, when the shrinker produced one, the
    path of the minimal-reproducer artifact (a JSON file replayable via
    ``repro chaos replay <artifact>``) so the failure is actionable
    from the exception alone.
    """

    def __init__(self, message: str, artifact: "str | None" = None):
        super().__init__(message)
        #: Path of the shrunk reproducer artifact, if one was written.
        self.artifact = artifact
