"""Packet pacing.

Pacing spreads a window of segments over the RTT instead of sending them
back-to-back.  The paper (open question #2) notes pacing as a behaviour
that erodes the inter-packet-gap signal its measurement relies on; a
:class:`Pacer` lets experiments turn that erosion on and measure it.
"""

from __future__ import annotations

from repro.units import BITS_PER_BYTE, SECONDS


class Pacer:
    """Allocates transmission instants at a fixed byte rate.

    ``allocate(now, size_bytes)`` returns the earliest time the segment
    may leave, spacing consecutive segments by ``size / rate``.
    """

    def __init__(self, rate_bps: int):
        if rate_bps <= 0:
            raise ValueError("pacing rate must be positive, got %r" % rate_bps)
        self._rate_bps = rate_bps
        self._next_free = 0

    @property
    def rate_bps(self) -> int:
        """Configured pacing rate in bits/s."""
        return self._rate_bps

    def allocate(self, now: int, size_bytes: int) -> int:
        """Reserve a send slot; returns the absolute send time (ns)."""
        send_at = max(now, self._next_free)
        gap = size_bytes * BITS_PER_BYTE * SECONDS // self._rate_bps
        self._next_free = send_at + gap
        return send_at

    def reset(self) -> None:
        """Forget the reservation state (e.g. after idle)."""
        self._next_free = 0
