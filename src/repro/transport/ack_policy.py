"""Acknowledgment generation policies.

The paper's open question #2 calls out delayed ACKs as a timing
behaviour that can violate the "triggered soon after the response"
assumption.  Making the ACK policy pluggable lets experiments quantify
exactly how much estimator accuracy degrades under each policy.

A policy decides, for each received data segment, whether to emit a pure
ACK now, arm a delay timer, or do nothing (the ACK will piggyback on
data the application is about to send).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator, Timer
from repro.units import MILLISECONDS


class AckPolicy:
    """Base policy: acknowledge immediately on every data segment."""

    def attach(self, sim: Simulator, send_ack: Callable[[], None]) -> None:
        """Bind to a connection's clock and pure-ACK emitter."""
        self._send_ack = send_ack

    def on_data(self, in_order: bool) -> None:
        """Called for every received data segment."""
        self._send_ack()

    def on_piggyback(self) -> None:
        """Called when an outgoing data segment carried the ACK."""

    def cancel(self) -> None:
        """Tear down any pending timers (connection closing)."""


class ImmediateAck(AckPolicy):
    """Every data segment is acknowledged at once (TCP quickack)."""


class DelayedAck(AckPolicy):
    """RFC 1122-style delayed ACKs.

    ACK every second full segment immediately; otherwise wait up to
    ``timeout`` (default 40 ms, a common Linux value) for either a second
    segment or outgoing data to piggyback on.  Out-of-order segments are
    acknowledged immediately (duplicate ACK), as TCP requires.
    """

    def __init__(self, timeout: int = 40 * MILLISECONDS, every: int = 2):
        if timeout <= 0:
            raise ValueError("delayed-ack timeout must be positive")
        if every < 2:
            raise ValueError("'every' must be >= 2 for a delayed-ack policy")
        self._timeout = timeout
        self._every = every
        self._pending = 0

    def attach(self, sim: Simulator, send_ack: Callable[[], None]) -> None:
        self._send_ack = send_ack
        self._timer = Timer(sim, self._fire)

    def on_data(self, in_order: bool) -> None:
        if not in_order:
            # Duplicate/out-of-order data: ack immediately so the sender
            # can detect loss.
            self._flush()
            return
        self._pending += 1
        if self._pending >= self._every:
            self._flush()
        elif not self._timer.running:
            self._timer.start(self._timeout)

    def on_piggyback(self) -> None:
        # The outgoing data segment carried our cumulative ACK.
        self._pending = 0
        self._timer.stop()

    def cancel(self) -> None:
        self._timer.stop()
        self._pending = 0

    def _flush(self) -> None:
        self._pending = 0
        self._timer.stop()
        self._send_ack()

    def _fire(self) -> None:
        self._pending = 0
        self._send_ack()
