"""TCP-like reliable byte-stream transport.

This package provides the flow-controlled transport whose *packet
timing* the paper's measurement technique exploits: window-limited
senders transmit in bursts, pause when the window fills, and resume when
an ACK (or an application-level response) re-opens their quota — the
causally-triggered transmissions of §3.

Components:

* :class:`~repro.transport.connection.Connection` — handshake, sliding
  window, cumulative ACKs, retransmission, FIN teardown.
* :class:`~repro.transport.connection.TransportConfig` — every knob
  (MSS, window, ACK policy, RTO bounds, pacing).
* :class:`~repro.transport.endpoint.Host` — a network node that demuxes
  packets to connections and listeners.
* ACK policies (immediate / delayed) and pacing model the "general
  packet timing behaviors" of the paper's open question #2.
"""

from repro.transport.ack_policy import AckPolicy, DelayedAck, ImmediateAck
from repro.transport.connection import Connection, ConnectionState, TransportConfig
from repro.transport.endpoint import Host, Listener
from repro.transport.pacing import Pacer
from repro.transport.retransmit import RttEstimator

__all__ = [
    "AckPolicy",
    "ImmediateAck",
    "DelayedAck",
    "Connection",
    "ConnectionState",
    "TransportConfig",
    "Host",
    "Listener",
    "Pacer",
    "RttEstimator",
]
