"""Hosts: network nodes that own connections and listeners.

A :class:`Host` is the meeting point of the network and transport
layers.  It demultiplexes inbound packets to connections by the full
(local endpoint, remote endpoint) pair — which naturally supports DSR,
where a server host accepts packets addressed to the VIP alias and
sources responses from it — and hands SYNs for listening ports to the
registered :class:`Listener`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import FLAG_ACK, FLAG_SYN, Packet
from repro.transport.connection import Connection, TransportConfig

_ConnKey = Tuple[str, int, str, int]  # local host, local port, remote host, remote port


class Listener:
    """A passive open on a port: builds server connections on SYN."""

    def __init__(
        self,
        port: int,
        on_connection: Callable[[Connection], None],
        config: Optional[TransportConfig] = None,
    ):
        self.port = port
        self.on_connection = on_connection
        self.config = config


class Host:
    """A transport endpoint attached to the network.

    Parameters
    ----------
    network:
        The fabric this host sends and receives on (must already contain
        a node slot for ``name`` — use :meth:`Host.attach`).
    name:
        Network node name; also the host part of local endpoints.
    default_config:
        Transport parameters used when a connect/listen call does not
        override them.
    """

    def __init__(
        self,
        network: Network,
        name: str,
        default_config: Optional[TransportConfig] = None,
    ):
        self.network = network
        self.name = name
        self.sim = network.sim
        #: The network's PacketSlab (None in object mode).  Connections
        #: read this to decide how to transmit.
        self.slab = network.slab
        self.default_config = default_config or TransportConfig()
        self._connections: Dict[_ConnKey, Connection] = {}
        # Slab-mode demux twin: the (local endpoint index, remote
        # endpoint index) pair packed into one int (local << 32 | remote)
        # -> Connection.  A packed-int key skips both the 4-string tuple
        # hash and the 2-tuple allocation on every delivery.
        self._conns_by_pair: Dict[int, Connection] = {}
        self._listeners: Dict[int, Listener] = {}
        self._next_ephemeral = 49_152
        network.add_node(self)

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------

    def listen(
        self,
        port: int,
        on_connection: Callable[[Connection], None],
        config: Optional[TransportConfig] = None,
    ) -> Listener:
        """Accept connections on ``port``; ``on_connection`` fires per SYN."""
        if port in self._listeners:
            raise TransportError("port %d already listening on %s" % (port, self.name))
        listener = Listener(port, on_connection, config)
        self._listeners[port] = listener
        return listener

    def stop_listening(self, port: int) -> None:
        """Remove a listener; new SYNs to the port go unanswered.

        Existing connections are unaffected.  Used to simulate a service
        going dark for health-check and churn experiments.
        """
        self._listeners.pop(port, None)

    def connect(
        self,
        remote: Endpoint,
        config: Optional[TransportConfig] = None,
        local_port: Optional[int] = None,
    ) -> Connection:
        """Active-open a connection to ``remote``; sends the SYN now."""
        if local_port is None:
            local_port = self._allocate_port(remote)
        local = Endpoint(self.name, local_port)
        key = self._key(local, remote)
        if key in self._connections:
            raise TransportError("connection %s -> %s already exists" % (local, remote))
        conn = Connection(
            host=self,
            local=local,
            remote=remote,
            config=(config or self.default_config).copy(),
            is_client=True,
        )
        self._connections[key] = conn
        if self.slab is not None:
            self._conns_by_pair[conn._src_i << 32 | conn._dst_i] = conn
        conn.open()
        return conn

    @property
    def connection_count(self) -> int:
        """Live connections currently tracked by this host."""
        return len(self._connections)

    # ------------------------------------------------------------------
    # Node interface
    # ------------------------------------------------------------------

    def on_packet(self, packet) -> None:
        """Demux an inbound packet (object or slab handle).

        Slab handles demux on the interned (dst, src) endpoint-index
        pair; the 4-string-tuple key path remains for object mode.  A
        handle that matches nothing is freed here — the host owns it on
        delivery.
        """
        if type(packet) is int:
            slab = self.slab
            dst_i = slab.dst_i[packet]
            src_i = slab.src_i[packet]
            conn = self._conns_by_pair.get(dst_i << 32 | src_i)
            if conn is not None:
                conn.handle_packet(packet)
                return
            flags = slab.flags[packet]
            if flags & FLAG_SYN and not flags & FLAG_ACK:
                local = slab.endpoint(dst_i)
                listener = self._listeners.get(local.port)
                if listener is not None:
                    remote = slab.endpoint(src_i)
                    conn = Connection(
                        host=self,
                        local=local,
                        remote=remote,
                        config=(listener.config or self.default_config).copy(),
                        is_client=False,
                    )
                    self._connections[self._key(local, remote)] = conn
                    self._conns_by_pair[conn._src_i << 32 | conn._dst_i] = conn
                    listener.on_connection(conn)
                    conn.handle_packet(packet)
                    return
            slab.free(packet)
            return

        local = packet.dst
        remote = packet.src
        key = self._key(local, remote)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_packet(packet)
            return

        if packet.is_syn and not packet.is_ack:
            listener = self._listeners.get(local.port)
            if listener is not None:
                conn = Connection(
                    host=self,
                    local=local,
                    remote=remote,
                    config=(listener.config or self.default_config).copy(),
                    is_client=False,
                )
                self._connections[key] = conn
                listener.on_connection(conn)
                conn.handle_packet(packet)
                return
        # No matching connection: silently drop (stale segment after
        # teardown, or RST for an unknown flow).

    def transmit(self, packet) -> bool:
        """Send a packet (object or slab handle) via the network's routing."""
        return self.network.send_from(self.name, packet)

    def forget_connection(self, conn: Connection) -> None:
        """Remove a closed connection from the demux table."""
        key = self._key(conn.local, conn.remote)
        self._connections.pop(key, None)
        if self.slab is not None:
            self._conns_by_pair.pop(conn._src_i << 32 | conn._dst_i, None)

    # ------------------------------------------------------------------

    def _allocate_port(self, remote: Endpoint) -> int:
        # Linear probe over the ephemeral range; raises if exhausted.
        for _ in range(16_384):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 65_535:
                self._next_ephemeral = 49_152
            key = self._key(Endpoint(self.name, port), remote)
            if key not in self._connections:
                return port
        raise TransportError("ephemeral ports exhausted on %s" % self.name)

    @staticmethod
    def _key(local: Endpoint, remote: Endpoint) -> _ConnKey:
        return (local.host, local.port, remote.host, remote.port)

    def __repr__(self) -> str:
        return "Host(%s, %d conns)" % (self.name, len(self._connections))
