"""TCP-like connection: handshake, sliding window, ACKs, retransmission.

The model is a byte-stream TCP reduced to what the reproduction needs,
while keeping the *timing* mechanics faithful:

* 3-way handshake (SYN / SYN-ACK / ACK); SYN and FIN consume a sequence
  number.
* A fixed flow-control window (``TransportConfig.window``): the sender
  may have at most ``window`` un-acked bytes outstanding.  A backlogged
  sender therefore transmits a *burst* per RTT and pauses — exactly the
  pause structure Algorithms 1–2 segment into batches.
* Cumulative ACKs with pluggable generation policy (immediate/delayed);
  outgoing data piggybacks the current ACK.
* Go-back-N-flavoured retransmission with RFC 6298 RTO estimation and
  Karn's rule.  (Loss is rare in these experiments — queues are deep —
  but queue overflow can drop, and correctness must survive it.)
* Application *messages*: ``send_message`` enqueues an opaque message of
  a given byte size; the receiver's ``on_message`` fires when the
  message's last byte is delivered in order.  Framing travels as
  :class:`~repro.net.packet.MessageBoundary` records on segments.

The connection knows nothing about the load balancer; it just sends
packets out of its :class:`~repro.transport.endpoint.Host`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import TransportError
from repro.net.addr import Endpoint
from repro.net.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    MessageBoundary,
    Packet,
    TcpFlags,
)
from repro.sim.engine import Simulator, Timer

_SYN_ACK = FLAG_SYN | FLAG_ACK
_ACK_PSH = FLAG_ACK | FLAG_PSH
_FIN_ACK = FLAG_FIN | FLAG_ACK
_RST_ACK = FLAG_RST | FLAG_ACK
_SYN_OR_FIN = FLAG_SYN | FLAG_FIN
from repro.transport.ack_policy import AckPolicy, ImmediateAck
from repro.transport.pacing import Pacer
from repro.transport.retransmit import RttEstimator
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.transport.endpoint import Host


class ConnectionState(enum.Enum):
    """Reduced TCP state machine."""

    CLOSED = "closed"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_SENT = "fin_sent"
    FIN_WAIT = "fin_wait"          # we sent FIN, waiting for peer FIN/ACK
    CLOSE_WAIT = "close_wait"      # peer sent FIN, we may still send


@dataclass
class TransportConfig:
    """Tunable transport parameters.

    ``ack_policy_factory`` builds a fresh policy per connection so that
    per-connection timers are not shared.
    """

    mss: int = 1448
    window: int = 65_535
    ack_policy_factory: Callable[[], AckPolicy] = ImmediateAck
    initial_rto: int = 100 * MILLISECONDS
    rto_min: int = 5 * MILLISECONDS
    pacing_rate_bps: Optional[int] = None

    def validate(self) -> None:
        """Raise TransportError on nonsensical parameters."""
        if self.mss <= 0:
            raise TransportError("mss must be positive, got %r" % self.mss)
        if self.window < self.mss:
            raise TransportError(
                "window (%d) must be at least one MSS (%d)" % (self.window, self.mss)
            )

    def copy(self) -> "TransportConfig":
        """A shallow copy safe to tweak per connection."""
        return replace(self)


class _SentSegment:
    """Book-keeping for an in-flight segment (hot-path __slots__ class;
    ``flags`` is a plain int)."""

    __slots__ = (
        "seq",
        "end_seq",
        "payload_len",
        "flags",
        "boundaries",
        "sent_at",
        "retransmitted",
    )

    def __init__(
        self,
        seq: int,
        end_seq: int,
        payload_len: int,
        flags: int,
        boundaries: List[MessageBoundary],
        sent_at: int,
        retransmitted: bool = False,
    ):
        self.seq = seq
        self.end_seq = end_seq
        self.payload_len = payload_len
        self.flags = flags
        self.boundaries = boundaries
        self.sent_at = sent_at
        self.retransmitted = retransmitted


@dataclass
class ConnectionStats:
    """Per-connection counters (tests and reports read these)."""

    segments_sent: int = 0
    segments_received: int = 0
    pure_acks_sent: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0


class Connection:
    """One endpoint of a reliable byte-stream connection.

    Constructed by :class:`~repro.transport.endpoint.Host` — via
    ``host.connect(...)`` on the client side, or by a listener on SYN
    arrival on the server side.  Applications interact through:

    * :meth:`send_message` — queue an application message.
    * ``on_established`` / ``on_message`` / ``on_closed`` callbacks.
    * :meth:`close` — graceful FIN after queued data drains.
    """

    def __init__(
        self,
        host: "Host",
        local: Endpoint,
        remote: Endpoint,
        config: TransportConfig,
        is_client: bool,
    ):
        config.validate()
        self._host = host
        # Prebound: _transmit runs per segment, so skip the attribute hop.
        self._host_transmit = host.transmit
        self._sim: Simulator = host.sim
        self.local = local
        self.remote = remote
        self.config = config
        self.is_client = is_client
        self.state = ConnectionState.CLOSED
        self.stats = ConnectionStats()

        # --- send side -------------------------------------------------
        self._iss = 0                 # initial send sequence number
        self._snd_una = 0             # oldest unacknowledged seq
        self._snd_nxt = 0             # next seq to send
        self._stream_len = 0          # total bytes written by the app
        self._unsent_offset = 0       # next stream byte not yet segmented
        self._pending_boundaries: List[MessageBoundary] = []
        self._inflight: List[_SentSegment] = []
        self._fin_queued = False
        self._fin_sent = False

        # --- receive side ----------------------------------------------
        self._irs: Optional[int] = None  # peer's initial sequence number
        self._rcv_nxt = 0
        # Out-of-order buffer: seq -> (flags, seq, payload_len,
        # boundaries) field tuples.  Fields are copied out of slab
        # handles before buffering, so handles never outlive delivery.
        self._ooo: Dict[int, Tuple] = {}
        self._rx_boundaries: Dict[int, Any] = {}
        self._delivered_offset = 0

        # --- slab mode ---------------------------------------------------
        # When the host runs on a PacketSlab, intern this connection's
        # endpoints/flow once; _transmit then allocates slab records.
        slab = host.slab
        self._slab = slab
        if slab is not None:
            self._src_i = slab.intern_endpoint(local)
            self._dst_i = slab.intern_endpoint(remote)
            self._fid = slab.intern_flow(self._src_i, self._dst_i)
        else:
            self._src_i = self._dst_i = self._fid = -1

        # --- machinery ---------------------------------------------------
        self._rtt = RttEstimator(
            initial_rto=config.initial_rto, rto_min=config.rto_min
        )
        self._rto_timer = Timer(self._sim, self._on_rto)
        self._ack_policy = config.ack_policy_factory()
        self._ack_policy.attach(self._sim, self._send_pure_ack)
        self._pacer = (
            Pacer(config.pacing_rate_bps)
            if config.pacing_rate_bps is not None
            else None
        )

        # --- application callbacks ---------------------------------------
        self.on_established: Optional[Callable[["Connection"], None]] = None
        self.on_message: Optional[Callable[["Connection", Any], None]] = None
        self.on_closed: Optional[Callable[["Connection"], None]] = None
        #: Fires when the peer half-closes (FIN received while we are
        #: still open).  Servers typically respond by calling close().
        self.on_peer_close: Optional[Callable[["Connection"], None]] = None
        #: Fires with each transport-level RTT sample (ns).  This is the
        #: *ground truth* the paper's Fig 2 compares T_LB against.
        self.on_rtt_sample: Optional[Callable[["Connection", int], None]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def established(self) -> bool:
        """True once the handshake completed."""
        return self.state in (
            ConnectionState.ESTABLISHED,
            ConnectionState.CLOSE_WAIT,
        )

    @property
    def bytes_in_flight(self) -> int:
        """Unacknowledged bytes currently outstanding."""
        return self._snd_nxt - self._snd_una

    @property
    def unsent_bytes(self) -> int:
        """Bytes written by the app but not yet segmented onto the wire."""
        return self._stream_len - self._unsent_offset

    @property
    def srtt(self) -> Optional[float]:
        """Transport's own smoothed RTT estimate (ns)."""
        return self._rtt.srtt

    def open(self) -> None:
        """Client side: start the 3-way handshake (sends SYN)."""
        if self.state is not ConnectionState.CLOSED:
            raise TransportError("open() on %s connection" % self.state.value)
        if not self.is_client:
            raise TransportError("open() is client-side only")
        self.state = ConnectionState.SYN_SENT
        self._snd_nxt = self._iss + 1  # SYN consumes one sequence number
        self._transmit(
            flags=FLAG_SYN, seq=self._iss, payload_len=0, boundaries=None
        )
        self._arm_rto()

    def send_message(self, message: Any, size: int) -> None:
        """Queue an application message of ``size`` bytes for delivery.

        May be called before the handshake completes; data flows once
        established.  Raises after :meth:`close`.
        """
        if size <= 0:
            raise TransportError("message size must be positive, got %r" % size)
        if self._fin_queued:
            raise TransportError("send_message after close()")
        if self.state is ConnectionState.CLOSED and not self.is_client:
            raise TransportError("send on closed connection")
        self._stream_len += size
        self._pending_boundaries.append(
            MessageBoundary(end_offset=self._stream_len, message=message)
        )
        self.stats.messages_sent += 1
        state = self.state
        if (
            state is ConnectionState.ESTABLISHED
            or state is ConnectionState.CLOSE_WAIT
        ):
            self._try_send()

    def close(self) -> None:
        """Graceful close: FIN goes out after all queued data is sent."""
        if self._fin_queued or self.state is ConnectionState.CLOSED:
            return
        self._fin_queued = True
        if self.established or self.state is ConnectionState.SYN_SENT:
            self._try_send()

    def abort(self) -> None:
        """Send RST and drop all state immediately."""
        if self.state is ConnectionState.CLOSED:
            return
        self._transmit(
            flags=_RST_ACK,
            seq=self._snd_nxt,
            payload_len=0,
            boundaries=None,
        )
        self._teardown()

    # ------------------------------------------------------------------
    # Packet input (called by the Host demux)
    # ------------------------------------------------------------------

    def handle_packet(self, packet) -> None:
        """Process one inbound segment (a :class:`Packet` or slab handle).

        Slab handles are ingested — fields copied to locals, handle freed
        — before the state machine runs, so nothing downstream can retain
        a recycled slot.
        """
        if type(packet) is int:
            slab = self._slab
            flags = slab.flags[packet]
            seq = slab.seq[packet]
            ack = slab.ack[packet]
            payload_len = slab.payload_len[packet]
            boundaries = slab.boundaries[packet]
            slab.free(packet)
        else:
            flags = packet.flags
            seq = packet.seq
            ack = packet.ack
            payload_len = packet.payload_len
            boundaries = packet.boundaries
        self.stats.segments_received += 1

        if flags & FLAG_RST:
            self._teardown()
            return

        if flags & FLAG_SYN:
            self._handle_syn(flags, seq, ack)
            return

        if flags & FLAG_ACK:
            self._handle_ack(ack)

        if self.state is ConnectionState.CLOSED:
            return

        if payload_len > 0 or flags & FLAG_FIN:
            self._handle_data(flags, seq, payload_len, boundaries)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    def _handle_syn(self, flags: int, seq: int, ack: int) -> None:
        if not self.is_client and self.state is ConnectionState.CLOSED:
            # Passive open: record peer ISN, send SYN-ACK.
            self._irs = seq
            self._rcv_nxt = seq + 1
            self.state = ConnectionState.SYN_RCVD
            self._snd_nxt = self._iss + 1
            self._transmit(
                flags=_SYN_ACK,
                seq=self._iss,
                payload_len=0,
                boundaries=None,
            )
            self._arm_rto()
            return

        if self.is_client and self.state is ConnectionState.SYN_SENT:
            if flags & FLAG_ACK and ack == self._iss + 1:
                self._irs = seq
                self._rcv_nxt = seq + 1
                self._snd_una = self._iss + 1
                self._inflight.clear()
                self._rto_timer.stop()
                self.state = ConnectionState.ESTABLISHED
                # Complete the handshake.  If the app already queued data,
                # the first data segment carries this ACK implicitly;
                # otherwise send a pure ACK.
                if self._has_sendable_data():
                    self._notify_established()
                    self._try_send()
                else:
                    self._send_pure_ack()
                    self._notify_established()
                return

        if not self.is_client and self.state is ConnectionState.SYN_RCVD:
            # Duplicate SYN from the peer (our SYN-ACK was lost): resend.
            self._transmit(
                flags=_SYN_ACK,
                seq=self._iss,
                payload_len=0,
                boundaries=None,
            )

    def _notify_established(self) -> None:
        if self.on_established is not None:
            self.on_established(self)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _handle_data(
        self,
        flags: int,
        seq: int,
        payload_len: int,
        boundaries: Optional[List[MessageBoundary]],
    ) -> None:
        if self._irs is None:
            return  # data before SYN: drop

        if seq == self._rcv_nxt:
            self._accept_segment(flags, seq, payload_len, boundaries)
            # Drain any buffered out-of-order continuation.
            while self._rcv_nxt in self._ooo:
                self._accept_segment(*self._ooo.pop(self._rcv_nxt))
            self._ack_policy.on_data(in_order=True)
        elif seq > self._rcv_nxt:
            self._ooo[seq] = (flags, seq, payload_len, boundaries)
            self._ack_policy.on_data(in_order=False)
        else:
            # Entirely duplicate segment: re-ack so the sender advances.
            self._ack_policy.on_data(in_order=False)

    def _accept_segment(
        self,
        flags: int,
        seq: int,
        payload_len: int,
        boundaries: Optional[List[MessageBoundary]],
    ) -> None:
        end_seq = seq + payload_len
        if flags & _SYN_OR_FIN:
            end_seq += 1  # SYN/FIN consume a sequence number
        self._rcv_nxt = end_seq
        self.stats.bytes_delivered += payload_len
        if boundaries:
            for boundary in boundaries:
                self._rx_boundaries.setdefault(boundary.end_offset, boundary.message)
        assert self._irs is not None
        in_order_offset = self._rcv_nxt - (self._irs + 1)
        if flags & FLAG_FIN:
            in_order_offset -= 1  # FIN consumed a sequence number
            self._handle_peer_fin()
        self._deliver_messages(in_order_offset)

    def _deliver_messages(self, in_order_offset: int) -> None:
        boundaries = self._rx_boundaries
        if not boundaries:
            return
        if len(boundaries) == 1:
            # One pending message — the request/response steady state;
            # skip the sort and the generator.
            (offset,) = boundaries
            if offset > in_order_offset:
                return
            message = boundaries.pop(offset)
            self.stats.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(self, message)
            return
        ready = sorted(
            offset for offset in boundaries if offset <= in_order_offset
        )
        for offset in ready:
            message = boundaries.pop(offset)
            self.stats.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(self, message)

    def _handle_peer_fin(self) -> None:
        if self.state is ConnectionState.ESTABLISHED:
            self.state = ConnectionState.CLOSE_WAIT
            if self.on_peer_close is not None:
                self.on_peer_close(self)
        elif self.state is ConnectionState.FIN_WAIT:
            # Both sides closed.
            self._send_pure_ack()
            self._teardown()
            return
        # ACK the FIN promptly.
        self._ack_policy.on_data(in_order=False)

    # ------------------------------------------------------------------
    # ACK processing (sender side)
    # ------------------------------------------------------------------

    def _handle_ack(self, ack: int) -> None:
        if self.state is ConnectionState.SYN_RCVD and ack == self._iss + 1:
            self._snd_una = ack
            self._inflight.clear()
            self._rto_timer.stop()
            self.state = ConnectionState.ESTABLISHED
            self._notify_established()
            self._try_send()
            return

        if ack <= self._snd_una:
            return  # duplicate ACK; no fast retransmit modelled

        self._snd_una = ack
        self._rtt.reset_backoff()

        # Retire fully acked segments; sample RTT per Karn's rule.
        now = self._sim._now
        rtt_estimator = self._rtt
        rtt_cb = self.on_rtt_sample
        remaining: List[_SentSegment] = []
        for segment in self._inflight:
            if segment.end_seq <= ack:
                if not segment.retransmitted:
                    rtt = now - segment.sent_at
                    rtt_estimator.sample(rtt)
                    if rtt_cb is not None:
                        rtt_cb(self, rtt)
            else:
                remaining.append(segment)
        self._inflight = remaining

        if self._inflight:
            self._arm_rto()
        else:
            self._rto_timer.stop()

        if self._fin_sent and ack >= self._snd_nxt:
            if self.state is ConnectionState.CLOSE_WAIT or not self._peer_open():
                self._teardown()
                return
            self.state = ConnectionState.FIN_WAIT

        # The window just opened: this is where ACK-clocked (causally
        # triggered) transmissions happen.
        self._try_send()

    def _peer_open(self) -> bool:
        return self.state not in (ConnectionState.CLOSE_WAIT,)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _has_sendable_data(self) -> bool:
        return self._unsent_offset < self._stream_len or (
            self._fin_queued and not self._fin_sent
        )

    def _try_send(self) -> None:
        # Cheap no-op exit first: roughly half the calls (ACK-clocked
        # wakeups with nothing queued) return here.
        if self._unsent_offset >= self._stream_len and (
            not self._fin_queued or self._fin_sent
        ):
            return
        state = self.state
        if not (
            state is ConnectionState.ESTABLISHED
            or state is ConnectionState.CLOSE_WAIT
            or state is ConnectionState.FIN_WAIT
        ):
            return
        config = self.config
        window = config.window
        mss = config.mss
        iss1 = self._iss + 1
        while self._unsent_offset < self._stream_len:
            window_left = window - (self._snd_nxt - self._snd_una)
            if window_left <= 0:
                break
            start = self._unsent_offset
            chunk = self._stream_len - start
            if chunk > mss:
                chunk = mss
            if chunk > window_left:
                chunk = window_left
            end = start + chunk
            pending = self._pending_boundaries
            if pending:
                # One pass instead of two comprehensions: partition into
                # boundaries carried by this segment and ones past it.
                boundaries = []
                remaining = []
                for b in pending:
                    off = b.end_offset
                    if off > end:
                        remaining.append(b)
                    elif off > start:
                        boundaries.append(b)
                self._pending_boundaries = remaining
            else:
                boundaries = []
            self._unsent_offset = end
            self._snd_nxt = iss1 + end
            self._send_data_segment(iss1 + start, chunk, boundaries, _ACK_PSH)

        if (
            self._fin_queued
            and not self._fin_sent
            and self._unsent_offset == self._stream_len
        ):
            fin_seq = self._snd_nxt
            self._snd_nxt += 1
            self._fin_sent = True
            if self.state is ConnectionState.ESTABLISHED:
                self.state = ConnectionState.FIN_WAIT
            self._send_data_segment(fin_seq, 0, [], _FIN_ACK)

    def _data_seq(self, stream_offset: int) -> int:
        return self._iss + 1 + stream_offset

    def _send_data_segment(
        self,
        seq: int,
        payload_len: int,
        boundaries: List[MessageBoundary],
        flags: int,
    ) -> None:
        now = self._sim._now
        segment = _SentSegment(
            seq=seq,
            end_seq=seq + payload_len + (1 if flags & FLAG_FIN else 0),
            payload_len=payload_len,
            flags=flags,
            boundaries=boundaries,
            sent_at=now,
        )
        self._inflight.append(segment)
        self._ack_policy.on_piggyback()  # this segment carries our ACK

        if self._pacer is not None and payload_len > 0:
            send_at = self._pacer.allocate(now, payload_len)
            if send_at > now:
                self._sim.schedule_fire_at(
                    send_at, lambda s=segment: self._emit_segment(s)
                )
                return
        # Unpaced path: _emit_segment inlined (sent_at is already now).
        self._transmit(flags, seq, payload_len, boundaries)
        self.stats.bytes_sent += payload_len
        timer = self._rto_timer
        handle = timer._handle
        if handle is None or handle._cancelled:
            timer.start(self._rtt.rto)

    def _emit_segment(self, segment: _SentSegment) -> None:
        segment.sent_at = self._sim.now
        self._transmit(
            flags=segment.flags,
            seq=segment.seq,
            payload_len=segment.payload_len,
            boundaries=segment.boundaries,
        )
        self.stats.bytes_sent += segment.payload_len
        if not self._rto_timer.running:
            self._arm_rto()

    def _send_pure_ack(self) -> None:
        if self._irs is None:
            return
        self.stats.pure_acks_sent += 1
        self._transmit(
            flags=FLAG_ACK, seq=self._snd_nxt, payload_len=0, boundaries=None
        )

    def _transmit(
        self,
        flags: int,
        seq: int,
        payload_len: int,
        boundaries: Optional[List[MessageBoundary]],
        retransmit: bool = False,
    ) -> None:
        self.stats.segments_sent += 1
        slab = self._slab
        if slab is not None:
            self._host_transmit(
                slab.alloc(
                    self._src_i,
                    self._dst_i,
                    self._fid,
                    flags,
                    seq,
                    self._rcv_nxt,
                    payload_len,
                    list(boundaries) if boundaries else None,
                    self._sim._now,
                    retransmit,
                )
            )
            return
        packet = Packet(
            src=self.local,
            dst=self.remote,
            flags=flags,
            seq=seq,
            ack=self._rcv_nxt,
            payload_len=payload_len,
            boundaries=list(boundaries) if boundaries else [],
            sent_at=self._sim.now,
            retransmit=retransmit,
        )
        self._host.transmit(packet)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._rto_timer.start(self._rtt.rto)

    def _on_rto(self) -> None:
        self._rtt.on_timeout()

        if self.state is ConnectionState.SYN_SENT:
            self._transmit(
                flags=FLAG_SYN, seq=self._iss, payload_len=0, boundaries=None
            )
            self._arm_rto()
            return
        if self.state is ConnectionState.SYN_RCVD:
            self._transmit(
                flags=_SYN_ACK,
                seq=self._iss,
                payload_len=0,
                boundaries=None,
            )
            self._arm_rto()
            return

        if not self._inflight:
            return
        # Go-back-N flavour: retransmit the earliest unacked segment.
        segment = self._inflight[0]
        segment.retransmitted = True
        segment.sent_at = self._sim.now
        self.stats.retransmissions += 1
        self._transmit(
            flags=segment.flags,
            seq=segment.seq,
            payload_len=segment.payload_len,
            boundaries=segment.boundaries,
            retransmit=True,
        )
        self._arm_rto()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _teardown(self) -> None:
        already_closed = self.state is ConnectionState.CLOSED
        self.state = ConnectionState.CLOSED
        self._rto_timer.stop()
        self._ack_policy.cancel()
        self._host.forget_connection(self)
        if not already_closed and self.on_closed is not None:
            self.on_closed(self)

    def __repr__(self) -> str:
        return "Connection(%s->%s, %s)" % (self.local, self.remote, self.state.value)
