"""Round-trip estimation and retransmission timeout computation.

A trimmed RFC 6298: SRTT/RTTVAR smoothing with Karn's rule (no samples
from retransmitted segments) and exponential back-off on timeout.  The
connection owns the actual timer; this module owns the arithmetic.
"""

from __future__ import annotations

from typing import Optional

from repro.units import MILLISECONDS, SECONDS


class RttEstimator:
    """SRTT/RTTVAR tracker producing RTO values.

    Parameters are in nanoseconds.  ``rto_min`` defaults to 5 ms — far
    below TCP's traditional 200 ms floor, because the simulated cluster
    RTTs are hundreds of microseconds and a 200 ms floor would make any
    loss pathological rather than merely slow.
    """

    ALPHA = 0.125
    BETA = 0.25

    def __init__(
        self,
        initial_rto: int = 100 * MILLISECONDS,
        rto_min: int = 5 * MILLISECONDS,
        rto_max: int = 10 * SECONDS,
    ):
        if not rto_min <= initial_rto <= rto_max:
            raise ValueError("require rto_min <= initial_rto <= rto_max")
        self._srtt: Optional[float] = None
        self._rttvar: Optional[float] = None
        self._rto = initial_rto
        self._rto_min = rto_min
        self._rto_max = rto_max
        self._backoff = 1
        self.samples = 0

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT in ns, or None before the first sample."""
        return self._srtt

    @property
    def rto(self) -> int:
        """Current retransmission timeout (ns), including back-off."""
        return min(self._rto_max, self._rto * self._backoff)

    def sample(self, rtt: int) -> None:
        """Fold in a fresh (non-retransmitted, per Karn) RTT sample."""
        if rtt < 0:
            raise ValueError("negative RTT sample: %d" % rtt)
        self.samples += 1
        if self._srtt is None:
            self._srtt = float(rtt)
            self._rttvar = rtt / 2.0
        else:
            assert self._rttvar is not None
            self._rttvar += self.BETA * (abs(self._srtt - rtt) - self._rttvar)
            self._srtt += self.ALPHA * (rtt - self._srtt)
        raw = self._srtt + 4.0 * self._rttvar
        self._rto = max(self._rto_min, min(self._rto_max, round(raw)))
        self._backoff = 1

    def on_timeout(self) -> None:
        """Exponentially back off after a retransmission timeout."""
        self._backoff = min(self._backoff * 2, 64)

    def reset_backoff(self) -> None:
        """Clear back-off (called when new data is acked)."""
        self._backoff = 1
