"""Distributed gradient-descent control on a latency cost.

Modelled on Google's gradient-based load balancing (Balseiro, Mirrokni,
Wydrowski — "Load Balancing via Distributed Gradient Descent"): treat
the pool's weight vector as a point on the simplex, the traffic-weighted
mean latency as the cost, and take small projected gradient steps.

With cost ``C(w) = Σ wᵢ·ℓᵢ / Σ wᵢ`` the partial derivative w.r.t. each
weight is ``(ℓᵢ − ℓ̄) / Σ wᵢ`` where ``ℓ̄`` is the current mean — so
the step moves weight off backends slower than the mean and onto faster
ones, in proportion to how far from the mean they sit.  The update is
normalized by ``ℓ̄`` (making ``eta`` a unitless rate) and projected back
onto the scaled simplex with the weight floor, so the total is conserved
and every backend keeps probe traffic.

Unlike the α-shift rule (which moves a fixed quantum off only the single
worst backend), the gradient step adjusts *every* backend at once with a
magnitude proportional to its excess latency — faster convergence on
multi-backend skew, at the cost of more total weight movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.controllers.base import (
    BaseController,
    require_positive_floor_interval,
)
from repro.controllers.registry import register
from repro.errors import ConfigError
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class GradientConfig:
    """Tunables for :class:`GradientDescentController`."""

    #: Step size: fraction of a backend's fair share moved per unit of
    #: normalized latency excess.  0.3 converges in a few steps on a 3×
    #: skew without oscillating.
    eta: float = 0.3
    #: Only step when relative latency spread exceeds this (noise gate).
    deadband: float = 0.05
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.eta <= 0:
            raise ConfigError("eta must be positive")
        if self.deadband < 0:
            raise ConfigError("deadband must be >= 0")
        require_positive_floor_interval(self.weight_floor, self.min_interval)


class GradientDescentController(BaseController):
    """Projected gradient step on traffic-weighted mean latency."""

    name = "gradient"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[GradientConfig] = None,
    ):
        self.config = config or GradientConfig()
        self.config.validate()
        super().__init__(
            pool,
            estimator,
            weight_floor=self.config.weight_floor,
            min_interval=self.config.min_interval,
        )

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        config = self.config
        values = {
            e.backend: e.value
            for e in estimates
            if e.value > 0 and e.backend in current
        }
        if len(values) < 2:
            return None
        total = sum(current.values())
        if total <= 0:
            return None
        mass = sum(current[name] for name in values)
        if mass <= 0:
            return None
        mean = sum(current[name] * values[name] for name in values) / mass
        if mean <= 0:
            return None
        spread = (max(values.values()) - min(values.values())) / mean
        if spread <= config.deadband:
            return None  # within noise: hold still

        fair_share = total / len(current)
        new_weights = dict(current)
        for name, latency in values.items():
            # Normalized gradient: positive for slower-than-mean backends.
            gradient = (latency - mean) / mean
            new_weights[name] = current[name] - config.eta * fair_share * gradient
        # Clipping + floor projection happen in the base renormalize.
        return new_weights


@register(
    "gradient",
    summary="projected gradient step on traffic-weighted mean latency",
    provenance="Balseiro/Mirrokni/Wydrowski distributed gradient LB",
)
def _make_gradient(pool, estimator, config):
    return GradientDescentController(pool, estimator, config.gradient)
