"""Morpheus-style control: lightweight RTT *prediction* feeding weights.

Modelled on Morpheus (arXiv:2510.20506), which argues a load balancer
should act on where a backend's latency is *going*, not where it has
been: a lightweight per-backend predictor extrapolates the RTT signal a
short horizon ahead, and weights follow the prediction.  Racing this
against the purely reactive laws (α-shift, proportional) on the same
in-band signal plane is exactly the experiment the Morpheus paper runs
against reactive baselines.

The predictor is Holt's double exponential smoothing (level + trend) —
the "lightweight linear prediction" of the paper, with time-aware gains
so irregular sample spacing cannot destabilize the trend term.  Each
control step feeds the estimator's current per-backend value into the
predictor, extrapolates ``horizon`` nanoseconds ahead, clamps the
prediction to a sane band around the observation (a linear trend can
overshoot into negative latency), and sets weights ∝ 1/predicted.

``predictions`` keeps the last predicted-vs-reactive pair per backend,
so reports and tests can quantify what the forecast bought.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.controllers.base import (
    BaseController,
    require_positive_floor_interval,
)
from repro.controllers.registry import register
from repro.errors import ConfigError
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class MorpheusConfig:
    """Tunables for :class:`MorpheusController`."""

    #: Level smoothing gain per ``tau`` of elapsed time.
    level_gain: float = 0.4
    #: Trend smoothing gain per ``tau`` of elapsed time.
    trend_gain: float = 0.2
    #: Time constant the gains are quoted against.
    tau: int = 10 * MILLISECONDS
    #: How far ahead to extrapolate when ranking backends.
    horizon: int = 20 * MILLISECONDS
    #: Predictions are clamped to [obs/clamp, obs*clamp].
    clamp: float = 4.0
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if not 0.0 < self.level_gain <= 1.0:
            raise ConfigError("level_gain must be in (0, 1]")
        if not 0.0 < self.trend_gain <= 1.0:
            raise ConfigError("trend_gain must be in (0, 1]")
        if self.tau <= 0 or self.horizon < 0:
            raise ConfigError("tau must be positive and horizon >= 0")
        if self.clamp < 1.0:
            raise ConfigError("clamp must be >= 1")
        require_positive_floor_interval(self.weight_floor, self.min_interval)


class _Predictor:
    """Holt linear smoothing of one backend's latency signal."""

    __slots__ = ("level", "trend", "last_time")

    def __init__(self) -> None:
        self.level: Optional[float] = None
        self.trend = 0.0  # ns of latency change per ns of time
        self.last_time = 0

    def observe(self, now: int, value: float, config: MorpheusConfig) -> None:
        if self.level is None:
            self.level = value
            self.last_time = now
            return
        dt = now - self.last_time
        if dt <= 0:
            return
        # Time-aware gains: a gap of k·tau applies the per-tau gain k
        # times (capped at full replacement), so irregular control
        # cadence does not change the effective smoothing window.
        steps = dt / config.tau
        level_gain = min(1.0, config.level_gain * steps)
        trend_gain = min(1.0, config.trend_gain * steps)
        previous_level = self.level
        self.level = previous_level + level_gain * (value - previous_level)
        observed_trend = (self.level - previous_level) / dt
        self.trend = self.trend + trend_gain * (observed_trend - self.trend)
        self.last_time = now

    def predict(self, horizon: int) -> Optional[float]:
        if self.level is None:
            return None
        return self.level + self.trend * horizon


class MorpheusController(BaseController):
    """EWMA/linear RTT predictor per backend feeding ∝ 1/pred weights."""

    name = "morpheus"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[MorpheusConfig] = None,
    ):
        self.config = config or MorpheusConfig()
        self.config.validate()
        super().__init__(
            pool,
            estimator,
            weight_floor=self.config.weight_floor,
            min_interval=self.config.min_interval,
        )
        self._predictors: Dict[str, _Predictor] = {}
        #: Last (predicted, reactive) pair per backend — the race the
        #: Morpheus paper runs, observable per control step.
        self.predictions: Dict[str, tuple] = {}

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        config = self.config
        values = {
            e.backend: e.value
            for e in estimates
            if e.value > 0 and e.backend in current
        }
        if len(values) < 2:
            return None
        predicted: Dict[str, float] = {}
        for name, reactive in sorted(values.items()):
            predictor = self._predictors.get(name)
            if predictor is None:
                predictor = _Predictor()
                self._predictors[name] = predictor
            predictor.observe(now, reactive, config)
            forecast = predictor.predict(config.horizon)
            if forecast is None:
                forecast = reactive
            # A linear trend extrapolates past zero on sharp recoveries;
            # clamp to a band around the reactive observation.
            forecast = min(
                max(forecast, reactive / config.clamp),
                reactive * config.clamp,
            )
            predicted[name] = forecast
            self.predictions[name] = (forecast, reactive)

        total = sum(current.values())
        raw = {name: 1.0 / value for name, value in predicted.items()}
        without = {n: w for n, w in current.items() if n not in raw}
        budget = total - sum(without.values())
        raw_total = sum(raw.values())
        if budget <= 0 or raw_total <= 0:
            return None
        new_weights = dict(without)
        for name, share in raw.items():
            new_weights[name] = budget * share / raw_total
        return new_weights


@register(
    "morpheus",
    summary="Holt linear RTT prediction per backend feeding 1/pred weights",
    provenance="Morpheus, arXiv:2510.20506",
)
def _make_morpheus(pool, estimator, config):
    return MorpheusController(pool, estimator, config.morpheus)
