"""repro.controllers — the controller zoo.

A formal :class:`~repro.controllers.base.Controller` protocol, a
name-keyed registry, and every control law implemented against the
in-band signal plane:

========================  =============================================
``alpha``                 the paper's α-shift rule (§3)
``proportional``          weights ∝ (1/latency)^p (open question #4)
``aimd``                  TCP-style decrease/recover (open question #4)
``knapsack``              KnapsackLB binned solve (arXiv:2404.17783)
``gradient``              Balseiro/Mirrokni/Wydrowski gradient step
``morpheus``              Morpheus RTT prediction (arXiv:2510.20506)
========================  =============================================

The feedback plane constructs controllers by name
(:func:`~repro.controllers.registry.create`); ``repro compare`` races
the whole roster across the chaos presets.  Adding a law is one module
with a ``@register(...)`` factory — the CLI, sweeps, property tests,
and the leaderboard pick it up with no further wiring.
"""

from repro.controllers.base import (
    BaseController,
    Controller,
    WeightUpdate,
    renormalize_with_floor,
    total_weight_movement,
)
from repro.controllers.registry import (
    ControllerSpec,
    available,
    create,
    get_spec,
    register,
    specs,
)

# Importing the law modules populates the registry.
from repro.controllers import alpha as _alpha  # noqa: F401
from repro.controllers.aimd import AimdConfig, AimdController
from repro.controllers.gradient import GradientConfig, GradientDescentController
from repro.controllers.knapsack import KnapsackConfig, KnapsackController
from repro.controllers.morpheus import MorpheusConfig, MorpheusController
from repro.controllers.proportional import (
    ProportionalConfig,
    ProportionalController,
)

__all__ = [
    "AimdConfig",
    "AimdController",
    "BaseController",
    "Controller",
    "ControllerSpec",
    "GradientConfig",
    "GradientDescentController",
    "KnapsackConfig",
    "KnapsackController",
    "MorpheusConfig",
    "MorpheusController",
    "ProportionalConfig",
    "ProportionalController",
    "WeightUpdate",
    "available",
    "create",
    "get_spec",
    "register",
    "renormalize_with_floor",
    "specs",
    "total_weight_movement",
]
