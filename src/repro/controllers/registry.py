"""The name-keyed controller registry.

Control laws register a *factory* under a short name; the feedback
plane (and the CLI, and the compare harness) construct controllers by
name without enumerating them.  A factory takes the shared signal
plane plus the full :class:`~repro.core.feedback.FeedbackConfig` —
each law picks its own tunables sub-config out of it — and returns an
object satisfying the :class:`~repro.controllers.base.Controller`
protocol.

Registering is declarative::

    @register(
        "proportional",
        summary="weights proportional to (1/latency)^p",
        provenance="open question #4",
    )
    def _make(pool, estimator, config):
        return ProportionalController(pool, estimator, config.proportional)

Unknown names raise :class:`~repro.errors.ConfigError` listing every
registered name, so a typo in ``feedback.strategy`` is a one-line fix
instead of a hunt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import ConfigError

# Type-only: importing repro.core at runtime would cycle back into the
# zoo (repro.core re-exports it for compatibility).
if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendLatencyEstimator
    from repro.core.feedback import FeedbackConfig
    from repro.lb.backend import BackendPool


#: (pool, estimator, feedback_config) -> controller
Factory = Callable[
    ["BackendPool", "BackendLatencyEstimator", "FeedbackConfig"], object
]


@dataclass(frozen=True)
class ControllerSpec:
    """One registered control law: identity, factory, provenance."""

    name: str
    factory: Factory
    #: One-line description for docs and ``--help``.
    summary: str = ""
    #: Where the law comes from (paper section, arXiv id).
    provenance: str = ""


_REGISTRY: Dict[str, ControllerSpec] = {}


def register(
    name: str, summary: str = "", provenance: str = ""
) -> Callable[[Factory], Factory]:
    """Decorator: register ``factory`` under ``name``."""

    def decorate(factory: Factory) -> Factory:
        if name in _REGISTRY:
            raise ConfigError("controller %r registered twice" % name)
        _REGISTRY[name] = ControllerSpec(
            name=name, factory=factory, summary=summary, provenance=provenance
        )
        return factory

    return decorate


def available() -> List[str]:
    """All registered controller names, sorted."""
    return sorted(_REGISTRY)


def specs() -> List[ControllerSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_spec(name: str) -> ControllerSpec:
    """The spec registered under ``name``; ConfigError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            "unknown control strategy %r (registered: %s)"
            % (name, ", ".join(available()))
        ) from None


def create(
    name: str,
    pool: BackendPool,
    estimator: BackendLatencyEstimator,
    config: "FeedbackConfig",
):
    """Construct the controller registered under ``name``."""
    return get_spec(name).factory(pool, estimator, config)
