"""The ``Controller`` protocol and shared control-law machinery.

Every control law in the zoo consumes the same signal plane — a
:class:`~repro.core.estimator.BackendLatencyEstimator` snapshot built
from in-band ``T_LB`` samples — and emits the same actuation: new pool
weights via ``pool.set_weights`` (which rebuilds the weighted Maglev
table).  The contract, formalized by :class:`Controller`:

* ``maybe_update(now) -> Optional[event]`` — evaluate once; return the
  executed update event or None (rate-limited, no data, held).
* ``updates`` — the list of executed update events, each carrying
  ``time`` and ``weights_after`` (obs + tracing + churn accounting).
* ``stale_holds`` — updates refused because a consulted estimate was
  graded stale (resilience plane attached).
* ``attach_metrics(bundle)`` — opaque obs-plane seam; never imports
  :mod:`repro.obs`.

:class:`BaseController` implements the boilerplate half of that
contract (rate limit, snapshot, stale gating, floor renormalization,
update recording); concrete laws supply only ``_compute``.  The
paper's own α-shift rule predates this module and keeps its richer
:class:`~repro.core.controller.ShiftEvent` records, but satisfies the
same protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

try:  # pragma: no cover - typing fallback exercised only on old pythons
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.errors import ConfigError

# Type-only: importing repro.core at runtime would cycle back into this
# module (repro.core re-exports the zoo for compatibility).
if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class WeightUpdate:
    """Record of one executed weight recomputation."""

    time: int
    weights_after: Dict[str, float] = field(default_factory=dict)


@runtime_checkable
class Controller(Protocol):
    """Structural type every registered control law satisfies."""

    pool: BackendPool
    estimator: BackendLatencyEstimator
    stale_holds: int

    @property
    def updates(self) -> List:
        """Executed update events (``time`` + ``weights_after``)."""
        ...  # pragma: no cover - protocol body

    def maybe_update(self, now: int) -> Optional[object]:
        """Evaluate once at ``now``; return the executed event or None."""
        ...  # pragma: no cover - protocol body

    def attach_metrics(self, metrics) -> None:
        """Attach obs-plane instruments (opaque bundle)."""
        ...  # pragma: no cover - protocol body


def renormalize_with_floor(
    weights: Dict[str, float], total: float, floor: float
) -> Dict[str, float]:
    """Scale ``weights`` to sum to ``total`` with every entry >= floor.

    Floored entries are pinned; the remainder is distributed over the
    others proportionally.  This conserves the pool's total weight
    exactly (no per-step leakage), which keeps long-running controllers
    stable.
    """
    result = {name: max(0.0, value) for name, value in weights.items()}
    if floor * len(result) >= total:
        # Degenerate: the floors alone exhaust the budget; split evenly.
        return {name: total / len(result) for name in result}
    pinned: Dict[str, float] = {}
    for _ in range(len(result)):
        free = {n: v for n, v in result.items() if n not in pinned}
        budget = total - floor * len(pinned)
        free_sum = sum(free.values())
        # Vanishing weights (incl. subnormals) would overflow the scale
        # factor; treat them as zero and split the budget evenly.
        if free_sum <= total * 1e-12:
            share = budget / len(free)
            for name in free:
                result[name] = share
            break
        scale = budget / free_sum
        newly_pinned = False
        for name, value in free.items():
            scaled = value * scale
            if scaled < floor:
                pinned[name] = floor
                result[name] = floor
                newly_pinned = True
            else:
                result[name] = scaled
        if not newly_pinned:
            break
    return result


def total_weight_movement(
    updates: Sequence, initial_weights: Dict[str, float]
) -> float:
    """Total weight mass moved across ``updates`` (shift churn).

    Each step contributes half the L1 distance between consecutive
    weight vectors — i.e. the mass that actually changed backends.
    Missing names (pool churn) count as moving from/to zero.
    """
    churn = 0.0
    before = dict(initial_weights)
    for update in updates:
        after = update.weights_after
        names = set(before) | set(after)
        churn += 0.5 * sum(
            abs(after.get(n, 0.0) - before.get(n, 0.0)) for n in names
        )
        before = dict(after)
    return churn


class BaseController:
    """Boilerplate half of the :class:`Controller` contract.

    Subclasses implement ``_compute(now, estimates, current)`` returning
    the next weight dict (pre-floor) or None to decline.  The base
    handles rate limiting, snapshotting, stale gating (any consulted
    estimate graded stale refuses the update — shifting on a distrusted
    signal is the thundering-herd move the paper warns about), floor
    renormalization preserving the pool total, and update recording.
    """

    #: Registered name, set by the registry decorator (for metrics).
    name = "base"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        weight_floor: float,
        min_interval: int,
    ):
        self.pool = pool
        self.estimator = estimator
        self.weight_floor = weight_floor
        self.min_interval = min_interval
        self.updates: List[WeightUpdate] = []
        self.stale_holds = 0
        self._last_update: Optional[int] = None
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Attach controller instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics

    @property
    def update_count(self) -> int:
        """Total weight recomputations executed."""
        return len(self.updates)

    def maybe_update(self, now: int) -> Optional[WeightUpdate]:
        """Evaluate one control step if the rate limit allows."""
        if (
            self._last_update is not None
            and now - self._last_update < self.min_interval
        ):
            return None
        estimates = self.estimator.snapshot(now)
        if len(estimates) < 2:
            return None
        if any(e.stale for e in estimates):
            self.stale_holds += 1
            if self._metrics is not None:
                self._metrics.stale_holds.inc()
            return None
        current = self.pool.weights()
        new_weights = self._compute(now, estimates, current)
        if new_weights is None:
            return None
        total = sum(current.values())
        new_weights = renormalize_with_floor(
            new_weights, total, self.weight_floor * total
        )
        self.pool.set_weights(new_weights)
        update = WeightUpdate(time=now, weights_after=dict(new_weights))
        self.updates.append(update)
        self._last_update = now
        if self._metrics is not None:
            self._metrics.shifts.labels(reason="recompute").inc()
        return update

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        raise NotImplementedError


def require_positive_floor_interval(
    weight_floor: float, min_interval: int
) -> None:
    """Shared validation for the common pair of tunables."""
    if not 0.0 <= weight_floor < 0.5:
        raise ConfigError("weight_floor must be in [0, 0.5)")
    if min_interval < 0:
        raise ConfigError("min_interval must be >= 0")
