"""KnapsackLB-style control: iterative weight solve equalizing latency.

Modelled on KnapsackLB (arXiv:2404.17783), which casts performance-aware
L4 weight assignment as a knapsack problem: each backend's weight is
picked from a discrete set of levels ("bins"), and the solver packs
weight quanta where they buy the most latency.  This reproduction keeps
the two load-bearing ideas and drives them from the in-band signal
plane instead of out-of-band probes:

1. **Capacity learning** — each backend's capacity is proxied by the
   EWMA of ``weight / latency`` across solves (throughput per unit
   latency at the operating point), so a backend that stays fast while
   heavily weighted is learned to be big.
2. **Binned iterative solve** — weights move in quanta of
   ``total / bins``.  Starting from the capacity-proportional target,
   the solver greedily moves one quantum at a time from the backend
   with the highest *predicted* latency to the one with the lowest,
   under a linear latency-vs-share model anchored at the current
   estimates, until the predicted spread stops shrinking.

The discrete bins are the knapsack flavour: real dataplanes program
integer weights, and coarse quanta double as shift-churn damping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.controllers.base import (
    BaseController,
    require_positive_floor_interval,
)
from repro.controllers.registry import register
from repro.errors import ConfigError
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class KnapsackConfig:
    """Tunables for :class:`KnapsackController`."""

    #: Discrete weight levels: moves happen in quanta of ``total/bins``.
    bins: int = 20
    #: Max greedy quantum moves per solve (bounds solve work).
    max_moves: int = 8
    #: EWMA smoothing of the learned capacity (0 = frozen, 1 = last-only).
    capacity_smoothing: float = 0.5
    weight_floor: float = 0.02
    min_interval: int = 10 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.bins < 2:
            raise ConfigError("bins must be >= 2")
        if self.max_moves < 1:
            raise ConfigError("max_moves must be >= 1")
        if not 0.0 < self.capacity_smoothing <= 1.0:
            raise ConfigError("capacity_smoothing must be in (0, 1]")
        require_positive_floor_interval(self.weight_floor, self.min_interval)


class KnapsackController(BaseController):
    """Iterative knapsack-style weight solve targeting equal latency."""

    name = "knapsack"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[KnapsackConfig] = None,
    ):
        self.config = config or KnapsackConfig()
        self.config.validate()
        super().__init__(
            pool,
            estimator,
            weight_floor=self.config.weight_floor,
            min_interval=self.config.min_interval,
        )
        #: Learned capacity proxy per backend (weight units per ns).
        self.capacities: Dict[str, float] = {}

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        config = self.config
        values = {
            e.backend: e.value
            for e in estimates
            if e.value > 0 and e.backend in current
        }
        if len(values) < 2:
            return None
        total = sum(current.values())
        if total <= 0:
            return None

        # 1. Capacity learning: cap ~ weight / latency at this operating
        # point, smoothed so one noisy estimate cannot repaint a backend.
        smoothing = config.capacity_smoothing
        for name, latency in values.items():
            observed = current[name] / latency
            previous = self.capacities.get(name)
            if previous is None:
                self.capacities[name] = observed
            else:
                self.capacities[name] = (
                    previous + smoothing * (observed - previous)
                )

        # 2. Capacity-proportional target, quantized to the bin grid.
        caps = {name: self.capacities[name] for name in values}
        cap_total = sum(caps.values())
        if cap_total <= 0:
            return None
        quantum = total / config.bins
        floor = config.weight_floor * total
        target = {
            name: max(floor, total * caps[name] / cap_total)
            for name in values
        }
        # Backends without a usable estimate keep their current share.
        for name, weight in current.items():
            if name not in target:
                target[name] = weight

        # 3. Greedy refinement under the linear latency model
        # pred_i(w) = latency_i * w / current_i: move one quantum from
        # the predicted-worst to the predicted-best until the spread
        # stops shrinking (or the move budget runs out).
        def predicted(weights: Dict[str, float]) -> Dict[str, float]:
            return {
                name: values[name] * weights[name] / current[name]
                if current[name] > 0
                else values[name]
                for name in values
            }

        for _ in range(config.max_moves):
            pred = predicted(target)
            # Deterministic tie-break by name keeps solves reproducible.
            worst = max(sorted(pred), key=lambda n: (pred[n], n))
            best = min(sorted(pred), key=lambda n: (pred[n], n))
            if worst == best:
                break
            if target[worst] - quantum < floor:
                break
            trial = dict(target)
            trial[worst] -= quantum
            trial[best] += quantum
            trial_pred = predicted(trial)
            if max(trial_pred.values()) - min(trial_pred.values()) >= (
                max(pred.values()) - min(pred.values())
            ):
                break  # the move no longer shrinks the spread
            target = trial

        if all(
            abs(target[name] - current[name]) < quantum * 1e-9
            for name in target
        ):
            return None  # nothing moved: skip a no-op update
        return target


@register(
    "knapsack",
    summary="binned iterative weight solve equalizing predicted latency",
    provenance="KnapsackLB, arXiv:2404.17783",
)
def _make_knapsack(pool, estimator, config):
    return KnapsackController(pool, estimator, config.knapsack)
