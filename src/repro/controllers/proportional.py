"""Proportional control: weights ∝ (1/latency)^power.

Smooth, stateless in the control sense, and a natural gradient-free
baseline: a backend twice as slow gets half the traffic (power = 1).
One of the paper's open-question-#4 alternatives, migrated here from
``repro.core.strategies``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.controllers.base import (
    BaseController,
    require_positive_floor_interval,
)
from repro.controllers.registry import register
from repro.errors import ConfigError
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class ProportionalConfig:
    """Tunables for :class:`ProportionalController`."""

    power: float = 1.0
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.power <= 0:
            raise ConfigError("power must be positive")
        require_positive_floor_interval(self.weight_floor, self.min_interval)


class ProportionalController(BaseController):
    """Set weights proportional to ``(1/latency)^power``.

    Preserves the pool's total weight; every backend keeps at least the
    floor share so its estimate stays fresh.
    """

    name = "proportional"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[ProportionalConfig] = None,
    ):
        self.config = config or ProportionalConfig()
        self.config.validate()
        super().__init__(
            pool,
            estimator,
            weight_floor=self.config.weight_floor,
            min_interval=self.config.min_interval,
        )

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        values = {e.backend: e.value for e in estimates if e.value > 0}
        if len(values) < 2 or not set(values) <= set(current):
            return None
        total = sum(current.values())
        raw = {
            name: (1.0 / value) ** self.config.power
            for name, value in values.items()
        }
        # Backends without an estimate keep their current share.
        without = {n: w for n, w in current.items() if n not in raw}
        budget = total - sum(without.values())
        raw_total = sum(raw.values())
        new_weights = dict(without)
        for name, share in raw.items():
            new_weights[name] = budget * share / raw_total
        return new_weights


@register(
    "proportional",
    summary="weights proportional to (1/latency)^power",
    provenance="paper open question #4 (§5)",
)
def _make_proportional(pool, estimator, config):
    return ProportionalController(pool, estimator, config.proportional)
