"""AIMD control: multiplicative decrease on slow backends, additive
recovery.

A backend whose estimate exceeds ``threshold ×`` the pool's best loses
``(1 − decrease)`` of its weight; all others gain an additive
``increase`` share.  The TCP-flavoured answer to the paper's open
question #4, trading convergence speed for stability; migrated here
from ``repro.core.strategies``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.controllers.base import (
    BaseController,
    require_positive_floor_interval,
)
from repro.controllers.registry import register
from repro.errors import ConfigError
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.estimator import BackendEstimate, BackendLatencyEstimator
    from repro.lb.backend import BackendPool


@dataclass
class AimdConfig:
    """Tunables for :class:`AimdController`."""

    decrease: float = 0.7
    increase: float = 0.05
    threshold: float = 1.3
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if not 0.0 < self.decrease < 1.0:
            raise ConfigError("decrease must be in (0, 1)")
        if self.increase <= 0:
            raise ConfigError("increase must be positive")
        if self.threshold < 1.0:
            raise ConfigError("threshold must be >= 1")
        require_positive_floor_interval(self.weight_floor, self.min_interval)


class AimdController(BaseController):
    """Multiplicative decrease on slow backends, additive recovery."""

    name = "aimd"

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[AimdConfig] = None,
    ):
        self.config = config or AimdConfig()
        self.config.validate()
        super().__init__(
            pool,
            estimator,
            weight_floor=self.config.weight_floor,
            min_interval=self.config.min_interval,
        )

    def _compute(
        self,
        now: int,
        estimates: List[BackendEstimate],
        current: Dict[str, float],
    ) -> Optional[Dict[str, float]]:
        config = self.config
        values = {e.backend: e.value for e in estimates}
        best = min(values.values())
        if best <= 0:
            return None
        total = sum(current.values())
        new_weights = dict(current)
        changed = False
        for name, value in values.items():
            if name not in new_weights:
                continue
            if value > config.threshold * best:
                new_weights[name] *= config.decrease
                changed = True
            else:
                new_weights[name] += config.increase * total / len(current)
                changed = True
        if not changed:
            return None
        return new_weights


@register(
    "aimd",
    summary="multiplicative decrease on slow backends, additive recovery",
    provenance="paper open question #4 (§5); TCP congestion control",
)
def _make_aimd(pool, estimator, config):
    return AimdController(pool, estimator, config.aimd)
