"""Registry entry for the paper's α-shift rule.

The controller itself lives in :mod:`repro.core.controller` — it is the
paper's contribution and predates the zoo — so this module only adapts
it into the registry.  It already satisfies the
:class:`~repro.controllers.base.Controller` protocol (``maybe_update``,
``updates``, ``stale_holds``, ``attach_metrics``).
"""

from __future__ import annotations

from repro.controllers.registry import register
from repro.core.controller import AlphaShiftController


@register(
    "alpha",
    summary="shift fraction alpha of total traffic off the worst backend",
    provenance="the source paper's §3 rule (HotNets '22)",
)
def _make_alpha(pool, estimator, config):
    return AlphaShiftController(pool, estimator, config.controller)
