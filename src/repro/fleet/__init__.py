"""The fleet plane: autoscaling and backend lifecycle.

The paper's open question #5 — does in-band feedback stay stable when
the backend set itself is elastic? — needs a fleet that actually moves:
:class:`AutoscalingGroup` evaluates declarative policies
(:class:`TargetTrackingPolicy`, :class:`StepPolicy`,
:class:`ScheduledAction`) and drives every backend through the
PROVISIONING → WARMING → IN_SERVICE → DRAINING → TERMINATED lifecycle
with warm-up weight ramps and conntrack-polled graceful drain.

Like the resilience and obs planes, the fleet plane is default-off and
structurally absent when disabled: ``FleetConfig(enabled=False)``
builds a byte-identical scenario.
"""

from repro.fleet.autoscaler import AutoscalingGroup, ScalingDecision
from repro.fleet.config import (
    BUILTIN_METRICS,
    FleetConfig,
    ScheduledAction,
    StepPolicy,
    TargetTrackingPolicy,
)
from repro.fleet.lifecycle import (
    BackendState,
    FleetLifecycle,
    LifecycleEvent,
)

__all__ = [
    "AutoscalingGroup",
    "BUILTIN_METRICS",
    "BackendState",
    "FleetConfig",
    "FleetLifecycle",
    "LifecycleEvent",
    "ScalingDecision",
    "ScheduledAction",
    "StepPolicy",
    "TargetTrackingPolicy",
]
