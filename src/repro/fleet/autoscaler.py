"""Metric-driven autoscaling over a live scenario.

:class:`AutoscalingGroup` is the fleet plane's engine.  It owns the
:class:`~repro.fleet.lifecycle.FleetLifecycle` for a fixed universe of
provisioned server names, evaluates the configured policies on a
periodic tick, and turns decisions into pool mutations that the LB,
resilience, and measurement planes can live with:

* **scale-out** batches: one provisioning timer per decision, one
  ``pool.add_many`` per boot batch (one Maglev rebuild, incremental
  when :attr:`FleetConfig.incremental_maglev` is on);
* **warm-up ramps**: new backends enter at a fraction of full weight
  and climb to 1.0 in discrete steps, so a cold cache never takes a
  full traffic share on its first packet;
* **graceful drain**: scale-in removes victims from the pool (new
  flows stop immediately; conntrack keeps routing established flows —
  the churn harness's affinity mechanics) and polls until their pinned
  flows hit zero before declaring them TERMINATED;
* **measurement hygiene**: the feedback plane's
  ``on_backend_added`` / ``on_backend_removed`` seams reset estimator,
  breaker, and signal-quality state across terminate/relaunch cycles,
  and each :class:`ScalingDecision` snapshots the pool's FRESH / STALE
  / INVALID grade counts — the signal-quality dynamics the elastic
  experiment reports.

Determinism: everything runs on the scenario's simulator clock; name
reuse pops from a LIFO free list; per-name generation counters void
timers that outlive a cancel or relaunch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FleetError
from repro.fleet.config import FleetConfig
from repro.fleet.lifecycle import (
    BackendState,
    FleetLifecycle,
    LifecycleEvent,
)
from repro.lb.backend import Backend, BackendPool
from repro.telemetry.timeseries import TimeSeries


@dataclass
class ScalingDecision:
    """Telemetry record: one executed scaling decision."""

    time: int
    policy: str           # "target-tracking" | "step" | "scheduled"
    direction: str        # "out" | "in"
    reason: str
    metric: Optional[float]
    before: int           # fleet capacity before
    after: int            # fleet capacity after
    #: Signal-quality census at decision time: grade name → backends.
    grades: Dict[str, int] = field(default_factory=dict)


class AutoscalingGroup:
    """Grows and shrinks the in-service backend set under policy.

    Parameters
    ----------
    sim:
        The scenario's simulator (timers, clock).
    pool:
        The LB's backend pool; must already hold the initial
        in-service backends.
    conntrack:
        The LB's connection-tracking table (drain progress, the
        ``flows_per_backend`` metric).
    config:
        Validated :class:`FleetConfig` with ``enabled=True``.
    all_names:
        The provisioned server universe in topology order; every name
        not initially in the pool starts on the free list.
    feedback:
        The scenario's ``InbandFeedback`` (or None): supplies the
        ``p95_ms`` metric, the per-decision grade census, and the
        add/remove reset seams.
    """

    def __init__(
        self,
        sim,
        pool: BackendPool,
        conntrack,
        config: FleetConfig,
        all_names: List[str],
        feedback=None,
    ):
        if not config.enabled:
            raise FleetError("AutoscalingGroup needs FleetConfig.enabled")
        config.validate()
        self.sim = sim
        self.pool = pool
        self.conntrack = conntrack
        self.config = config
        self.feedback = feedback
        self.lifecycle = FleetLifecycle()
        self.decisions: List[ScalingDecision] = []
        #: (time, capacity) after every capacity change.
        self.capacity_series = TimeSeries(name="fleet_capacity")
        #: Extra metric sources: name → () -> Optional[float].
        self.metric_sources: Dict[str, Callable[[], Optional[float]]] = {}
        self._all_names = list(all_names)
        initial = [n for n in all_names if n in pool]
        # LIFO free list, reversed so the lowest-index spare pops first.
        self._free = [n for n in reversed(all_names) if n not in pool]
        self._gen: Dict[str, int] = {n: 0 for n in all_names}
        self._warming_since: Dict[str, int] = {}
        self._drain_started: Dict[str, int] = {}
        #: Launch order (newest last) — scale-in victims pop from here.
        self._launch_order: List[str] = list(initial)
        self._last_out: Optional[int] = None
        self._last_in: Optional[int] = None
        self._pending_schedule = sorted(
            config.schedule, key=lambda a: (a.at, a.desired)
        )
        self._ramp_running = False
        self._started = False
        self._metrics = None
        self._tracer = None
        now = sim.now
        for name in initial:
            self.lifecycle.transition(
                now, name, BackendState.IN_SERVICE, "initial pool"
            )
        self.capacity_series.append(now, float(self.lifecycle.capacity()))

    # ------------------------------------------------------------------
    # Observability seams (the obs plane attaches; fleet never imports it)

    def attach_metrics(self, metrics) -> None:
        """Attach the obs plane's fleet instrument bundle."""
        self._metrics = metrics

    def attach_tracer(self, tracer) -> None:
        """Attach a span recorder with an ``on_scale`` hook."""
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Introspection

    def capacity(self) -> int:
        """Current fleet capacity (provisioning + warming + in service)."""
        return self.lifecycle.capacity()

    def oscillations(self) -> int:
        """Adjacent opposite-direction decisions within the window."""
        window = self.config.oscillation_window
        count = 0
        for prev, cur in zip(self.decisions, self.decisions[1:]):
            if (
                cur.direction != prev.direction
                and cur.time - prev.time <= window
            ):
                count += 1
        return count

    def time_to_stable(self, since: int = 0) -> Optional[int]:
        """Time of the last scaling decision at/after ``since``.

        "Time to stable fleet" after an event at ``since`` is this
        minus ``since``; None means no decision fired after it.
        """
        times = [d.time for d in self.decisions if d.time >= since]
        return max(times) if times else None

    def grade_census(self, now: int) -> Dict[str, int]:
        """FRESH/STALE/INVALID counts across the current pool."""
        quality = getattr(self.feedback, "quality", None)
        if quality is None:
            return {}
        census: Dict[str, int] = {}
        for name in self.pool.names():
            grade = quality.grade(name, now).value
            census[grade] = census.get(grade, 0) + 1
        return census

    # ------------------------------------------------------------------
    # The evaluation loop

    def start(self) -> None:
        """Begin the periodic policy-evaluation tick."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_fire(self.config.evaluate_interval, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        self._evaluate(now)
        self.sim.schedule_fire(self.config.evaluate_interval, self._tick)

    def _evaluate(self, now: int) -> None:
        desired, policy, reason, metric = self._desired(now)
        if desired is None:
            return
        desired = max(
            self.config.min_in_service,
            min(self.config.max_backends, desired),
        )
        current = self.lifecycle.capacity()
        scheduled = policy == "scheduled"
        if desired > current:
            if not scheduled and not self._cooled(now, "out"):
                return
            self._scale_out(now, desired - current, policy, reason, metric)
        elif desired < current:
            if not scheduled and not self._cooled(now, "in"):
                return
            self._scale_in(now, current - desired, policy, reason, metric)

    def _cooled(self, now: int, direction: str) -> bool:
        last = self._last_out if direction == "out" else self._last_in
        cooldown = (
            self.config.scale_out_cooldown
            if direction == "out"
            else self.config.scale_in_cooldown
        )
        return last is None or now - last >= cooldown

    def _desired(
        self, now: int
    ) -> Tuple[Optional[int], str, str, Optional[float]]:
        """The policy verdict: (desired, policy kind, reason, metric)."""
        due = [a for a in self._pending_schedule if a.at <= now]
        if due:
            self._pending_schedule = [
                a for a in self._pending_schedule if a.at > now
            ]
            action = due[-1]  # latest due action wins
            return (
                action.desired,
                "scheduled",
                "scheduled desired=%d" % action.desired,
                None,
            )
        current = self.lifecycle.capacity()
        outs: List[Tuple[int, str, str, float]] = []
        ins: List[Tuple[int, str, str, float]] = []
        tt = self.config.target_tracking
        if tt is not None:
            value = self._metric(tt.metric)
            if value is not None:
                high = tt.target * (1.0 + tt.band)
                low = tt.target * (1.0 - tt.band)
                # Solve for the size that restores the setpoint; the
                # ceiling keeps the metric at or under target.
                proposed = math.ceil(current * value / tt.target)
                reason = "%s=%.2f target=%.2f" % (tt.metric, value, tt.target)
                if value > high:
                    proposed = min(proposed, current + tt.max_step)
                    outs.append((proposed, "target-tracking", reason, value))
                elif value < low:
                    proposed = max(proposed, current - tt.max_step)
                    ins.append((proposed, "target-tracking", reason, value))
        for policy in self.config.steps:
            value = self._metric(policy.metric)
            if value is None:
                continue
            if policy.upper is not None and value >= policy.upper:
                reason = "%s=%.2f >= %.2f" % (policy.metric, value, policy.upper)
                outs.append((current + policy.step, "step", reason, value))
            elif policy.lower is not None and value <= policy.lower:
                reason = "%s=%.2f <= %.2f" % (policy.metric, value, policy.lower)
                ins.append((current - policy.step, "step", reason, value))
        if outs:
            # Most aggressive scale-out wins (capacity safety first).
            desired, kind, reason, value = max(outs)
            return desired, kind, reason, value
        if ins:
            # Most conservative scale-in wins (remove the least).
            desired, kind, reason, value = max(ins)
            return desired, kind, reason, value
        return None, "", "", None

    def _metric(self, name: str) -> Optional[float]:
        if name == "flows_per_backend":
            serving = self.lifecycle.in_state(
                BackendState.WARMING, BackendState.IN_SERVICE
            )
            if not serving:
                return None
            flows = sum(self.conntrack.active_flows(n) for n in serving)
            return flows / len(serving)
        if name == "p95_ms":
            estimator = getattr(self.feedback, "estimator", None)
            if estimator is None:
                return None
            estimates = [
                v
                for v in (
                    estimator.estimate(n)
                    for n in self.lifecycle.in_state(BackendState.IN_SERVICE)
                )
                if v is not None
            ]
            if not estimates:
                return None
            return sum(estimates) / len(estimates) / 1e6  # ns → ms
        source = self.metric_sources.get(name)
        if source is None:
            raise FleetError("unknown fleet metric %r" % name)
        return source()

    # ------------------------------------------------------------------
    # Scale-out: PROVISIONING → WARMING → IN_SERVICE

    def _scale_out(
        self,
        now: int,
        count: int,
        policy: str,
        reason: str,
        metric: Optional[float],
    ) -> None:
        count = min(count, len(self._free))
        if count == 0:
            return
        before = self.lifecycle.capacity()
        batch = [self._free.pop() for _ in range(count)]
        for name in batch:
            self.lifecycle.transition(
                now, name, BackendState.PROVISIONING, reason
            )
            self._launch_order.append(name)
        gens = [(name, self._gen[name]) for name in batch]
        self.sim.schedule_fire(
            self.config.provision_delay, lambda: self._enter_warming(gens)
        )
        self._last_out = now
        self._record_decision(
            now, policy, "out", reason, metric, before
        )

    def _enter_warming(self, gens: List[Tuple[str, int]]) -> None:
        now = self.sim.now
        batch = [
            name
            for name, gen in gens
            if self._gen[name] == gen
            and self.lifecycle.state(name) is BackendState.PROVISIONING
        ]
        if not batch:
            return
        for name in batch:
            # Reset seams *before* the pool add: the first packet to the
            # new backend must not land on last-incarnation state.
            if self.feedback is not None:
                self.feedback.on_backend_added(name, now)
            self._warming_since[name] = now
        self.pool.add_many(
            [
                Backend(name, weight=self.config.warmup_initial_weight)
                for name in batch
            ]
        )
        for name in batch:
            self.lifecycle.transition(
                now, name, BackendState.WARMING, "boot complete"
            )
        if not self._ramp_running:
            self._ramp_running = True
            self.sim.schedule_fire(self._ramp_interval(), self._ramp_tick)

    def _ramp_interval(self) -> int:
        return max(1, self.config.warmup_duration // self.config.warmup_steps)

    def _ramp_tick(self) -> None:
        now = self.sim.now
        warming = self.lifecycle.in_state(BackendState.WARMING)
        if not warming:
            self._ramp_running = False
            return
        initial = self.config.warmup_initial_weight
        updates: Dict[str, float] = {}
        graduated: List[str] = []
        for name in warming:
            if name not in self.pool:
                continue  # drained mid-ramp
            frac = (now - self._warming_since[name]) / self.config.warmup_duration
            if frac >= 1.0:
                updates[name] = 1.0
                graduated.append(name)
            else:
                updates[name] = initial + (1.0 - initial) * frac
        if updates:
            self.pool.set_weights(updates)  # one rebuild per ramp step
        for name in graduated:
            self.lifecycle.transition(
                now, name, BackendState.IN_SERVICE, "warm-up complete"
            )
            self._warming_since.pop(name, None)
        self.sim.schedule_fire(self._ramp_interval(), self._ramp_tick)

    # ------------------------------------------------------------------
    # Scale-in: DRAINING → TERMINATED (or cancel a PROVISIONING boot)

    def _scale_in(
        self,
        now: int,
        count: int,
        policy: str,
        reason: str,
        metric: Optional[float],
    ) -> None:
        victims = self._pick_victims(count)
        if not victims:
            return
        before = self.lifecycle.capacity()
        draining: List[str] = []
        for name in victims:
            state = self.lifecycle.state(name)
            if state is BackendState.PROVISIONING:
                # Not booted yet: cancel outright, nothing to drain.
                self.lifecycle.transition(
                    now, name, BackendState.TERMINATED, "launch cancelled"
                )
                self._release(name)
                continue
            # Forget the signal first so the ladder never HOLDs on a
            # backend we are deliberately removing.
            if self.feedback is not None:
                self.feedback.on_backend_removed(name, now)
            self.lifecycle.transition(now, name, BackendState.DRAINING, reason)
            self._warming_since.pop(name, None)
            self._drain_started[name] = now
            draining.append(name)
        if draining:
            # One pool notification: new flows stop landing on the
            # victims now; conntrack keeps their established flows home.
            self.pool.remove_many(draining)
            for name in draining:
                self._schedule_drain_poll(name, self._gen[name])
        self._last_in = now
        self._record_decision(now, policy, "in", reason, metric, before)

    def _pick_victims(self, count: int) -> List[str]:
        """Newest launches die first; never below ``min_in_service``."""
        victims: List[str] = []
        in_service_left = self.lifecycle.count(
            BackendState.WARMING, BackendState.IN_SERVICE
        )
        for name in reversed(self._launch_order):
            if len(victims) >= count:
                break
            state = self.lifecycle.state(name)
            if state is BackendState.PROVISIONING:
                victims.append(name)
            elif state in (BackendState.WARMING, BackendState.IN_SERVICE):
                if in_service_left <= self.config.min_in_service:
                    continue
                in_service_left -= 1
                victims.append(name)
        return victims

    def _schedule_drain_poll(self, name: str, gen: int) -> None:
        self.sim.schedule_fire(
            self.config.drain_poll, lambda: self._drain_poll(name, gen)
        )

    def _drain_poll(self, name: str, gen: int) -> None:
        if (
            self._gen[name] != gen
            or self.lifecycle.state(name) is not BackendState.DRAINING
        ):
            return
        now = self.sim.now
        pinned = self.conntrack.active_flows(name)
        timed_out = now - self._drain_started[name] >= self.config.drain_timeout
        if pinned > 0 and not timed_out:
            self._schedule_drain_poll(name, gen)
            return
        reason = (
            "drained (%d flows cut at timeout)" % pinned
            if pinned
            else "drained clean"
        )
        self.lifecycle.transition(now, name, BackendState.TERMINATED, reason)
        self._drain_started.pop(name, None)
        self._release(name)

    def _release(self, name: str) -> None:
        """Return a terminated name to the free list for reuse."""
        self._gen[name] += 1
        self._launch_order.remove(name)
        self._free.append(name)

    # ------------------------------------------------------------------

    def _record_decision(
        self,
        now: int,
        policy: str,
        direction: str,
        reason: str,
        metric: Optional[float],
        before: int,
    ) -> None:
        after = self.lifecycle.capacity()
        self.decisions.append(
            ScalingDecision(
                time=now,
                policy=policy,
                direction=direction,
                reason=reason,
                metric=metric,
                before=before,
                after=after,
                grades=self.grade_census(now),
            )
        )
        self.capacity_series.append(now, float(after))
        if self._metrics is not None:
            self._metrics.decisions.labels(
                policy=policy, direction=direction
            ).inc()
        if self._tracer is not None:
            self._tracer.on_scale(now, policy, direction, before, after, reason)
