"""Declarative configuration of the fleet plane.

A :class:`FleetConfig` hangs off ``ScenarioConfig.fleet`` and is
**default-off**: with ``enabled=False`` the harness builds exactly the
static topology it always has, byte-identical to pre-fleet runs.  When
enabled, the scenario provisions ``max_backends`` server nodes up front
(topology is static — the simulator's world doesn't change shape) but
starts with only ``ScenarioConfig.n_servers`` of them in the pool; the
:class:`~repro.fleet.autoscaler.AutoscalingGroup` then grows and
shrinks the *in-service* set according to the policies below.

Three policy kinds, mirroring the cloud-provider taxonomy:

* **target-tracking** — keep a fleet-level metric (mean in-service
  flows per backend, estimator p95, …) near a setpoint by solving for
  the fleet size that would restore it;
* **step** — threshold rules: metric at/above ``upper`` adds ``step``
  backends, at/below ``lower`` removes them;
* **scheduled** — one-shot "desired capacity at time t" actions (the
  diurnal part of an elastic workload, or a guaranteed ramp target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.units import MILLISECONDS

#: Metric names the autoscaler can resolve without external sources.
BUILTIN_METRICS = ("flows_per_backend", "p95_ms")


@dataclass
class TargetTrackingPolicy:
    """Keep ``metric`` near ``target`` by resizing the fleet."""

    metric: str = "flows_per_backend"
    target: float = 2.0
    #: Relative dead-band around the target; no action inside it (a
    #: band of 0.2 means act only outside [0.8·target, 1.2·target]).
    band: float = 0.2
    #: Most backends added or removed by a single decision.
    max_step: int = 256

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.target <= 0:
            raise ConfigError("target-tracking target must be positive")
        if not 0.0 <= self.band < 1.0:
            raise ConfigError("target-tracking band must be in [0, 1)")
        if self.max_step < 1:
            raise ConfigError("target-tracking max_step must be >= 1")


@dataclass
class StepPolicy:
    """Threshold rule: breach ``upper``/``lower`` to move ``step``."""

    metric: str = "flows_per_backend"
    upper: Optional[float] = None
    lower: Optional[float] = None
    step: int = 1

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.upper is None and self.lower is None:
            raise ConfigError("step policy needs an upper or lower bound")
        if (
            self.upper is not None
            and self.lower is not None
            and self.lower >= self.upper
        ):
            raise ConfigError("step policy lower bound must be < upper")
        if self.step < 1:
            raise ConfigError("step policy step must be >= 1")


@dataclass
class ScheduledAction:
    """One-shot: set desired capacity to ``desired`` at time ``at``."""

    at: int
    desired: int

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.at < 0:
            raise ConfigError("scheduled action time must be >= 0")
        if self.desired < 1:
            raise ConfigError("scheduled desired capacity must be >= 1")


@dataclass
class FleetConfig:
    """The fleet plane's tunables (off by default)."""

    enabled: bool = False
    #: Provisioned server universe; the topology has this many nodes.
    max_backends: int = 8
    #: The autoscaler never drains below this many in-service backends.
    min_in_service: int = 1
    #: Period of the policy-evaluation tick.
    evaluate_interval: int = 50 * MILLISECONDS
    #: PROVISIONING → WARMING latency (instance boot, in sim time).
    provision_delay: int = 100 * MILLISECONDS
    #: WARMING → IN_SERVICE ramp: weight climbs from
    #: ``warmup_initial_weight`` to 1.0 over ``warmup_duration`` in
    #: ``warmup_steps`` discrete steps (each step is one pool
    #: notification, i.e. one Maglev rebuild for all warming backends).
    warmup_duration: int = 200 * MILLISECONDS
    warmup_initial_weight: float = 0.1
    warmup_steps: int = 4
    #: Cooldowns between same-direction metric-driven decisions
    #: (scheduled actions bypass them — they're operator intent).
    scale_out_cooldown: int = 100 * MILLISECONDS
    scale_in_cooldown: int = 200 * MILLISECONDS
    #: DRAINING → TERMINATED: poll conntrack until the backend's pinned
    #: flows hit zero, or give up after ``drain_timeout``.
    drain_poll: int = 20 * MILLISECONDS
    drain_timeout: int = 500 * MILLISECONDS
    #: Two opposite-direction decisions within this window count as one
    #: oscillation (the controller-stability headline metric).
    oscillation_window: int = 1000 * MILLISECONDS
    #: Patch the Maglev table on membership change instead of rebuilding
    #: it from scratch (see :mod:`repro.lb.maglev`).
    incremental_maglev: bool = True
    target_tracking: Optional[TargetTrackingPolicy] = None
    steps: List[StepPolicy] = field(default_factory=list)
    schedule: List[ScheduledAction] = field(default_factory=list)

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if not self.enabled:
            return
        if self.max_backends < 1:
            raise ConfigError("max_backends must be >= 1")
        if not 1 <= self.min_in_service <= self.max_backends:
            raise ConfigError(
                "min_in_service must be in [1, max_backends]"
            )
        for name, value in (
            ("evaluate_interval", self.evaluate_interval),
            ("provision_delay", self.provision_delay),
            ("warmup_duration", self.warmup_duration),
            ("drain_poll", self.drain_poll),
            ("drain_timeout", self.drain_timeout),
        ):
            if value <= 0:
                raise ConfigError("%s must be positive" % name)
        if self.scale_out_cooldown < 0 or self.scale_in_cooldown < 0:
            raise ConfigError("cooldowns must be >= 0")
        if not 0.0 < self.warmup_initial_weight <= 1.0:
            raise ConfigError("warmup_initial_weight must be in (0, 1]")
        if self.warmup_steps < 1:
            raise ConfigError("warmup_steps must be >= 1")
        if self.oscillation_window < 0:
            raise ConfigError("oscillation_window must be >= 0")
        if self.target_tracking is not None:
            self.target_tracking.validate()
        for policy in self.steps:
            policy.validate()
        for action in self.schedule:
            action.validate()
