"""The backend lifecycle state machine.

Every fleet backend moves through::

    PROVISIONING → WARMING → IN_SERVICE → DRAINING → TERMINATED

with two extra legal edges: PROVISIONING → TERMINATED (a scale-in
decision cancels a not-yet-booted instance — nothing to drain) and
WARMING → DRAINING (a ramping backend can be drained early).  A
TERMINATED name may be relaunched (→ PROVISIONING): the fleet reuses
backend names, which is exactly why the measurement plane exposes
reset seams (see ``InbandFeedback.on_backend_added``).

The machine is pure bookkeeping — it never touches the pool or the
simulator.  The :class:`~repro.fleet.autoscaler.AutoscalingGroup`
drives transitions; the obs plane subscribes via ``on_transition`` to
count them without the fleet importing :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import FleetError


class BackendState(enum.Enum):
    """Where a fleet backend is in its life."""

    PROVISIONING = "provisioning"
    WARMING = "warming"
    IN_SERVICE = "in_service"
    DRAINING = "draining"
    TERMINATED = "terminated"


#: States that count toward fleet capacity (a PROVISIONING instance is
#: capacity already paid for; a DRAINING one is on its way out).
CAPACITY_STATES = (
    BackendState.PROVISIONING,
    BackendState.WARMING,
    BackendState.IN_SERVICE,
)

_LEGAL: Dict[Optional[BackendState], tuple] = {
    # A name never seen (or terminated) can launch; seeding the initial
    # pool jumps straight to IN_SERVICE.
    None: (BackendState.PROVISIONING, BackendState.IN_SERVICE),
    BackendState.PROVISIONING: (
        BackendState.WARMING,
        BackendState.TERMINATED,  # cancelled before boot
    ),
    BackendState.WARMING: (
        BackendState.IN_SERVICE,
        BackendState.DRAINING,  # drained mid-ramp
    ),
    BackendState.IN_SERVICE: (BackendState.DRAINING,),
    BackendState.DRAINING: (BackendState.TERMINATED,),
    BackendState.TERMINATED: (BackendState.PROVISIONING,),  # name reuse
}


@dataclass
class LifecycleEvent:
    """Telemetry record: one backend's transition."""

    time: int
    backend: str
    from_state: Optional[BackendState]
    to_state: BackendState
    reason: str = ""


@dataclass
class FleetLifecycle:
    """All backends' states plus the shared transition log."""

    states: Dict[str, BackendState] = field(default_factory=dict)
    events: List[LifecycleEvent] = field(default_factory=list)
    _listeners: List[Callable[[LifecycleEvent], None]] = field(
        default_factory=list
    )

    def on_transition(self, listener: Callable[[LifecycleEvent], None]) -> None:
        """Subscribe to transitions (obs plane, tests)."""
        self._listeners.append(listener)

    def state(self, name: str) -> Optional[BackendState]:
        """Current state of ``name`` (None if never launched)."""
        return self.states.get(name)

    def transition(
        self, now: int, name: str, to_state: BackendState, reason: str = ""
    ) -> LifecycleEvent:
        """Move ``name`` to ``to_state``; illegal edges raise FleetError."""
        from_state = self.states.get(name)
        if to_state not in _LEGAL[from_state]:
            raise FleetError(
                "illegal lifecycle transition %s: %s -> %s"
                % (
                    name,
                    from_state.value if from_state else "(new)",
                    to_state.value,
                )
            )
        self.states[name] = to_state
        event = LifecycleEvent(
            time=now,
            backend=name,
            from_state=from_state,
            to_state=to_state,
            reason=reason,
        )
        self.events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def in_state(self, *states: BackendState) -> List[str]:
        """Backend names currently in any of ``states`` (sorted)."""
        wanted = set(states)
        return sorted(n for n, s in self.states.items() if s in wanted)

    def count(self, *states: BackendState) -> int:
        """How many backends are in any of ``states``."""
        wanted = set(states)
        return sum(1 for s in self.states.values() if s in wanted)

    def capacity(self) -> int:
        """Backends that count as fleet capacity (see CAPACITY_STATES)."""
        return self.count(*CAPACITY_STATES)

    def transition_counts(self) -> Dict[str, int]:
        """``"from->to"`` → occurrences, for reports and metrics."""
        counts: Dict[str, int] = {}
        for event in self.events:
            key = "%s->%s" % (
                event.from_state.value if event.from_state else "new",
                event.to_state.value,
            )
            counts[key] = counts.get(key, 0) + 1
        return counts
