"""Exponentially-weighted moving average.

Used by the per-backend latency estimator: new `T_LB` samples fold into a
smoothed view of each server's recent latency, the way TCP smooths its
SRTT.  Also provides a time-decaying variant whose weight depends on the
gap between samples, which behaves better when sample rates differ across
backends (a slow backend produces fewer samples, but its estimate should
not be stickier because of it).
"""

from __future__ import annotations

import math
from typing import Optional


class Ewma:
    """Classic fixed-gain EWMA: ``est ← (1-g)·est + g·sample``.

    The first observation initializes the estimate directly, mirroring
    TCP's SRTT bootstrap.
    """

    def __init__(self, gain: float = 0.2):
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1], got %r" % gain)
        self._gain = gain
        self._value: Optional[float] = None
        self._count = 0

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or None before any observation."""
        return self._value

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    def observe(self, sample: float) -> float:
        """Fold in a sample and return the updated estimate."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self._gain * (sample - self._value)
        self._count += 1
        return self._value

    def reset(self) -> None:
        """Forget all state."""
        self._value = None
        self._count = 0


class TimeDecayEwma:
    """EWMA whose decay depends on elapsed time, not sample count.

    The estimate decays toward each new sample with weight
    ``1 - exp(-dt / tau)``: two backends sampled at different rates decay
    at the same wall-clock speed.  ``tau`` is the time constant in the
    same units as the timestamps (nanoseconds everywhere in this project).
    """

    def __init__(self, tau: int):
        if tau <= 0:
            raise ValueError("tau must be positive, got %r" % tau)
        self._tau = tau
        self._value: Optional[float] = None
        self._last_time: Optional[int] = None
        self._count = 0

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or None before any observation."""
        return self._value

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    def observe(self, now: int, sample: float) -> float:
        """Fold in ``sample`` observed at time ``now``; returns estimate."""
        if self._value is None or self._last_time is None:
            self._value = float(sample)
        else:
            dt = max(0, now - self._last_time)
            weight = 1.0 - math.exp(-dt / self._tau)
            self._value += weight * (sample - self._value)
        self._last_time = now
        self._count += 1
        return self._value

    def reset(self) -> None:
        """Forget all state."""
        self._value = None
        self._last_time = None
        self._count = 0
