"""Streaming and windowed quantile estimators.

The harness reports tail latency (the paper's Fig 3 plots p95), so we
need quantiles both over sliding windows (recent behaviour, used by the
controller's per-backend estimator) and over full runs (reporting).

* :func:`exact_quantile` — exact quantile of a sequence, linear
  interpolation between order statistics (same convention as
  ``numpy.percentile(..., method="linear")``).
* :class:`WindowedQuantile` — exact quantile over the last N samples,
  maintained with a sorted list (O(log n) insert/remove via bisect).
* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: O(1) memory
  streaming estimate, used where windows would be too costly.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List, Optional, Sequence


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile (0 ≤ q ≤ 1) with linear interpolation.

    Raises ValueError on an empty sequence — callers decide what an
    absent distribution means; silently returning 0 would corrupt
    latency reports.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % q)
    if not values:
        raise ValueError("cannot take quantile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    # `a + f*(b-a)` (not `a*(1-f) + b*f`): exact when a == b, and always
    # within [a, b], which keeps quantiles monotone in q.
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


class WindowedQuantile:
    """Exact quantile over a sliding window of the last ``window`` samples.

    Keeps the window in arrival order (deque) plus a parallel sorted list,
    so insertion and eviction are O(log n) + O(n) shift — fine for the
    window sizes the estimator uses (tens to hundreds of samples).
    """

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError("window must be positive, got %r" % window)
        self._window = window
        self._arrivals: Deque[float] = deque()
        self._sorted: List[float] = []

    def __len__(self) -> int:
        return len(self._arrivals)

    @property
    def window(self) -> int:
        """Maximum number of retained samples."""
        return self._window

    def observe(self, sample: float) -> None:
        """Add a sample, evicting the oldest when the window is full."""
        sample = float(sample)
        if len(self._arrivals) == self._window:
            oldest = self._arrivals.popleft()
            idx = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[idx]
        self._arrivals.append(sample)
        bisect.insort(self._sorted, sample)

    def quantile(self, q: float) -> Optional[float]:
        """Current ``q``-quantile, or None while empty."""
        if not self._sorted:
            return None
        return exact_quantile(self._sorted, q)

    def reset(self) -> None:
        """Drop all samples."""
        self._arrivals.clear()
        self._sorted.clear()


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator (1985).

    Tracks five markers whose heights approximate the q-quantile with
    O(1) memory.  Before five samples arrive, falls back to the exact
    quantile of what it has.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1), got %r" % q)
        self._q = q
        self._heights: List[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [
            1.0,
            1.0 + 2.0 * q,
            1.0 + 4.0 * q,
            3.0 + 2.0 * q,
            5.0,
        ]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    def observe(self, sample: float) -> None:
        """Fold one sample into the estimator."""
        sample = float(sample)
        self._count += 1
        if len(self._heights) < 5:
            bisect.insort(self._heights, sample)
            return

        heights = self._heights
        positions = self._positions

        if sample < heights[0]:
            heights[0] = sample
            cell = 0
        elif sample >= heights[4]:
            heights[4] = sample
            cell = 3
        else:
            # Find k with heights[k] <= sample < heights[k+1].
            cell = 3
            for i in range(1, 5):
                if sample < heights[i]:
                    cell = i - 1
                    break

        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if delta >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def value(self) -> Optional[float]:
        """Current estimate, or None before any observation."""
        if self._count == 0:
            return None
        if len(self._heights) < 5 or self._count < 5:
            return exact_quantile(self._heights, self._q)
        return self._heights[2]

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])
