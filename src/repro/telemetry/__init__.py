"""Streaming statistics used by the measurement plane and the harness.

Everything here is dependency-free and O(1)-ish per observation so the
load balancer's per-packet path can afford it:

* :class:`~repro.telemetry.ewma.Ewma` — exponentially-weighted average.
* :class:`~repro.telemetry.quantiles.P2Quantile` — streaming quantile.
* :class:`~repro.telemetry.quantiles.WindowedQuantile` — exact sliding window.
* :class:`~repro.telemetry.histogram.LogHistogram` — log-bucketed latencies.
* :class:`~repro.telemetry.timeseries.TimeSeries` — raw (t, value) recorder.
* :class:`~repro.telemetry.timeseries.BucketedSeries` — per-interval stats.
* :class:`~repro.telemetry.summary.summarize` — one-shot distribution report.
"""

from repro.telemetry.ewma import Ewma
from repro.telemetry.quantiles import P2Quantile, WindowedQuantile, exact_quantile
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.timeseries import TimeSeries, BucketedSeries
from repro.telemetry.summary import DistributionSummary, summarize

__all__ = [
    "Ewma",
    "P2Quantile",
    "WindowedQuantile",
    "exact_quantile",
    "LogHistogram",
    "TimeSeries",
    "BucketedSeries",
    "DistributionSummary",
    "summarize",
]
