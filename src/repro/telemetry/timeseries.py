"""Time-series recorders used to regenerate the paper's figures.

:class:`TimeSeries` keeps raw ``(timestamp, value)`` pairs — that's what
Fig 2 scatters.  :class:`BucketedSeries` aggregates values into fixed
time buckets and reports per-bucket statistics — that's what Fig 3's
"p95 over time" line needs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.quantiles import exact_quantile


class TimeSeries:
    """Append-only record of ``(time_ns, value)`` samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[int] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time_ns: int, value: float) -> None:
        """Record ``value`` observed at ``time_ns``.

        Timestamps must be non-decreasing; the simulator guarantees this
        naturally, so a violation signals a wiring bug worth failing on.
        """
        if self._times and time_ns < self._times[-1]:
            raise ValueError(
                "timestamps must be non-decreasing (%d after %d)"
                % (time_ns, self._times[-1])
            )
        self._times.append(time_ns)
        self._values.append(float(value))

    @property
    def times(self) -> Sequence[int]:
        """All timestamps, in order."""
        return self._times

    @property
    def values(self) -> Sequence[float]:
        """All values, in timestamp order."""
        return self._values

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(time_ns, value)`` pairs in order."""
        return zip(self._times, self._values)

    def between(self, start_ns: int, end_ns: int) -> List[Tuple[int, float]]:
        """Samples with ``start_ns <= t < end_ns`` (linear scan)."""
        return [
            (t, v)
            for t, v in zip(self._times, self._values)
            if start_ns <= t < end_ns
        ]

    def last(self) -> Optional[Tuple[int, float]]:
        """Most recent sample, or None when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]


class BucketedSeries:
    """Aggregates samples into fixed-width time buckets.

    Supports per-bucket count/mean/quantiles, which is exactly what the
    Fig 3 report prints (one p95 per time bucket).
    """

    def __init__(self, bucket_ns: int, name: str = ""):
        if bucket_ns <= 0:
            raise ValueError("bucket width must be positive, got %r" % bucket_ns)
        self.name = name
        self._bucket_ns = bucket_ns
        self._buckets: Dict[int, List[float]] = {}

    @property
    def bucket_ns(self) -> int:
        """Width of each bucket in nanoseconds."""
        return self._bucket_ns

    def append(self, time_ns: int, value: float) -> None:
        """Record ``value`` into the bucket containing ``time_ns``."""
        index = time_ns // self._bucket_ns
        self._buckets.setdefault(index, []).append(float(value))

    def bucket_indices(self) -> List[int]:
        """Sorted indices of non-empty buckets."""
        return sorted(self._buckets)

    def bucket_start(self, index: int) -> int:
        """Start time (ns) of bucket ``index``."""
        return index * self._bucket_ns

    def count(self, index: int) -> int:
        """Number of samples in bucket ``index`` (0 if empty)."""
        return len(self._buckets.get(index, ()))

    def mean(self, index: int) -> Optional[float]:
        """Mean of bucket ``index``, or None if empty."""
        samples = self._buckets.get(index)
        if not samples:
            return None
        return sum(samples) / len(samples)

    def quantile(self, index: int, q: float) -> Optional[float]:
        """Exact ``q``-quantile of bucket ``index``, or None if empty."""
        samples = self._buckets.get(index)
        if not samples:
            return None
        return exact_quantile(samples, q)

    def series(
        self, reducer: Callable[[List[float]], float]
    ) -> List[Tuple[int, float]]:
        """Reduce every bucket, returning ``(bucket_start_ns, value)`` rows."""
        return [
            (self.bucket_start(index), reducer(self._buckets[index]))
            for index in self.bucket_indices()
        ]

    def quantile_series(self, q: float) -> List[Tuple[int, float]]:
        """Convenience: per-bucket ``q``-quantile series."""
        return self.series(lambda samples: exact_quantile(samples, q))
