"""Log-bucketed histogram for latency distributions.

Latencies in this system span ~1 µs to ~100 ms — four orders of
magnitude — so linear buckets are useless.  :class:`LogHistogram` buckets
by powers of ``base`` with ``sub`` sub-buckets per octave (HdrHistogram's
idea, simplified), giving bounded relative error at every scale with a
few hundred integer counters.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple


class LogHistogram:
    """Histogram over positive values with logarithmic buckets.

    Parameters
    ----------
    base:
        Growth factor between octaves (default 2.0).
    sub:
        Sub-buckets per octave; higher means finer relative resolution
        (default 8 ⇒ ~9 % worst-case relative error with base 2).
    """

    def __init__(self, base: float = 2.0, sub: int = 8):
        if base <= 1.0:
            raise ValueError("base must exceed 1, got %r" % base)
        if sub < 1:
            raise ValueError("sub must be >= 1, got %r" % sub)
        self._log_base = math.log(base)
        self._sub = sub
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def __len__(self) -> int:
        return self._total

    @property
    def total(self) -> int:
        """Total number of recorded values."""
        return self._total

    @property
    def sum(self) -> float:
        """Sum of recorded values (for exact means)."""
        return self._sum

    @property
    def min(self) -> Optional[float]:
        """Smallest recorded value."""
        return self._min

    @property
    def max(self) -> Optional[float]:
        """Largest recorded value."""
        return self._max

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (must be > 0) ``count`` times."""
        if value <= 0:
            raise ValueError("LogHistogram takes positive values, got %r" % value)
        if count <= 0:
            raise ValueError("count must be positive, got %r" % count)
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + count
        self._total += count
        self._sum += value * count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def mean(self) -> Optional[float]:
        """Exact mean of recorded values, or None when empty."""
        if self._total == 0:
            return None
        return self._sum / self._total

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile (bucket midpoint), or None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % q)
        if self._total == 0:
            return None
        target = q * self._total
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                lo, hi = self._bounds(index)
                return (lo + hi) / 2.0
        lo, hi = self._bounds(max(self._counts))
        return (lo + hi) / 2.0

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(low, high, count)`` for each non-empty bucket, ordered."""
        for index in sorted(self._counts):
            lo, hi = self._bounds(index)
            yield lo, hi, self._counts[index]

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram (same parameters) into this one."""
        if other._log_base != self._log_base or other._sub != self._sub:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._total += other._total
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    def to_ascii(self, width: int = 50) -> str:
        """Render a fixed-width ASCII bar chart of the distribution."""
        if self._total == 0:
            return "(empty histogram)"
        rows: List[str] = []
        peak = max(self._counts.values())
        for lo, hi, count in self.buckets():
            bar = "#" * max(1, round(width * count / peak))
            rows.append("[%12.3f, %12.3f) %8d %s" % (lo, hi, count, bar))
        return "\n".join(rows)

    def _index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_base * self._sub)

    def _bounds(self, index: int) -> Tuple[float, float]:
        lo = math.exp(index / self._sub * self._log_base)
        hi = math.exp((index + 1) / self._sub * self._log_base)
        return lo, hi
