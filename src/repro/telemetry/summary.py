"""One-shot distribution summaries for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.quantiles import exact_quantile


@dataclass(frozen=True)
class DistributionSummary:
    """Mean and standard percentiles of a sample set."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    min: float
    max: float

    def format(self, scale: float = 1.0, unit: str = "") -> str:
        """Render one line, values divided by ``scale`` (e.g. to ms)."""
        return (
            "n=%d mean=%.3f%s p50=%.3f%s p90=%.3f%s p95=%.3f%s "
            "p99=%.3f%s min=%.3f%s max=%.3f%s"
            % (
                self.count,
                self.mean / scale, unit,
                self.p50 / scale, unit,
                self.p90 / scale, unit,
                self.p95 / scale, unit,
                self.p99 / scale, unit,
                self.min / scale, unit,
                self.max / scale, unit,
            )
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary`; raises on empty input."""
    if not values:
        raise ValueError("cannot summarize empty sample set")
    ordered = sorted(values)
    return DistributionSummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=exact_quantile(ordered, 0.50),
        p90=exact_quantile(ordered, 0.90),
        p95=exact_quantile(ordered, 0.95),
        p99=exact_quantile(ordered, 0.99),
        min=ordered[0],
        max=ordered[-1],
    )
