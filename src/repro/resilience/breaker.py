"""Per-backend circuit breakers for the LB connection path.

A circuit breaker is the dataplane-local complement of the signal
ladder: where the ladder reasons about the *control* signal, breakers
reason about per-backend *failure evidence* (failed health probes,
invalidated signals) and stop offering new flows to a backend that
keeps failing, without waiting for the slower fall/rise health cycle.

Standard three-state machine:

* ``CLOSED`` — normal; consecutive failures are counted, and at
  ``failure_threshold`` the breaker opens.
* ``OPEN`` — new flows are diverted elsewhere.  After
  ``reset_timeout`` the breaker softens to half-open.
* ``HALF_OPEN`` — up to ``half_open_trials`` trial flows are admitted
  as recovery probes; that many successes close the breaker, any
  failure re-opens it.

The breaker *composes with* active health checks rather than replacing
them: probe outcomes feed the breaker
(:class:`repro.lb.health.HealthChecker` reports successes/failures),
and the feedback plane's passive samples count as successes — so a
backend that is up but dark to probes can still close its breaker
through real traffic evidence.

Time is passed in explicitly (integer ns); state changes that depend
only on elapsed time (OPEN → HALF_OPEN) happen lazily on the next
query, keeping the breaker free of timers and fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.units import MILLISECONDS


class BreakerState(enum.Enum):
    """Circuit state."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    """Breaker tunables (Envoy-flavoured defaults, scaled to sim time)."""

    #: Consecutive failures that trip a closed breaker.
    failure_threshold: int = 3
    #: Time an open breaker waits before probing recovery.
    reset_timeout: int = 200 * MILLISECONDS
    #: Trial flows admitted (and successes required) while half-open.
    half_open_trials: int = 2

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.half_open_trials < 1:
            raise ValueError("half_open_trials must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """Telemetry event: one breaker state change."""

    time: int
    backend: str
    from_state: BreakerState
    to_state: BreakerState
    reason: str


class CircuitBreaker:
    """The state machine for one backend."""

    def __init__(
        self,
        backend: str,
        config: BreakerConfig,
        on_transition: Optional[Callable[[BreakerTransition], None]] = None,
    ):
        self.backend = backend
        self.config = config
        self.state = BreakerState.CLOSED
        self._on_transition = on_transition
        self._consecutive_failures = 0
        self._opened_at = 0
        self._trial_admissions = 0
        self._trial_successes = 0

    def allow(self, now: int, admit: bool = True) -> bool:
        """Whether a new flow may go to this backend.

        ``admit=True`` consumes a trial slot when half-open; pass
        ``admit=False`` to test candidates without spending slots.
        """
        self._poll(now)
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return False
        if self._trial_admissions >= self.config.half_open_trials:
            return False
        if admit:
            self._trial_admissions += 1
        return True

    def record_success(self, now: int) -> None:
        """Positive evidence: probe success or a live traffic sample."""
        self._poll(now)
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._trial_successes += 1
            if self._trial_successes >= self.config.half_open_trials:
                self._transition(
                    now,
                    BreakerState.CLOSED,
                    "%d trial successes" % self._trial_successes,
                )

    def record_failure(self, now: int) -> None:
        """Negative evidence: probe failure or signal invalidation."""
        self._poll(now)
        if self.state is BreakerState.HALF_OPEN:
            self._open(now, "trial failure")
            return
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._open(
                    now,
                    "%d consecutive failures" % self._consecutive_failures,
                )

    # ------------------------------------------------------------------

    def _poll(self, now: int) -> None:
        if (
            self.state is BreakerState.OPEN
            and now - self._opened_at >= self.config.reset_timeout
        ):
            self._trial_admissions = 0
            self._trial_successes = 0
            self._transition(now, BreakerState.HALF_OPEN, "reset timeout elapsed")

    def _open(self, now: int, reason: str) -> None:
        self._opened_at = now
        self._consecutive_failures = 0
        self._transition(now, BreakerState.OPEN, reason)

    def _transition(self, now: int, to_state: BreakerState, reason: str) -> None:
        event = BreakerTransition(
            time=now,
            backend=self.backend,
            from_state=self.state,
            to_state=to_state,
            reason=reason,
        )
        self.state = to_state
        if self._on_transition is not None:
            self._on_transition(event)


class BreakerBoard:
    """All backends' breakers plus the shared transition log."""

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self.config.validate()
        self.transitions: List[BreakerTransition] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Attach breaker instruments (see :mod:`repro.obs.plane`).

        Works regardless of when individual breakers get lazily created:
        every breaker reports through :meth:`_record_transition`.
        """
        self._metrics = metrics

    def _record_transition(self, event: BreakerTransition) -> None:
        self.transitions.append(event)
        if self._metrics is not None:
            self._metrics.transitions.labels(
                backend=event.backend, to_state=event.to_state.value
            ).inc()

    def breaker(self, backend: str) -> CircuitBreaker:
        """The (lazily created) breaker for ``backend``."""
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(
                backend, self.config, self._record_transition
            )
            self._breakers[backend] = breaker
        return breaker

    def allow(self, backend: str, now: int, admit: bool = True) -> bool:
        """Whether a new flow may go to ``backend``."""
        return self.breaker(backend).allow(now, admit=admit)

    def record_success(self, backend: str, now: int) -> None:
        """Feed positive evidence for ``backend``."""
        self.breaker(backend).record_success(now)

    def record_failure(self, backend: str, now: int) -> None:
        """Feed negative evidence for ``backend``."""
        self.breaker(backend).record_failure(now)

    def reset(self, backend: str) -> None:
        """Drop ``backend``'s breaker entirely (fleet reuse seam).

        A terminated backend's failure history must not carry over to a
        fresh instance launched under the same name; the next query
        lazily creates a pristine CLOSED breaker.
        """
        self._breakers.pop(backend, None)

    def state(self, backend: str) -> BreakerState:
        """Current state (CLOSED for backends never seen)."""
        breaker = self._breakers.get(backend)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def is_open(self, backend: str, now: int) -> bool:
        """Whether ``backend`` currently refuses flows (polls time)."""
        breaker = self._breakers.get(backend)
        if breaker is None:
            return False
        breaker._poll(now)
        return breaker.state is BreakerState.OPEN

    def states(self) -> Dict[str, BreakerState]:
        """Backend → state for every breaker instantiated so far."""
        return {name: b.state for name, b in sorted(self._breakers.items())}

    def open_backends(self) -> List[str]:
        """Backends currently refusing new flows (open breakers)."""
        return sorted(
            name
            for name, b in self._breakers.items()
            if b.state is BreakerState.OPEN
        )
