"""The controller degradation ladder: FEEDBACK → HOLD → FALLBACK.

The feedback loop has three postures, ordered by how much it trusts
its signal:

* ``FEEDBACK`` — every backend's signal is fresh; the α-shift
  controller runs normally.
* ``HOLD`` — at least one backend's signal is stale or starved.
  Weights freeze: shifting *away* from a silent backend is exactly the
  thundering-herd move the paper warns about, because the silence may
  mean "drained", not "slow".
* ``FALLBACK`` — signal quality collapsed pool-wide (too few backends
  with usable estimates to rank at all).  Weights relax to uniform and
  routing degrades to plain health-gated Maglev — the paper's baseline,
  which needs no latency signal to be correct.

Downgrades are immediate (a distrusted signal must stop driving
decisions *now*); upgrades require the better state to persist for
``reentry_hold`` so a flapping signal cannot pump the controller.
Every transition is recorded as a :class:`ModeTransition` telemetry
event and appended to ``mode_series`` for timeline plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.controller import AlphaShiftController, ShiftEvent
from repro.lb.backend import BackendPool
from repro.resilience.quality import SignalGrade, SignalQualityTracker
from repro.telemetry.timeseries import TimeSeries
from repro.units import MILLISECONDS

import enum


class ControllerMode(enum.Enum):
    """Posture of the feedback controller."""

    FEEDBACK = "feedback"
    HOLD = "hold"
    FALLBACK = "fallback"


#: Severity ordering: higher means more degraded.
_SEVERITY = {
    ControllerMode.FEEDBACK: 0,
    ControllerMode.HOLD: 1,
    ControllerMode.FALLBACK: 2,
}


@dataclass
class DegradationConfig:
    """Ladder tunables."""

    #: Enter FALLBACK when the usable (non-invalid) fraction of the
    #: pool drops to this or below.  0.5 means: once half the pool is
    #: unrankable, give up on differentiating and go uniform.
    fallback_fraction: float = 0.5
    #: A better mode must persist this long before the ladder upgrades.
    reentry_hold: int = 100 * MILLISECONDS
    #: Period of the starvation check (signal loss produces no packets,
    #: so the ladder cannot rely on sample-driven evaluation alone).
    check_interval: int = 10 * MILLISECONDS
    #: Minimum gap between *sample-driven* ladder evaluations.  Each
    #: evaluation grades the whole pool, so at 1000 backends the default
    #: evaluate-per-sample becomes quadratic in fleet size; large-fleet
    #: scenarios set a gap and lean on the periodic check.  0 keeps the
    #: original per-sample behaviour.
    min_evaluate_gap: int = 0

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if not 0.0 <= self.fallback_fraction < 1.0:
            raise ValueError("fallback_fraction must be in [0, 1)")
        if self.reentry_hold < 0:
            raise ValueError("reentry_hold must be >= 0")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.min_evaluate_gap < 0:
            raise ValueError("min_evaluate_gap must be >= 0")


@dataclass
class ModeTransition:
    """Telemetry event: one ladder transition."""

    time: int
    from_mode: ControllerMode
    to_mode: ControllerMode
    reason: str
    #: Backend → grade name at the moment of transition.
    grades: Dict[str, str] = field(default_factory=dict)


class DegradationLadder:
    """Drives the controller's mode from per-backend signal quality.

    The ladder starts in ``HOLD``: until the loop has established a
    trustworthy signal on every backend, it has no business shifting
    weights.  ``evaluate(now)`` is called on every sample and on a
    periodic timer (starved signals produce no samples).
    """

    def __init__(
        self,
        pool: BackendPool,
        tracker: SignalQualityTracker,
        config: Optional[DegradationConfig] = None,
        controller: Optional[AlphaShiftController] = None,
    ):
        self.pool = pool
        self.tracker = tracker
        self.config = config or DegradationConfig()
        self.config.validate()
        self.controller = controller
        self.mode = ControllerMode.HOLD
        self.transitions: List[ModeTransition] = []
        #: (time, severity ordinal) — plots the ladder over time.
        self.mode_series = TimeSeries(name="controller_mode")
        self._candidate: Optional[ControllerMode] = None
        self._candidate_since = 0
        self._seeded = False
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Attach ladder instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics
        metrics.mode.set(_SEVERITY[self.mode])

    def evaluate(self, now: int) -> ControllerMode:
        """Re-grade the pool and walk the ladder; returns the mode."""
        if not self._seeded:
            self.mode_series.append(now, float(_SEVERITY[self.mode]))
            self._seeded = True
        target, reason, grades = self._target(now)
        current = self.mode
        if _SEVERITY[target] > _SEVERITY[current]:
            # Downgrade immediately: a distrusted signal must stop
            # driving decisions before the next sample lands.
            self._candidate = None
            self._transition(now, target, reason, grades)
        elif _SEVERITY[target] < _SEVERITY[current]:
            # Upgrade only after the better state persists (hysteresis).
            if self._candidate is not target:
                self._candidate = target
                self._candidate_since = now
            elif now - self._candidate_since >= self.config.reentry_hold:
                self._candidate = None
                self._transition(now, target, reason, grades)
        else:
            self._candidate = None
        return self.mode

    def entries(self, mode: ControllerMode) -> List[int]:
        """Times at which the ladder entered ``mode``."""
        return [t.time for t in self.transitions if t.to_mode is mode]

    # ------------------------------------------------------------------

    def _target(
        self, now: int
    ) -> Tuple[ControllerMode, str, Dict[str, str]]:
        names = self.pool.names()
        grades = {name: self.tracker.grade(name, now) for name in names}
        rendered = {name: grade.value for name, grade in grades.items()}
        if not names:
            return ControllerMode.FALLBACK, "empty pool", rendered
        usable = [n for n, g in grades.items() if g is not SignalGrade.INVALID]
        if len(usable) / len(names) <= self.config.fallback_fraction:
            reason = "signal collapse: %d/%d backends usable" % (
                len(usable),
                len(names),
            )
            return ControllerMode.FALLBACK, reason, rendered
        distrusted = sorted(
            n for n, g in grades.items() if g is not SignalGrade.FRESH
        )
        if distrusted:
            reason = "stale/starved signal on %s" % ", ".join(distrusted)
            return ControllerMode.HOLD, reason, rendered
        return (
            ControllerMode.FEEDBACK,
            "signal fresh on all %d backends" % len(names),
            rendered,
        )

    def _transition(
        self,
        now: int,
        to_mode: ControllerMode,
        reason: str,
        grades: Dict[str, str],
    ) -> None:
        from_mode = self.mode
        self.mode = to_mode
        self.transitions.append(
            ModeTransition(
                time=now,
                from_mode=from_mode,
                to_mode=to_mode,
                reason=reason,
                grades=grades,
            )
        )
        self.mode_series.append(now, float(_SEVERITY[to_mode]))
        if self._metrics is not None:
            self._metrics.transitions.labels(to_mode=to_mode.value).inc()
            self._metrics.mode.set(_SEVERITY[to_mode])
        if to_mode is ControllerMode.FALLBACK:
            self._relax_to_uniform(now, reason)
        elif from_mode is ControllerMode.FALLBACK and self.controller is not None:
            # The next executed shift is the post-fallback rebalance —
            # tag it so reaction benches can tell it from a normal pass.
            self.controller.pending_reason = "post-fallback-rebalance"

    def _relax_to_uniform(self, now: int, reason: str) -> None:
        """Fallback posture: stop differentiating, let health gate.

        Weights return to uniform (preserving total), which reduces the
        routing plane to plain health-gated Maglev.  Recorded as a
        ``mode-change`` shift so weight timelines stay complete.
        """
        weights = self.pool.weights()
        if not weights:
            return
        total = sum(weights.values())
        uniform = {name: total / len(weights) for name in weights}
        self.pool.set_weights(uniform)
        if self.controller is not None:
            self.controller.record_shift(
                ShiftEvent(
                    time=now,
                    from_backend="*",
                    worst_estimate=0.0,
                    best_estimate=0.0,
                    weights_after=dict(uniform),
                    reason="mode-change",
                )
            )
