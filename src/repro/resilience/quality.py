"""Per-backend signal-quality tracking.

The estimator tells the controller *what* a backend's latency looks
like; this module tells it *whether that number can be trusted*.  Each
backend's ``T_LB`` sample stream is graded by age and volume:

* ``FRESH``   — recent samples at a usable rate; act on the estimate.
* ``STALE``   — the last sample is older than ``stale_after`` (or the
  backend never produced ``min_samples``); the estimate still describes
  *something*, but confidence is decaying — hold, don't shift.
* ``INVALID`` — older than ``invalid_after``; the estimate describes a
  backend state that no longer exists.  Exclude it from ranking
  entirely.

Staleness is the interesting failure mode because it is *silent*: a
crashed or drained backend produces no packets, so the measurement
plane sees nothing — no error, no timeout, just an estimate that stops
moving.  Grading by sample age converts that silence into an explicit,
inspectable state.

The tracker also keeps windowed rate and dispersion metrics.  These do
not drive the grade (age is the load-bearing signal and the least
flappy); they feed reports and benches so a human can see *why* a
signal was distrusted.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.units import MILLISECONDS


class SignalGrade(enum.Enum):
    """Trust level of one backend's latency signal."""

    FRESH = "fresh"
    STALE = "stale"
    INVALID = "invalid"


@dataclass
class SignalQualityConfig:
    """Staleness policy tunables.

    Defaults are sized for the reproduction's traffic rates (hundreds
    of samples per backend per second): a healthy backend refreshes its
    signal every few ms, so 50 ms of silence is already anomalous and
    200 ms means the estimate describes a dead regime.
    """

    #: Sliding window over which rate/dispersion are computed.
    window: int = 100 * MILLISECONDS
    #: Sample age beyond which the signal is stale (hold, don't shift).
    stale_after: int = 50 * MILLISECONDS
    #: Sample age beyond which the estimate is unusable.
    invalid_after: int = 200 * MILLISECONDS
    #: Confidence decay constant once past ``stale_after``.
    decay_tau: int = 100 * MILLISECONDS
    #: A backend that never produced this many samples is not yet fresh.
    min_samples: int = 3

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if min(self.window, self.stale_after, self.decay_tau) <= 0:
            raise ValueError("signal-quality durations must be positive")
        if self.invalid_after <= self.stale_after:
            raise ValueError("invalid_after must exceed stale_after")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass
class SignalQuality:
    """Snapshot of one backend's signal quality at a point in time."""

    backend: str
    grade: SignalGrade
    age: int                 # ns since the last sample (or registration)
    samples: int             # lifetime sample count
    rate_hz: float           # samples/s over the sliding window
    dispersion: float        # coefficient of variation over the window
    confidence: float        # 1.0 fresh → 0.0 invalid
    last_sample_at: int


class _Signal:
    __slots__ = ("recent", "samples", "last_sample_at")

    def __init__(self, born_at: int):
        self.recent: Deque[Tuple[int, float]] = deque()
        self.samples = 0
        # Registration anchors the age clock: a backend that has never
        # produced a sample ages from when it *should* have started,
        # not from t=0.
        self.last_sample_at = born_at


class SignalQualityTracker:
    """Grades every backend's ``T_LB`` stream by age, rate, dispersion."""

    def __init__(self, config: Optional[SignalQualityConfig] = None):
        self.config = config or SignalQualityConfig()
        self.config.validate()
        self._signals: Dict[str, _Signal] = {}

    def register(self, backend: str, now: int) -> None:
        """Start the age clock for a backend before its first sample."""
        if backend not in self._signals:
            self._signals[backend] = _Signal(now)

    def observe(self, backend: str, now: int, value: float) -> None:
        """Fold one ``T_LB`` sample into the backend's quality state."""
        signal = self._signals.get(backend)
        if signal is None:
            signal = _Signal(now)
            self._signals[backend] = signal
        signal.recent.append((now, float(value)))
        signal.samples += 1
        signal.last_sample_at = now
        self._prune(signal, now)

    def forget(self, backend: str) -> None:
        """Drop a backend's state (pool churn)."""
        self._signals.pop(backend, None)

    def backends(self) -> List[str]:
        """Tracked backend names, sorted."""
        return sorted(self._signals)

    # ------------------------------------------------------------------

    def grade(self, backend: str, now: int) -> SignalGrade:
        """Trust level of ``backend``'s signal at time ``now``."""
        signal = self._signals.get(backend)
        if signal is None:
            return SignalGrade.INVALID
        age = now - signal.last_sample_at
        if age >= self.config.invalid_after:
            return SignalGrade.INVALID
        if age >= self.config.stale_after or signal.samples < self.config.min_samples:
            return SignalGrade.STALE
        return SignalGrade.FRESH

    def confidence(self, backend: str, now: int) -> float:
        """1.0 while fresh, exponentially decaying to 0.0 at invalid."""
        signal = self._signals.get(backend)
        if signal is None:
            return 0.0
        age = now - signal.last_sample_at
        if age >= self.config.invalid_after:
            return 0.0
        if age <= self.config.stale_after:
            return 1.0
        return math.exp(-(age - self.config.stale_after) / self.config.decay_tau)

    def quality(self, backend: str, now: int) -> SignalQuality:
        """Full quality snapshot for one backend."""
        signal = self._signals.get(backend)
        if signal is None:
            return SignalQuality(
                backend=backend,
                grade=SignalGrade.INVALID,
                age=now,
                samples=0,
                rate_hz=0.0,
                dispersion=0.0,
                confidence=0.0,
                last_sample_at=0,
            )
        self._prune(signal, now)
        values = [v for _, v in signal.recent]
        rate = len(values) / (self.config.window / 1e9)
        return SignalQuality(
            backend=backend,
            grade=self.grade(backend, now),
            age=now - signal.last_sample_at,
            samples=signal.samples,
            rate_hz=rate,
            dispersion=_coefficient_of_variation(values),
            confidence=self.confidence(backend, now),
            last_sample_at=signal.last_sample_at,
        )

    def snapshot(self, now: int) -> Dict[str, SignalQuality]:
        """Quality snapshots for every tracked backend."""
        return {name: self.quality(name, now) for name in self.backends()}

    # ------------------------------------------------------------------

    def _prune(self, signal: _Signal, now: int) -> None:
        horizon = now - self.config.window
        recent = signal.recent
        while recent and recent[0][0] < horizon:
            recent.popleft()


def _coefficient_of_variation(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean
