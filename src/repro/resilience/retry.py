"""The client-side retry plane: deadlines, backoff, and a retry budget.

Fault injection turns slow backends into *silent* backends, and a
naive closed-loop client answers silence with synchronized retries —
the retry storm that converts one backend's failure into pool-wide
overload.  Three standard mechanisms bound that:

* **Per-request deadlines** — a request unanswered after ``deadline``
  ns is abandoned (its connection is torn down, memtier-style), so a
  dead backend costs one deadline, not a stalled run.
* **Exponential backoff + jitter** — the k-th retry of a request waits
  ``base_backoff · multiplier^(k-1)`` (capped at ``max_backoff``) plus
  a jitter fraction, de-synchronizing clients that failed together.
* **Token-bucket retry budget** — Finagle-style: every *first* attempt
  deposits ``budget_ratio`` tokens (capped), every retry withdraws a
  whole token.  Total retries can never exceed
  ``budget_initial + budget_ratio × first_attempts`` — an arithmetic
  bound, not a tuning hope.

The plane is inert by default (``RetryConfig()`` in a scenario with
resilience disabled adds no timers and no RNG draws), so fault-free
runs are byte-identical with and without it compiled in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.units import MILLISECONDS


@dataclass
class RetryConfig:
    """Client retry tunables."""

    #: Per-request deadline.  Generous relative to healthy latencies so
    #: the plane is inert when nothing is wrong (fault-free p95 is
    #: sub-millisecond; 50 ms of silence means the backend is gone).
    deadline: int = 50 * MILLISECONDS
    #: Total attempts per request, including the first.
    max_attempts: int = 3
    base_backoff: int = 1 * MILLISECONDS
    backoff_multiplier: float = 2.0
    max_backoff: int = 32 * MILLISECONDS
    #: Jitter fraction: each backoff is stretched by up to this much.
    jitter: float = 0.5
    #: Tokens deposited per first attempt (Finagle's retryBudget ratio).
    budget_ratio: float = 0.1
    #: Tokens available before any traffic (cold-start allowance).
    budget_initial: float = 10.0
    #: Bucket capacity.
    budget_cap: float = 100.0

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ValueError("need 0 <= base_backoff <= max_backoff")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.jitter < 0.0:
            raise ValueError("jitter must be >= 0")
        if self.budget_ratio < 0.0 or self.budget_initial < 0.0:
            raise ValueError("budget parameters must be >= 0")
        if self.budget_cap < self.budget_initial:
            raise ValueError("budget_cap must be >= budget_initial")


@dataclass
class RetryStats:
    """Counters for the acceptance bound and reports."""

    first_attempts: int = 0
    retries: int = 0
    deadline_expiries: int = 0
    budget_denied: int = 0
    attempts_exhausted: int = 0
    aborted_connections: int = 0

    @property
    def abandoned(self) -> int:
        """Requests given up on (no retry followed the failure)."""
        return self.budget_denied + self.attempts_exhausted


class RetryBudget:
    """Token bucket bounding total retries against total traffic."""

    def __init__(self, config: RetryConfig):
        self.config = config
        self.tokens = float(config.budget_initial)

    def deposit(self) -> None:
        """Credit one first attempt."""
        self.tokens = min(
            self.config.budget_cap, self.tokens + self.config.budget_ratio
        )

    def withdraw(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def bound(self, first_attempts: int) -> float:
        """The arithmetic ceiling on retries after ``first_attempts``."""
        return self.config.budget_initial + self.config.budget_ratio * first_attempts


def backoff_delay(config: RetryConfig, retry_index: int, rng: random.Random) -> int:
    """Delay before the ``retry_index``-th retry (1-based), jittered."""
    if retry_index < 1:
        raise ValueError("retry_index is 1-based")
    base = config.base_backoff * config.backoff_multiplier ** (retry_index - 1)
    base = min(float(config.max_backoff), base)
    return int(base + rng.random() * config.jitter * base)
