"""Signal-integrity guardrails for the feedback loop — the resilience plane.

The paper's controller steers on a *passive, in-band* latency signal.
Under DSR that signal can silently starve (an idle backend emits no
causally-triggered packets), go stale, or be poisoned by loss — and a
controller that acts on an arbitrarily old estimate turns a partial
failure into a routing failure.  This package threads one invariant
through the stack: **never shift on a signal you don't trust**.

* :mod:`~repro.resilience.quality` — per-backend signal-quality
  tracking (sample age, rate, dispersion) with a staleness policy that
  decays confidence and eventually invalidates estimates.
* :mod:`~repro.resilience.ladder` — the controller degradation ladder
  ``FEEDBACK → HOLD → FALLBACK`` with hysteresis on re-entry; every
  mode transition is a telemetry event.
* :mod:`~repro.resilience.breaker` — per-backend circuit breakers
  (closed/open/half-open with recovery probing) gating the LB's
  new-flow routing.
* :mod:`~repro.resilience.retry` — the client-side retry plane:
  per-request deadlines, exponential backoff + jitter, and a
  token-bucket retry budget that bounds retry storms.
* :mod:`~repro.resilience.config` — :class:`ResilienceConfig`, the
  aggregate block scenarios carry (``ScenarioConfig.resilience``).
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.config import ResilienceConfig
from repro.resilience.ladder import (
    ControllerMode,
    DegradationConfig,
    DegradationLadder,
    ModeTransition,
)
from repro.resilience.quality import (
    SignalGrade,
    SignalQuality,
    SignalQualityConfig,
    SignalQualityTracker,
)
from repro.resilience.retry import RetryBudget, RetryConfig, RetryStats, backoff_delay

__all__ = [
    "SignalGrade",
    "SignalQuality",
    "SignalQualityConfig",
    "SignalQualityTracker",
    "ControllerMode",
    "DegradationConfig",
    "DegradationLadder",
    "ModeTransition",
    "BreakerState",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "BreakerBoard",
    "RetryConfig",
    "RetryStats",
    "RetryBudget",
    "backoff_delay",
    "ResilienceConfig",
]
