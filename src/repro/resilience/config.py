"""The aggregate resilience block scenarios carry.

``ScenarioConfig.resilience`` holds one :class:`ResilienceConfig`;
``enabled=False`` (the default) makes the whole plane structurally
absent — no tracker, no ladder, no breakers, no retry timers — so
existing scenarios run byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.resilience.breaker import BreakerConfig
from repro.resilience.ladder import DegradationConfig
from repro.resilience.quality import SignalQualityConfig
from repro.resilience.retry import RetryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lb → resilience)
    from repro.lb.health import HealthCheckConfig


@dataclass
class ResilienceConfig:
    """Everything the resilience plane needs, in one block."""

    enabled: bool = False
    signal: SignalQualityConfig = field(default_factory=SignalQualityConfig)
    ladder: DegradationConfig = field(default_factory=DegradationConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)
    #: Run an active health checker from a prober host colocated with
    #: the LB; its probe outcomes feed the circuit breakers.
    health_checks: bool = False
    #: Prober tunables; None means :class:`~repro.lb.health.HealthCheckConfig`
    #: defaults (declared lazily to keep this package free of lb imports).
    health: Optional["HealthCheckConfig"] = None

    def validate(self) -> None:
        """Raise on malformed sub-blocks."""
        self.signal.validate()
        self.ladder.validate()
        self.breaker.validate()
        self.retry.validate()
        if self.health is not None:
            self.health.validate()
