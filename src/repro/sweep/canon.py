"""Canonical serialization and content-addressing of experiment configs.

The sweep cache keys every point by a hash of *what would be simulated*:
the runner function plus its full config payload.  Two configs that
construct equal objects — regardless of dict insertion order, dataclass
vs keyword construction, or which process serializes them — must hash
identically, and any semantic change (a nested fault spec, a transport
knob, a seed) must change the hash.

``canonicalize`` therefore reduces a payload to a JSON tree with sorted
keys and explicit type tags:

* dataclasses → ``{"__type__": qualname, field: value, ...}`` (declared
  fields only, so two instances compare by content);
* enums → ``{"__enum__": ClassName, "value": ...}``;
* classes and functions (e.g. ``ack_policy_factory=ImmediateAck``) →
  ``{"__ref__": "module.QualName"}`` — identity by *name*, which is what
  a worker process resolves on import;
* plain objects (service-time models, workload generators) → their
  ``vars()``, sorted — these are parameter holders whose attributes
  fully determine behaviour.

Unsupported values (open files, RNG instances, lambdas) raise
:class:`~repro.errors.ConfigError`: a config that cannot be addressed
cannot be cached or shipped to a worker, and should fail loudly.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any

from repro.errors import ConfigError


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable tree."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            return {"__float__": repr(obj)}
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonicalize(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tree = {"__type__": _qualname(type(obj))}
        for field in dataclasses.fields(obj):
            tree[field.name] = canonicalize(getattr(obj, field.name))
        return tree
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, dict):
        tree = {}
        for key in sorted(obj, key=str):
            if not isinstance(key, (str, int)):
                raise ConfigError(
                    "cannot canonicalize dict key %r (%s)" % (key, type(key).__name__)
                )
            tree[str(key)] = canonicalize(obj[key])
        return tree
    if isinstance(obj, type) or callable(obj):
        qualname = getattr(obj, "__qualname__", "")
        if not qualname or "<lambda>" in qualname or "<locals>" in qualname:
            raise ConfigError(
                "cannot canonicalize %r: only module-level functions/classes "
                "are addressable" % (obj,)
            )
        return {"__ref__": _qualname(obj)}
    if hasattr(obj, "__dict__"):
        tree = {"__type__": _qualname(type(obj))}
        for key in sorted(vars(obj)):
            tree[key] = canonicalize(vars(obj)[key])
        return tree
    raise ConfigError(
        "cannot canonicalize %r (%s)" % (obj, type(obj).__name__)
    )


def canonical_json(obj: Any) -> str:
    """Compact, key-sorted JSON of :func:`canonicalize`'s tree."""
    return json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def config_key(obj: Any) -> str:
    """Content hash (hex) addressing ``obj`` in a :class:`ResultStore`."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()


def _qualname(obj: Any) -> str:
    module = getattr(obj, "__module__", "")
    name = getattr(obj, "__qualname__", type(obj).__name__)
    return "%s.%s" % (module, name) if module else name
