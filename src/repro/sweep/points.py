"""Scenario-level sweep entry points.

:func:`run_sweep` is the orchestration verb: expand a
:class:`~repro.sweep.spec.SweepSpec` into points and push them through
the executor with a scenario runner.  :func:`simulate_point` is the
default runner — one :func:`~repro.harness.runner.run_scenario` call
distilled into a flat, JSON-serializable summary row (what the
:class:`~repro.sweep.store.ResultStore` caches and the CLI tabulates).

Rows carry raw nanosecond/count values, not formatted strings, so they
are byte-stable across processes and reusable by downstream analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.harness.config import ScenarioConfig
from repro.harness.runner import run_scenario
from repro.sweep.executor import Outcome, SweepReport, run_tasks, task
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore
from repro.telemetry.quantiles import exact_quantile


def simulate_point(config: ScenarioConfig) -> Dict[str, object]:
    """Run one scenario and summarize it as a flat row."""
    result = run_scenario(config)
    values = result.latencies(start=config.warmup or None)
    queue_drops, loss_drops = result.drop_counts()
    row: Dict[str, object] = {
        "seed": config.seed,
        "policy": config.policy.value,
        "requests": len(result.records),
        "throughput_rps": round(result.throughput_rps(), 3),
        "p50_ms": _ms(exact_quantile(values, 0.50)) if values else None,
        "p95_ms": _ms(exact_quantile(values, 0.95)) if values else None,
        "p99_ms": _ms(exact_quantile(values, 0.99)) if values else None,
        "shifts": len(result.shift_times()),
        "queue_drops": queue_drops,
        "loss_drops": loss_drops,
        "wall_events": result.wall_events,
        "per_server": result.per_server_counts(),
    }
    return row


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = 2,
    progress: Optional[Callable[[Outcome, int, int], None]] = None,
    runner: Callable[[ScenarioConfig], Dict[str, object]] = simulate_point,
) -> SweepReport:
    """Expand ``spec`` and execute every point through the executor."""
    tasks = [
        task(runner, point.config, label=point.label)
        for point in spec.expand()
    ]
    return run_tasks(
        tasks,
        jobs=jobs,
        store=store,
        use_cache=use_cache,
        retries=retries,
        progress=progress,
    )


def _ms(value: float) -> float:
    return round(value / 1e6, 6)
