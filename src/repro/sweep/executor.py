"""Parallel sweep execution with caching and crash recovery.

The executor runs *tasks*: a module-level runner function plus a
picklable config payload, content-addressed by the hash of both (see
:mod:`repro.sweep.canon`).  Semantics:

* **Caching** — a task whose key is already in the
  :class:`~repro.sweep.store.ResultStore` is served from disk without
  simulating; identical tasks inside one submission are deduplicated
  and simulated once.
* **Fan-out** — cache misses run on a ``ProcessPoolExecutor`` with
  ``jobs`` bounded workers (``jobs <= 1`` runs inline, no processes).
* **Determinism** — a task's row is a pure function of its payload.
  Workers re-seed the *global* ``random`` module per task from the task
  key (:func:`repro.sim.random.derive_seed`), so even code that
  incorrectly reached for ``random.random()`` could not couple points
  through process reuse or fork-inherited RNG state.  ``--jobs 1`` and
  ``--jobs N`` therefore produce byte-identical rows.
* **Crash recovery** — a worker that dies (OOM kill, hard crash) breaks
  the pool; the executor rebuilds it and retries the unfinished tasks,
  up to ``retries`` extra attempts per task, then raises
  :class:`~repro.errors.SweepError`.  Ordinary exceptions retry the
  failing task alone.

Results come back as a :class:`SweepReport` preserving submission
order, regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SweepError
from repro.sim.random import derive_seed
from repro.sweep.canon import canonicalize, config_key
from repro.sweep.store import ResultStore


@dataclass
class Task:
    """One unit of work: ``fn(payload) -> row`` plus its cache identity."""

    key: str
    label: str
    fn: Callable
    payload: object
    #: Canonical (runner, payload) tree, persisted for provenance.
    canonical: object = None


def task(fn: Callable, payload: object, label: str = "") -> Task:
    """Build a content-addressed task for ``fn(payload)``."""
    tree = canonicalize([fn, payload])
    return Task(
        key=config_key(tree),
        label=label,
        fn=fn,
        payload=payload,
        canonical=tree,
    )


@dataclass
class Outcome:
    """What happened to one submitted task."""

    key: str
    label: str
    row: Dict[str, object]
    cached: bool
    elapsed_s: float
    attempts: int


@dataclass
class SweepReport:
    """All outcomes, in submission order."""

    outcomes: List[Outcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Summary rows, in submission order."""
        return [outcome.row for outcome in self.outcomes]

    @property
    def hits(self) -> int:
        """Points served without simulating."""
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def simulated(self) -> int:
        """Points actually executed."""
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    def summary(self, name: str = "sweep") -> str:
        """One-line accounting (the CI smoke greps this format)."""
        return "sweep %s: %d points, %d cache hits, %d simulated, wall %.2fs" % (
            name,
            len(self.outcomes),
            self.hits,
            self.simulated,
            self.wall_s,
        )


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = 2,
    progress: Optional[Callable[[Outcome, int, int], None]] = None,
) -> SweepReport:
    """Execute tasks with caching, bounded fan-out, and retry."""
    started = time.perf_counter()
    total = len(tasks)
    outcomes: List[Optional[Outcome]] = [None] * total
    done = [0]

    def resolve(index: int, row, cached: bool, elapsed: float, attempts: int):
        item = tasks[index]
        outcome = Outcome(
            key=item.key,
            label=item.label,
            row=row,
            cached=cached,
            elapsed_s=elapsed,
            attempts=attempts,
        )
        outcomes[index] = outcome
        done[0] += 1
        if progress is not None:
            progress(outcome, done[0], total)

    # Cache pass + in-flight dedup: identical keys simulate once.
    owners: Dict[str, int] = {}
    duplicates: List[int] = []
    pending: List[int] = []
    for index, item in enumerate(tasks):
        if use_cache and store is not None:
            row = store.get(item.key)
            if row is not None:
                resolve(index, row, cached=True, elapsed=0.0, attempts=0)
                continue
        if item.key in owners:
            duplicates.append(index)
        else:
            owners[item.key] = index
            pending.append(index)

    def finish(index: int, row, elapsed: float, attempts: int):
        item = tasks[index]
        if store is not None:
            store.put(
                item.key,
                row,
                label=item.label,
                config=item.canonical,
                elapsed_s=round(elapsed, 6),
            )
        resolve(index, row, cached=False, elapsed=elapsed, attempts=attempts)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            _run_serial(tasks, pending, retries, finish)
        else:
            _run_parallel(tasks, pending, jobs, retries, finish)

    for index in duplicates:
        owner = outcomes[owners[tasks[index].key]]
        resolve(index, owner.row, cached=True, elapsed=0.0, attempts=0)

    return SweepReport(
        outcomes=list(outcomes), wall_s=time.perf_counter() - started
    )


def print_progress(outcome: Outcome, done: int, total: int) -> None:
    """Default live progress line, one per resolved point (stderr)."""
    sys.stderr.write(
        "[%d/%d] %-3s %s (%.2fs)\n"
        % (
            done,
            total,
            "hit" if outcome.cached else "run",
            outcome.label or outcome.key[:12],
            outcome.elapsed_s,
        )
    )
    sys.stderr.flush()


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------


def _invoke(fn: Callable, payload: object, key: str):
    """Worker entry: deterministic global-RNG state, timed run."""
    random.seed(derive_seed("sweep.worker", key))
    started = time.perf_counter()
    row = fn(payload)
    if not isinstance(row, dict):
        raise SweepError(
            "sweep runner %r returned %r; expected a dict row"
            % (getattr(fn, "__name__", fn), type(row).__name__)
        )
    return row, time.perf_counter() - started


def _run_serial(tasks, pending, retries, finish):
    for index in pending:
        item = tasks[index]
        attempts = 0
        while True:
            attempts += 1
            try:
                row, elapsed = _invoke(item.fn, item.payload, item.key)
            except SweepError:
                raise
            except Exception as exc:
                if attempts > retries:
                    raise SweepError(
                        "sweep point %r failed after %d attempts: %s"
                        % (item.label or item.key[:12], attempts, exc)
                    ) from exc
                continue
            finish(index, row, elapsed, attempts)
            break


def _mp_context():
    # fork is the cheap start method and inherits sys.path; fall back to
    # the platform default where it does not exist (Windows).
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_parallel(tasks, pending, jobs, retries, finish):
    attempts = {index: 0 for index in pending}
    queue = list(pending)
    while queue:
        batch, queue = queue, []
        finished = set()
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(batch)), mp_context=_mp_context()
            ) as pool:
                futures = {}
                for index in batch:
                    item = tasks[index]
                    attempts[index] += 1
                    future = pool.submit(_invoke, item.fn, item.payload, item.key)
                    futures[future] = index
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        row, elapsed = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        if attempts[index] > retries:
                            raise SweepError(
                                "sweep point %r failed after %d attempts: %s"
                                % (
                                    tasks[index].label or tasks[index].key[:12],
                                    attempts[index],
                                    exc,
                                )
                            ) from exc
                        queue.append(index)
                    else:
                        finish(index, row, elapsed, attempts[index])
                        finished.add(index)
        except BrokenProcessPool as exc:
            # A worker died mid-task; we cannot tell which task killed it,
            # so every unfinished task of this batch is retried.
            for index in batch:
                if index in finished or index in queue:
                    continue
                if attempts[index] > retries:
                    raise SweepError(
                        "worker process died running sweep point %r "
                        "(%d attempts)"
                        % (tasks[index].label or tasks[index].key[:12], attempts[index])
                    ) from exc
                queue.append(index)
