"""Declarative sweep specifications.

A :class:`SweepSpec` names a family of :class:`ScenarioConfig` points:
a base config plus axes that vary fields of it.  Three expansion forms
compose (explicit points × zipped axes × grid axes × seeds):

* ``grid`` — dotted field path → value list; axes combine as a
  cartesian product (``{"feedback.controller.alpha": [.05, .1],
  "seed": [1, 2]}`` is four points);
* ``zipped`` — dotted field path → value list; all zipped axes advance
  *together* (equal lengths required), like Python's ``zip``;
* ``points`` — explicit override dicts, for irregular families no grid
  expresses.

Paths address nested config fields (``feedback.controller.alpha``,
``network.client_lb_delay``, ``memtier.pipeline``); the named attribute
must already exist — a typo fails expansion, not silently sweeps
nothing.  Values may be given as strings for readability in spec files:
durations take time suffixes (``"250ms"``), ``policy`` takes a
:class:`PolicyName` value, and ``faults`` takes a list of chaos-plane
spec strings (see :mod:`repro.faults.parse`).

**Per-point seed derivation.**  Unless a point's overrides set ``seed``
explicitly (directly or via the ``seeds`` axis), each point's seed is
derived from the base seed and the point's canonical overrides via
:func:`repro.sim.random.derive_seed`.  Distinct points therefore get
decorrelated random streams by default, and the same point always gets
the same seed — in any process, in any execution order.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.faults.model import FaultSpec
from repro.faults.parse import parse_faults
from repro.harness.config import PolicyName, ScenarioConfig
from repro.sim.random import derive_seed
from repro.sweep.canon import canonical_json, config_key


@dataclass
class SweepPoint:
    """One expanded point: resolved config plus its identity."""

    index: int
    overrides: Dict[str, object]
    config: ScenarioConfig
    label: str

    def key(self, runner: object) -> str:
        """Content hash of (runner, config) — the cache address."""
        return config_key([runner, self.config])


@dataclass
class SweepSpec:
    """A base config and the axes that vary it."""

    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    grid: Dict[str, Sequence[object]] = field(default_factory=dict)
    zipped: Dict[str, Sequence[object]] = field(default_factory=dict)
    points: List[Dict[str, object]] = field(default_factory=list)
    #: Replicate every point once per seed (an outer axis).
    seeds: Optional[Sequence[int]] = None
    name: str = "sweep"
    #: Derive a per-point seed from the overrides when none is set.
    derive_seeds: bool = True

    def expand(self) -> List[SweepPoint]:
        """All points, in deterministic order; every config validated."""
        rows: List[Dict[str, object]] = [dict(p) for p in self.points] or [{}]
        if self.zipped:
            lengths = {len(values) for values in self.zipped.values()}
            if len(lengths) != 1:
                raise ConfigError(
                    "zipped axes must have equal lengths, got %s"
                    % sorted(lengths)
                )
            count = lengths.pop()
            if count == 0:
                raise ConfigError("zipped axes must be non-empty")
            zip_rows = [
                {path: self.zipped[path][i] for path in sorted(self.zipped)}
                for i in range(count)
            ]
            rows = [{**row, **z} for row in rows for z in zip_rows]
        for path in sorted(self.grid):
            values = list(self.grid[path])
            if not values:
                raise ConfigError("grid axis %r is empty" % path)
            rows = [{**row, path: value} for row in rows for value in values]
        if self.seeds is not None:
            seeds = list(self.seeds)
            if not seeds:
                raise ConfigError("seeds axis is empty")
            rows = [{**row, "seed": seed} for row in rows for seed in seeds]

        points = []
        for index, overrides in enumerate(rows):
            config = apply_overrides(self.base, overrides)
            if "seed" not in overrides and overrides and self.derive_seeds:
                config.seed = derive_seed(
                    self.base.seed, "sweep-point", canonical_json(overrides)
                )
            config.validate()
            points.append(
                SweepPoint(
                    index=index,
                    overrides=overrides,
                    config=config,
                    label=_label(overrides),
                )
            )
        return points

    # ------------------------------------------------------------------
    # Spec files
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        """Build a spec from a parsed JSON document."""
        known = {"name", "base", "grid", "zip", "points", "seeds"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                "unknown sweep spec keys: %s (expected %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known)))
            )
        base_overrides = data.get("base", {})
        if not isinstance(base_overrides, dict):
            raise ConfigError("sweep spec 'base' must be an object")
        spec = cls(
            base=apply_overrides(ScenarioConfig(), base_overrides),
            grid=dict(data.get("grid", {})),
            zipped=dict(data.get("zip", {})),
            points=[dict(p) for p in data.get("points", [])],
            seeds=data.get("seeds"),
            name=str(data.get("name", "sweep")),
        )
        return spec


def load_spec(path: str) -> SweepSpec:
    """Read a JSON sweep spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ConfigError("cannot read sweep spec %s: %s" % (path, exc)) from exc
    except ValueError as exc:
        raise ConfigError("sweep spec %s is not valid JSON: %s" % (path, exc)) from exc
    if not isinstance(data, dict):
        raise ConfigError("sweep spec %s must be a JSON object" % path)
    return SweepSpec.from_dict(data)


def apply_overrides(
    base: ScenarioConfig, overrides: Dict[str, object]
) -> ScenarioConfig:
    """Deep-copy ``base`` and assign every dotted-path override.

    ``duration`` is applied first so time-relative values (fault spec
    strings expanded against the run length) see the final horizon.
    """
    config = copy.deepcopy(base)
    ordered = sorted(overrides, key=lambda path: (path != "duration", path))
    for path in ordered:
        _assign(config, path, overrides[path])
    return config


def _assign(config: ScenarioConfig, path: str, value: object) -> None:
    target = config
    parts = path.split(".")
    for part in parts[:-1]:
        if not hasattr(target, part):
            raise ConfigError(
                "sweep path %r: %r has no field %r"
                % (path, type(target).__name__, part)
            )
        target = getattr(target, part)
    leaf = parts[-1]
    if not hasattr(target, leaf):
        raise ConfigError(
            "sweep path %r: %r has no field %r"
            % (path, type(target).__name__, leaf)
        )
    setattr(target, leaf, _coerce(leaf, value, getattr(target, leaf), config))


def _coerce(
    leaf: str, value: object, current: object, config: ScenarioConfig
) -> object:
    """Interpret string forms against the field being assigned."""
    if leaf == "policy" and isinstance(value, str):
        try:
            return PolicyName(value)
        except ValueError:
            raise ConfigError(
                "unknown policy %r (expected one of %s)"
                % (value, ", ".join(p.value for p in PolicyName))
            ) from None
    if leaf == "faults":
        if not isinstance(value, (list, tuple)):
            raise ConfigError("faults override must be a list")
        faults: List[FaultSpec] = []
        for item in value:
            if isinstance(item, FaultSpec):
                faults.append(item)
            elif isinstance(item, str):
                faults.extend(parse_faults(item, config.duration))
            else:
                raise ConfigError(
                    "faults entries must be FaultSpec or spec strings, got %r"
                    % (item,)
                )
        return faults
    if isinstance(value, str) and isinstance(current, int) and not isinstance(
        current, bool
    ):
        return parse_scalar(value, want_time=True)
    return value


def parse_scalar(text: str, want_time: bool = False) -> object:
    """Parse one inline axis value: int, float, time suffix, or string."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered.endswith(("ns", "us", "ms", "s")):
        from repro.faults.parse import _parse_time

        try:
            return _parse_time(lowered)
        except ConfigError:
            pass
    if want_time:
        raise ConfigError("expected a number or time value, got %r" % text)
    return text


def parse_axis(text: str) -> Tuple[str, List[object]]:
    """``"path=v1,v2,..."`` → ``(path, values)`` for inline CLI axes."""
    path, sep, body = text.partition("=")
    path = path.strip()
    if not sep or not path or not body.strip():
        raise ConfigError(
            "axis %r is not of the form path=value[,value...]" % text
        )
    values = [parse_scalar(part) for part in body.split(",") if part.strip()]
    if not values:
        raise ConfigError("axis %r has no values" % text)
    return path, values


def _label(overrides: Dict[str, object]) -> str:
    if not overrides:
        return "base"
    parts = []
    for path in sorted(overrides):
        value = overrides[path]
        parts.append("%s=%s" % (path.rsplit(".", 1)[-1], _fmt(value)))
    return ",".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return "%g" % value
    if isinstance(value, (list, tuple)):
        return "[%d]" % len(value)
    if isinstance(value, PolicyName):
        return value.value
    return str(value)
