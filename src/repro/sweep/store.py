"""Content-addressed persistence of sweep results.

Layout under the store root::

    points/<key>.json    one record per completed point (the cache index)
    results.jsonl        append-only log of every completed simulation

``<key>`` is the content hash of (runner, config) — see
:mod:`repro.sweep.canon`.  A point record carries the summary ``row``
plus provenance (label, canonical config, elapsed wall time).  Lookup is
a single file read: a present, well-formed record is a cache hit; a
missing or corrupt one is a miss (corruption degrades to recomputation,
never to a wrong answer).  Point files are written atomically
(temp file + ``os.replace``), so a sweep killed mid-write resumes with
every *finished* point intact — interrupted sweeps restart where they
stopped.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterator, Optional


class ResultStore:
    """Filesystem-backed, content-addressed result cache."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self._points = self.root / "points"
        self._points.mkdir(parents=True, exist_ok=True)
        self._log = self.root / "results.jsonl"

    def _path(self, key: str) -> pathlib.Path:
        return self._points / ("%s.json" % key)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached summary row for ``key``, or None on a miss."""
        record = self.get_record(key)
        if record is None:
            return None
        row = record.get("row")
        return row if isinstance(row, dict) else None

    def get_record(self, key: str) -> Optional[Dict[str, object]]:
        """The full stored record (row + provenance), or None."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def put(
        self,
        key: str,
        row: Dict[str, object],
        label: str = "",
        config: Optional[object] = None,
        elapsed_s: Optional[float] = None,
    ) -> None:
        """Persist one completed point atomically and append to the log."""
        record = {
            "key": key,
            "label": label,
            "row": row,
            "config": config,
            "elapsed_s": elapsed_s,
        }
        # Keep row key order as produced (rows are built deterministically),
        # so cached and fresh rows print identical column orders.
        text = json.dumps(record)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        os.replace(tmp, path)
        with open(self._log, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Keys of every stored point."""
        for path in sorted(self._points.glob("*.json")):
            yield path.stem

    def clear(self) -> int:
        """Drop every cached point (the log is kept); returns the count."""
        dropped = 0
        for path in self._points.glob("*.json"):
            path.unlink()
            dropped += 1
        return dropped
