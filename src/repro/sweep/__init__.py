"""Sweep orchestration: parallel experiment fan-out with result caching.

The experiment plane's answer to "runs as fast as the hardware allows":
a declarative :class:`SweepSpec` (grid/zip/explicit-point expansion over
:class:`~repro.harness.config.ScenarioConfig` fields, per-point
deterministic seed derivation), a multiprocessing executor with bounded
workers and retry-on-worker-crash, and a content-addressed
:class:`ResultStore` so unchanged points are cache hits and interrupted
sweeps resume where they stopped.

* :mod:`~repro.sweep.spec` — sweep specifications and expansion.
* :mod:`~repro.sweep.canon` — canonical config serialization + hashing.
* :mod:`~repro.sweep.store` — JSONL-backed content-addressed results.
* :mod:`~repro.sweep.executor` — generic task fan-out (any module-level
  runner function; the ablation sweeps submit through this).
* :mod:`~repro.sweep.points` — the scenario-level default runner and
  :func:`run_sweep`.

Quickstart::

    from repro.harness import PolicyName, ScenarioConfig
    from repro.sweep import ResultStore, SweepSpec, run_sweep
    from repro import units

    spec = SweepSpec(
        base=ScenarioConfig(duration=units.seconds(1), policy=PolicyName.FEEDBACK),
        grid={"feedback.controller.alpha": [0.05, 0.1, 0.2], "seed": [1, 2]},
    )
    report = run_sweep(spec, jobs=4, store=ResultStore(".sweep-store"))
    print(report.summary(spec.name))   # rerun → all points are cache hits
"""

from repro.sweep.canon import canonical_json, canonicalize, config_key
from repro.sweep.executor import (
    Outcome,
    SweepReport,
    Task,
    print_progress,
    run_tasks,
    task,
)
from repro.sweep.points import run_sweep, simulate_point
from repro.sweep.spec import (
    SweepPoint,
    SweepSpec,
    apply_overrides,
    load_spec,
    parse_axis,
    parse_scalar,
)
from repro.sweep.store import ResultStore

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "apply_overrides",
    "load_spec",
    "parse_axis",
    "parse_scalar",
    "ResultStore",
    "Task",
    "task",
    "Outcome",
    "SweepReport",
    "run_tasks",
    "run_sweep",
    "simulate_point",
    "print_progress",
    "canonicalize",
    "canonical_json",
    "config_key",
]
