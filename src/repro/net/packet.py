"""The packet model.

Packets are TCP-segment-shaped: a flow 4-tuple, flags, 32-bit-style
sequence/ack numbers (we use unbounded ints — wraparound adds nothing to
the reproduction), a payload length, and *message boundaries*.

Message boundaries are how the byte-stream transport carries
application-message framing without simulating actual bytes: a boundary
``(end_offset, message)`` rides on the segment that contains the last
byte of the message, and the receiver delivers ``message`` to the
application once its cumulative in-order offset passes ``end_offset``.
Retransmissions re-carry boundaries; receivers de-duplicate by offset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, NamedTuple

from repro.net.addr import Endpoint, FlowKey

#: Bytes of header overhead charged to every packet (Ethernet+IP+TCP-ish).
HEADER_BYTES = 66


class TcpFlags(enum.IntFlag):
    """TCP-style control flags."""

    NONE = 0
    SYN = 1
    ACK = 2
    FIN = 4
    PSH = 8
    RST = 16


class MessageBoundary(NamedTuple):
    """End offset of an application message within the byte stream."""

    end_offset: int
    message: Any


_packet_counter = 0


def _next_packet_id() -> int:
    global _packet_counter
    _packet_counter += 1
    return _packet_counter


@dataclass
class Packet:
    """A simulated TCP segment.

    ``size_bytes`` (header + payload) is what links charge for
    serialization.  ``sent_at`` is stamped by the sender for tracing and
    ground-truth bookkeeping; the measurement plane at the LB must *not*
    read it (it only uses arrival times at the LB, as the paper requires).
    """

    src: Endpoint
    dst: Endpoint
    flags: TcpFlags = TcpFlags.NONE
    seq: int = 0
    ack: int = 0
    payload_len: int = 0
    boundaries: List[MessageBoundary] = field(default_factory=list)
    sent_at: int = 0
    packet_id: int = field(default_factory=_next_packet_id)
    retransmit: bool = False

    @property
    def size_bytes(self) -> int:
        """Wire size charged to links."""
        return HEADER_BYTES + self.payload_len

    @property
    def flow(self) -> FlowKey:
        """Directed 4-tuple of this packet."""
        return FlowKey.for_packet(self.src, self.dst)

    @property
    def is_syn(self) -> bool:
        """True for SYN (including SYN-ACK) segments."""
        return bool(self.flags & TcpFlags.SYN)

    @property
    def is_ack(self) -> bool:
        """True when the ACK flag is set."""
        return bool(self.flags & TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        """True for FIN segments."""
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        """True for RST segments."""
        return bool(self.flags & TcpFlags.RST)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload (SYN/FIN
        consume one sequence number, as in TCP)."""
        length = self.payload_len
        if self.flags & (TcpFlags.SYN | TcpFlags.FIN):
            length += 1
        return self.seq + length

    def describe(self) -> str:
        """Terse human-readable summary for traces."""
        names = []
        for flag in (TcpFlags.SYN, TcpFlags.ACK, TcpFlags.FIN, TcpFlags.PSH, TcpFlags.RST):
            if self.flags & flag:
                names.append(flag.name or "?")
        flag_str = "|".join(names) if names else "-"
        return "#%d %s %s seq=%d ack=%d len=%d" % (
            self.packet_id,
            self.flow,
            flag_str,
            self.seq,
            self.ack,
            self.payload_len,
        )
