"""The packet model: object view and slab storage.

Packets are TCP-segment-shaped: a flow 4-tuple, flags, 32-bit-style
sequence/ack numbers (we use unbounded ints — wraparound adds nothing to
the reproduction), a payload length, and *message boundaries*.

Message boundaries are how the byte-stream transport carries
application-message framing without simulating actual bytes: a boundary
``(end_offset, message)`` rides on the segment that contains the last
byte of the message, and the receiver delivers ``message`` to the
application once its cumulative in-order offset passes ``end_offset``.
Retransmissions re-carry boundaries; receivers de-duplicate by offset.

Two representations share this model:

* :class:`Packet` — a plain object, one per packet.  This is the API
  surface (tests, traces, reports construct and read these) and the
  wire format of *object mode* simulations.
* :class:`PacketSlab` — array-of-arrays storage for *slab mode*: every
  field lives in a flat parallel column and a packet is just an integer
  handle into them.  A free list recycles handles deterministically
  (LIFO), endpoints and flow keys are interned once per connection, and
  :meth:`PacketSlab.materialize` produces an independent :class:`Packet`
  snapshot for cold paths (packet traces, reports, campaign audits).

Flags are plain ints on the hot path — module-level ``FLAG_*`` constants
mirror the :class:`TcpFlags` enum, whose members compare and combine
equal to them (``TcpFlags.SYN == FLAG_SYN``).  The enum stays for
readable construction and API compatibility; per-packet flag tests use
int ``&`` directly, skipping enum ``__and__`` machinery.
"""

from __future__ import annotations

import enum
from typing import Any, List, NamedTuple, Optional, Sequence

from repro.net.addr import Endpoint, FlowKey

#: Bytes of header overhead charged to every packet (Ethernet+IP+TCP-ish).
HEADER_BYTES = 66

#: Int flag bits (hot-path mirrors of :class:`TcpFlags`).
FLAG_SYN = 1
FLAG_ACK = 2
FLAG_FIN = 4
FLAG_PSH = 8
FLAG_RST = 16
_SYN_OR_FIN = FLAG_SYN | FLAG_FIN


class TcpFlags(enum.IntFlag):
    """TCP-style control flags."""

    NONE = 0
    SYN = 1
    ACK = 2
    FIN = 4
    PSH = 8
    RST = 16


_FLAG_NAMES = (
    (FLAG_SYN, "SYN"),
    (FLAG_ACK, "ACK"),
    (FLAG_FIN, "FIN"),
    (FLAG_PSH, "PSH"),
    (FLAG_RST, "RST"),
)


def describe_flags(flags: int) -> str:
    """``SYN|ACK``-style rendering of an int flag word."""
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "-"


class MessageBoundary(NamedTuple):
    """End offset of an application message within the byte stream."""

    end_offset: int
    message: Any


_packet_counter = 0


def _next_packet_id() -> int:
    global _packet_counter
    _packet_counter += 1
    return _packet_counter


class Packet:
    """A simulated TCP segment (object view).

    ``size_bytes`` (header + payload) is what links charge for
    serialization.  ``sent_at`` is stamped by the sender for tracing and
    ground-truth bookkeeping; the measurement plane at the LB must *not*
    read it (it only uses arrival times at the LB, as the paper requires).

    ``flags`` is stored as a plain int (``TcpFlags`` values coerce on
    construction), so flag predicates cost one int ``&``.
    """

    __slots__ = (
        "src",
        "dst",
        "flags",
        "seq",
        "ack",
        "payload_len",
        "boundaries",
        "sent_at",
        "packet_id",
        "retransmit",
    )

    def __init__(
        self,
        src: Endpoint,
        dst: Endpoint,
        flags: int = 0,
        seq: int = 0,
        ack: int = 0,
        payload_len: int = 0,
        boundaries: Optional[List[MessageBoundary]] = None,
        sent_at: int = 0,
        packet_id: Optional[int] = None,
        retransmit: bool = False,
    ):
        self.src = src
        self.dst = dst
        self.flags = flags if type(flags) is int else int(flags)
        self.seq = seq
        self.ack = ack
        self.payload_len = payload_len
        self.boundaries = [] if boundaries is None else boundaries
        self.sent_at = sent_at
        self.packet_id = _next_packet_id() if packet_id is None else packet_id
        self.retransmit = retransmit

    @property
    def size_bytes(self) -> int:
        """Wire size charged to links."""
        return HEADER_BYTES + self.payload_len

    @property
    def flow(self) -> FlowKey:
        """Directed 4-tuple of this packet."""
        return FlowKey.for_packet(self.src, self.dst)

    @property
    def is_syn(self) -> bool:
        """True for SYN (including SYN-ACK) segments."""
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        """True when the ACK flag is set."""
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        """True for FIN segments."""
        return bool(self.flags & FLAG_FIN)

    @property
    def is_rst(self) -> bool:
        """True for RST segments."""
        return bool(self.flags & FLAG_RST)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload (SYN/FIN
        consume one sequence number, as in TCP)."""
        length = self.payload_len
        if self.flags & _SYN_OR_FIN:
            length += 1
        return self.seq + length

    def __repr__(self) -> str:
        return (
            "Packet(src=%r, dst=%r, flags=%r, seq=%r, ack=%r, payload_len=%r, "
            "boundaries=%r, sent_at=%r, packet_id=%r, retransmit=%r)"
            % (
                self.src,
                self.dst,
                self.flags,
                self.seq,
                self.ack,
                self.payload_len,
                self.boundaries,
                self.sent_at,
                self.packet_id,
                self.retransmit,
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.flags == other.flags
            and self.seq == other.seq
            and self.ack == other.ack
            and self.payload_len == other.payload_len
            and self.boundaries == other.boundaries
            and self.sent_at == other.sent_at
            and self.packet_id == other.packet_id
            and self.retransmit == other.retransmit
        )

    def describe(self) -> str:
        """Terse human-readable summary for traces."""
        return "#%d %s %s seq=%d ack=%d len=%d" % (
            self.packet_id,
            self.flow,
            describe_flags(self.flags),
            self.seq,
            self.ack,
            self.payload_len,
        )


class PacketSlab:
    """Array-structured packet storage addressed by integer handle.

    Every packet field is a flat parallel list; ``slab.seq[h]`` is the
    sequence number of handle ``h``.  Handles are recycled through a
    LIFO free list, so allocation order — and therefore handle values —
    is deterministic for a deterministic simulation.

    Endpoints and flow keys are *interned*: connections resolve their
    ``Endpoint``/:class:`FlowKey` objects to small ints once, and every
    packet carries ``src_i``/``dst_i``/``fid`` ints instead of object
    references.  ``flow(h)`` returns the real interned :class:`FlowKey`
    (a list index, no allocation), which is what routing policies hash —
    so backend selection is byte-identical to object mode.

    Ownership discipline: whoever holds a handle owns it.  ``Pipe.send``
    takes ownership (drops free the handle); delivery transfers it to
    the receiving node; a terminal host frees it after ingesting the
    fields.  Anything that must outlive the handle (trace records, out-
    of-order buffers) copies the fields — column cells are *replaced*,
    never mutated, on realloc, so a grabbed ``boundaries`` list ref
    stays valid after ``free``.
    """

    __slots__ = (
        "flags",
        "seq",
        "ack",
        "payload_len",
        "boundaries",
        "sent_at",
        "src_i",
        "dst_i",
        "fid",
        "packet_id",
        "retransmit",
        "_free",
        "_endpoints",
        "_ep_index",
        "ep_host",
        "_flows",
        "_flow_index",
    )

    def __init__(self) -> None:
        self.flags: List[int] = []
        self.seq: List[int] = []
        self.ack: List[int] = []
        self.payload_len: List[int] = []
        self.boundaries: List[Optional[List[MessageBoundary]]] = []
        self.sent_at: List[int] = []
        self.src_i: List[int] = []
        self.dst_i: List[int] = []
        self.fid: List[int] = []
        self.packet_id: List[int] = []
        self.retransmit: List[bool] = []
        self._free: List[int] = []
        self._endpoints: List[Endpoint] = []
        self._ep_index: dict = {}
        #: Host name per endpoint index (routing reads this per packet).
        self.ep_host: List[str] = []
        self._flows: List[FlowKey] = []
        self._flow_index: dict = {}

    # -- interning ------------------------------------------------------

    def intern_endpoint(self, endpoint: Endpoint) -> int:
        """Index of ``endpoint``, interning it on first sight."""
        idx = self._ep_index.get(endpoint)
        if idx is None:
            idx = len(self._endpoints)
            self._ep_index[endpoint] = idx
            self._endpoints.append(endpoint)
            self.ep_host.append(endpoint.host)
        return idx

    def endpoint(self, index: int) -> Endpoint:
        """The interned :class:`Endpoint` at ``index``."""
        return self._endpoints[index]

    def intern_flow(self, src_i: int, dst_i: int) -> int:
        """Flow id of the directed pair, interning its FlowKey once."""
        key = (src_i, dst_i)
        fid = self._flow_index.get(key)
        if fid is None:
            fid = len(self._flows)
            self._flow_index[key] = fid
            self._flows.append(
                FlowKey.for_packet(self._endpoints[src_i], self._endpoints[dst_i])
            )
        return fid

    def flow_key(self, fid: int) -> FlowKey:
        """The interned :class:`FlowKey` for flow id ``fid``."""
        return self._flows[fid]

    # -- allocation -----------------------------------------------------

    def alloc(
        self,
        src_i: int,
        dst_i: int,
        fid: int,
        flags: int,
        seq: int,
        ack: int,
        payload_len: int,
        boundaries: Optional[List[MessageBoundary]],
        sent_at: int,
        retransmit: bool = False,
    ) -> int:
        """Allocate a packet record; returns its handle.

        Draws from the same global packet-id counter as :class:`Packet`
        construction, so ids match object mode packet-for-packet.
        """
        global _packet_counter
        _packet_counter += 1
        free = self._free
        if free:
            h = free.pop()
            self.flags[h] = flags
            self.seq[h] = seq
            self.ack[h] = ack
            self.payload_len[h] = payload_len
            self.boundaries[h] = boundaries
            self.sent_at[h] = sent_at
            self.src_i[h] = src_i
            self.dst_i[h] = dst_i
            self.fid[h] = fid
            self.packet_id[h] = _packet_counter
            self.retransmit[h] = retransmit
        else:
            h = len(self.flags)
            self.flags.append(flags)
            self.seq.append(seq)
            self.ack.append(ack)
            self.payload_len.append(payload_len)
            self.boundaries.append(boundaries)
            self.sent_at.append(sent_at)
            self.src_i.append(src_i)
            self.dst_i.append(dst_i)
            self.fid.append(fid)
            self.packet_id.append(_packet_counter)
            self.retransmit.append(retransmit)
        return h

    def alloc_batch(
        self,
        src_i: int,
        dst_i: int,
        fid: int,
        flags: int,
        seqs: Sequence[int],
        ack: int,
        payload_len: int,
        boundaries: Optional[List[MessageBoundary]],
        sent_at: int,
        retransmit: bool = False,
    ) -> List[int]:
        """Allocate one record per entry in ``seqs``; returns the handles.

        Every field except ``seq`` is shared across the batch — the shape
        a sender streaming one flow produces.  Handle values, recycling
        order, and packet ids are exactly what ``len(seqs)`` sequential
        :meth:`alloc` calls would have produced; the bulk path just
        replaces the per-packet Python work with C-level column extends
        when the free list is short.
        """
        global _packet_counter
        n = len(seqs)
        if n == 0:
            return []
        free = self._free
        pid = _packet_counter
        _packet_counter = pid + n
        handles: List[int] = []
        i = 0
        if free:
            # Drain the free list first (LIFO, matching sequential
            # alloc), one column at a time so each loop stays tight.
            take = len(free) if len(free) < n else n
            grabbed = free[-take:]
            del free[-take:]
            grabbed.reverse()
            cols = (
                self.flags,
                self.ack,
                self.payload_len,
                self.boundaries,
                self.sent_at,
                self.src_i,
                self.dst_i,
                self.fid,
                self.retransmit,
            )
            values = (
                flags,
                ack,
                payload_len,
                boundaries,
                sent_at,
                src_i,
                dst_i,
                fid,
                retransmit,
            )
            for col, value in zip(cols, values):
                for h in grabbed:
                    col[h] = value
            seq_col = self.seq
            id_col = self.packet_id
            for h, s in zip(grabbed, seqs):
                seq_col[h] = s
            for h in grabbed:
                pid += 1
                id_col[h] = pid
            handles = grabbed
            i = take
        if i < n:
            k = n - i
            base = len(self.flags)
            self.flags.extend([flags] * k)
            self.seq.extend(seqs[i:])
            self.ack.extend([ack] * k)
            self.payload_len.extend([payload_len] * k)
            self.boundaries.extend([boundaries] * k)
            self.sent_at.extend([sent_at] * k)
            self.src_i.extend([src_i] * k)
            self.dst_i.extend([dst_i] * k)
            self.fid.extend([fid] * k)
            self.packet_id.extend(range(pid + 1, pid + 1 + k))
            self.retransmit.extend([retransmit] * k)
            handles.extend(range(base, base + k))
        return handles

    def free(self, handle: int) -> None:
        """Recycle ``handle``.  The owner calls this exactly once."""
        self._free.append(handle)

    def free_batch(self, handles: Sequence[int]) -> None:
        """Recycle a batch; equivalent to sequential :meth:`free` calls."""
        self._free.extend(handles)

    # -- views ----------------------------------------------------------

    def size_bytes(self, handle: int) -> int:
        """Wire size charged to links."""
        return HEADER_BYTES + self.payload_len[handle]

    def end_seq(self, handle: int) -> int:
        """Sequence number just past the payload (SYN/FIN consume one)."""
        length = self.payload_len[handle]
        if self.flags[handle] & _SYN_OR_FIN:
            length += 1
        return self.seq[handle] + length

    def flow(self, handle: int) -> FlowKey:
        """The packet's interned :class:`FlowKey` (no allocation)."""
        return self._flows[self.fid[handle]]

    def materialize(self, handle: int) -> Packet:
        """Independent :class:`Packet` snapshot of ``handle``.

        For cold paths that retain packets past delivery (packet traces,
        campaign evidence, ``describe`` rendering).  The snapshot shares
        nothing mutable with the slot, so it survives handle recycling.
        """
        boundaries = self.boundaries[handle]
        return Packet(
            src=self._endpoints[self.src_i[handle]],
            dst=self._endpoints[self.dst_i[handle]],
            flags=self.flags[handle],
            seq=self.seq[handle],
            ack=self.ack[handle],
            payload_len=self.payload_len[handle],
            boundaries=list(boundaries) if boundaries else [],
            sent_at=self.sent_at[handle],
            packet_id=self.packet_id[handle],
            retransmit=bool(self.retransmit[handle]),
        )

    def describe(self, handle: int) -> str:
        """Terse human-readable summary for traces."""
        return "#%d %s %s seq=%d ack=%d len=%d" % (
            self.packet_id[handle],
            self.flow(handle),
            describe_flags(self.flags[handle]),
            self.seq[handle],
            self.ack[handle],
            self.payload_len[handle],
        )

    # -- accounting -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Slots ever allocated (live + free)."""
        return len(self.flags)

    @property
    def live(self) -> int:
        """Handles currently allocated (leak detector: 0 after a run
        fully drains)."""
        return len(self.flags) - len(self._free)
