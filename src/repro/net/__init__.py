"""Network model substrate.

A :class:`~repro.net.network.Network` is a fabric of named nodes joined
by unidirectional :class:`~repro.net.pipe.Pipe` links.  Nodes route
hop-by-hop using static per-node route tables, which is how the
asymmetric paths of Direct Server Return are expressed: client→server
traffic routes through the load balancer, server→client traffic takes a
direct pipe that bypasses it.

Pipes model propagation delay, serialization at a configurable bandwidth,
a bounded FIFO queue, and a run-time adjustable *extra delay* — the knob
the Fig 3 experiment turns to inject 1 ms on an LB→server path.
"""

from repro.net.addr import Endpoint, FlowKey
from repro.net.packet import Packet, TcpFlags, MessageBoundary
from repro.net.pipe import Pipe, PipeStats
from repro.net.network import Network
from repro.net.node import Node
from repro.net.trace import PacketTrace, TraceRecord

__all__ = [
    "Endpoint",
    "FlowKey",
    "Packet",
    "TcpFlags",
    "MessageBoundary",
    "Pipe",
    "PipeStats",
    "Network",
    "Node",
    "PacketTrace",
    "TraceRecord",
]
