"""In-memory packet traces (a pcap stand-in) for tests and debugging."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.net.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One captured transmission."""

    time: int
    pipe: str
    packet: Packet

    def format(self) -> str:
        """One-line rendering, tcpdump-flavoured."""
        return "%12d %-24s %s" % (self.time, self.pipe, self.packet.describe())


class PacketTrace:
    """Append-only capture of transmissions, filterable after the fact."""

    def __init__(self, limit: Optional[int] = None):
        self._records: List[TraceRecord] = []
        self._limit = limit
        self.truncated = False
        #: Transmissions that arrived past ``limit`` and were not kept.
        #: Truncation is visible, not silent: reports surface this count.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def limit(self) -> Optional[int]:
        """The record cap this trace was created with (None = unbounded)."""
        return self._limit

    def record(self, time: int, pipe: str, packet: Packet) -> None:
        """Capture one transmission (counts, but keeps none, past ``limit``)."""
        if self._limit is not None and len(self._records) >= self._limit:
            self.truncated = True
            self.dropped += 1
            return
        self._records.append(TraceRecord(time, pipe, packet))

    def filter(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> List[TraceRecord]:
        """Records satisfying ``predicate``."""
        return [r for r in self._records if predicate(r)]

    def on_pipe(self, pipe: str) -> List[TraceRecord]:
        """Records captured on a given pipe."""
        return self.filter(lambda r: r.pipe == pipe)

    def dump(self, limit: int = 100) -> str:
        """Multi-line rendering of up to ``limit`` records."""
        lines = [r.format() for r in self._records[:limit]]
        if len(self._records) > limit:
            lines.append("... (%d more)" % (len(self._records) - limit))
        return "\n".join(lines)
