"""Addresses and connection identifiers.

Hosts are identified by name (a string such as ``"client0"`` or a
virtual IP like ``"vip"``); an :class:`Endpoint` pairs a host with a
port.  A :class:`FlowKey` is the classic connection 4-tuple as seen in
one direction; the load balancer keys its per-flow measurement state and
its connection-tracking table on it, exactly as an L4 LB hashes the
4-tuple.
"""

from __future__ import annotations

from typing import NamedTuple


class Endpoint(NamedTuple):
    """A (host, port) pair."""

    host: str
    port: int

    def __str__(self) -> str:
        return "%s:%d" % (self.host, self.port)


class FlowKey(NamedTuple):
    """Directed connection 4-tuple: packets from ``src`` toward ``dst``."""

    src_host: str
    src_port: int
    dst_host: str
    dst_port: int

    @classmethod
    def for_packet(cls, src: Endpoint, dst: Endpoint) -> "FlowKey":
        """Build the key for a packet travelling src → dst."""
        return cls(src.host, src.port, dst.host, dst.port)

    def reversed(self) -> "FlowKey":
        """The same connection seen in the opposite direction."""
        return FlowKey(self.dst_host, self.dst_port, self.src_host, self.src_port)

    @property
    def src(self) -> Endpoint:
        """Source endpoint."""
        return Endpoint(self.src_host, self.src_port)

    @property
    def dst(self) -> Endpoint:
        """Destination endpoint."""
        return Endpoint(self.dst_host, self.dst_port)

    def __str__(self) -> str:
        return "%s:%d->%s:%d" % (
            self.src_host,
            self.src_port,
            self.dst_host,
            self.dst_port,
        )
