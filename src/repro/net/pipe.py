"""Unidirectional network path between two nodes.

A :class:`Pipe` models, in order:

1. **Random loss** — an optional ``drop_prob`` (the chaos plane's lossy
   path knob) discards the packet before it reaches the wire.
2. **Serialization** — the sender's NIC puts the packet on the wire at
   ``bandwidth_bps``; packets queue FIFO while the wire is busy.  A
   runtime bandwidth override (the throttle knob) can cap the wire
   speed below its configured value.
3. **Bounded queue** — if more than ``queue_capacity`` packets are
   waiting for the wire, the new packet is dropped (tail drop).
4. **Propagation** — a fixed ``prop_delay`` plus an adjustable
   ``extra_delay`` (the Fig 3 injection knob) plus optional random
   jitter (configured and/or injected at runtime).

Delivery order is preserved: the arrival time is clamped to be no
earlier than the previous packet's arrival, so jitter never reorders a
path.  (The paper's techniques do not depend on reordering, and in-order
delivery keeps the TCP model honest about what triggers transmissions.)

Tail drops and random losses are counted separately in
:class:`PipeStats` (``packets_dropped_queue`` vs ``packets_dropped_loss``)
so experiments can distinguish congestion from injected loss.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import NetworkError
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.units import serialization_delay


@dataclass
class PipeStats:
    """Counters a pipe accumulates over its lifetime."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_partition: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    @property
    def packets_dropped(self) -> int:
        """Total drops from any cause (tail drop, loss, partition)."""
        return (
            self.packets_dropped_queue
            + self.packets_dropped_loss
            + self.packets_dropped_partition
        )


class Pipe:
    """One-way link with delay, bandwidth, queueing, and injection knobs.

    Parameters
    ----------
    sim:
        The simulation engine used to schedule deliveries.
    name:
        Label used in traces and error messages.
    prop_delay:
        One-way propagation delay in ns.
    bandwidth_bps:
        Wire speed in bits/s; ``None`` disables serialization delay and
        queueing entirely (an ideal link).
    queue_capacity:
        Maximum packets waiting for the wire before tail drop (only
        meaningful with finite bandwidth).
    jitter:
        Optional callable returning a non-negative ns jitter to add to
        each packet's propagation (e.g. ``lambda: rng.randrange(5_000)``).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        prop_delay: int,
        bandwidth_bps: Optional[int] = None,
        queue_capacity: int = 1024,
        jitter: Optional[Callable[[], int]] = None,
    ):
        if prop_delay < 0:
            raise NetworkError("negative propagation delay on pipe %s" % name)
        if queue_capacity < 1:
            raise NetworkError("queue capacity must be >= 1 on pipe %s" % name)
        self._sim = sim
        self.name = name
        self._prop_delay = prop_delay
        self._bandwidth_bps = bandwidth_bps
        self._bandwidth_override: Optional[int] = None
        self._queue_capacity = queue_capacity
        self._jitter = jitter
        self._extra_jitter: Optional[Callable[[], int]] = None
        self._extra_delay = 0
        self._drop_prob = 0.0
        self._partitioned = False
        self._loss_rng: Optional[random.Random] = None
        self._wire_free_at = 0
        self._last_arrival = 0
        # Departure times of packets still occupying the queue/wire;
        # drained lazily in send() instead of with per-packet events.
        self._departures: Deque[int] = deque()
        # The delivery pump: packets in flight wait in this deque as
        # (arrival, reserved seq, packet) and exactly one engine event —
        # armed for the head entry — is outstanding per pipe.  Arrivals
        # are monotone (the no-reorder clamp), so the head is always the
        # next delivery; each packet's tie-breaking seq is reserved at
        # send time, which keeps event order byte-identical to the old
        # one-event-per-packet scheme while the heap stays O(pipes).
        self._arrivals: Deque[tuple] = deque()
        self._pump_armed = False
        self.stats = PipeStats()
        self._deliver: Optional[Callable[[Packet], None]] = None

    @property
    def prop_delay(self) -> int:
        """Configured propagation delay (ns), excluding extra delay."""
        return self._prop_delay

    @property
    def extra_delay(self) -> int:
        """Currently injected extra one-way delay (ns)."""
        return self._extra_delay

    def set_extra_delay(self, extra: int) -> None:
        """Inject (or clear, with 0) additional one-way delay.

        This is the experiment's fault-injection knob: Fig 3 sets 1 ms of
        extra delay on one LB→server pipe mid-run.
        """
        if extra < 0:
            raise NetworkError("extra delay must be >= 0, got %d" % extra)
        self._extra_delay = extra

    @property
    def drop_prob(self) -> float:
        """Current random-loss probability (0 disables loss)."""
        return self._drop_prob

    def set_drop_prob(
        self, prob: float, rng: Optional[random.Random] = None
    ) -> None:
        """Inject (or clear, with 0) random packet loss.

        ``rng`` supplies the loss draws and must come from a dedicated
        seeded stream so loss does not perturb other randomness.
        """
        if not 0.0 <= prob <= 1.0:
            raise NetworkError(
                "drop probability must be in [0, 1], got %r" % prob
            )
        if prob > 0.0 and rng is None and self._loss_rng is None:
            raise NetworkError("loss on pipe %s needs an RNG" % self.name)
        if rng is not None:
            self._loss_rng = rng
        self._drop_prob = prob

    @property
    def partitioned(self) -> bool:
        """Whether a network partition is currently cutting this pipe."""
        return self._partitioned

    def set_partitioned(self, active: bool) -> None:
        """Cut (or restore) the pipe entirely.

        While partitioned every packet is discarded before the wire and
        counted under ``packets_dropped_partition`` — a hard cut, unlike
        probabilistic loss, so both fate and statistics stay
        deterministic without an RNG.
        """
        self._partitioned = bool(active)

    @property
    def bandwidth_bps(self) -> Optional[int]:
        """Configured wire speed (bits/s), ignoring any override."""
        return self._bandwidth_bps

    @property
    def effective_bandwidth_bps(self) -> Optional[int]:
        """Wire speed in force right now (override never exceeds base)."""
        if self._bandwidth_override is None:
            return self._bandwidth_bps
        if self._bandwidth_bps is None:
            return self._bandwidth_override
        return min(self._bandwidth_bps, self._bandwidth_override)

    def set_bandwidth_override(self, bandwidth_bps: Optional[int]) -> None:
        """Throttle the wire to ``bandwidth_bps`` (None restores base).

        A throttle only ever slows the link: the effective bandwidth is
        the minimum of the configured speed and the override.
        """
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError(
                "bandwidth override must be positive or None on %s" % self.name
            )
        self._bandwidth_override = bandwidth_bps

    @property
    def extra_jitter(self) -> Optional[Callable[[], int]]:
        """Currently injected jitter draw (None when inactive)."""
        return self._extra_jitter

    def set_extra_jitter(self, jitter: Optional[Callable[[], int]] = None) -> None:
        """Inject (or clear, with None) additional per-packet jitter.

        Composes with any construction-time jitter; both draws are added
        to the packet's propagation delay.
        """
        self._extra_jitter = jitter

    def connect(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the receiving side's delivery callback."""
        self._deliver = deliver

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet``; returns False if it was dropped."""
        if self._deliver is None:
            raise NetworkError("pipe %s has no receiver connected" % self.name)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes

        if self._partitioned:
            self.stats.packets_dropped_partition += 1
            return False

        if self._drop_prob > 0.0:
            assert self._loss_rng is not None
            if self._loss_rng.random() < self._drop_prob:
                self.stats.packets_dropped_loss += 1
                return False

        now = self._sim.now
        bandwidth = self.effective_bandwidth_bps
        if bandwidth is None:
            departure = now
        else:
            departures = self._departures
            while departures and departures[0] <= now:
                departures.popleft()
            if len(departures) >= self._queue_capacity:
                self.stats.packets_dropped_queue += 1
                return False
            start = max(now, self._wire_free_at)
            departure = start + serialization_delay(
                packet.size_bytes, bandwidth
            )
            self._wire_free_at = departure
            departures.append(departure)

        arrival = departure + self._prop_delay + self._extra_delay
        for draw in (self._jitter, self._extra_jitter):
            if draw is not None:
                jitter = draw()
                if jitter < 0:
                    raise NetworkError(
                        "jitter must be non-negative on %s" % self.name
                    )
                arrival += jitter
        # Never reorder: clamp to the previous arrival instant.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival

        # Reserve the tie-breaking seq now (as if the delivery event were
        # scheduled here) but only keep one engine event outstanding.
        seq = self._sim.reserve_seq()
        self._arrivals.append((arrival, seq, packet))
        if not self._pump_armed:
            self._pump_armed = True
            self._sim.schedule_fire_at(arrival, self._pump, seq=seq)
        return True

    def _pump(self) -> None:
        """Deliver the head in-flight packet; re-arm for the next one.

        Fires once per delivered packet (so ``events_processed`` matches
        the per-packet scheme) but the engine heap holds at most one
        entry per pipe.  Re-arming uses the next packet's reserved seq,
        so ties against unrelated events keep their original order.
        """
        arrivals = self._arrivals
        _arrival, _seq, packet = arrivals.popleft()
        if arrivals:
            head = arrivals[0]
            self._sim.schedule_fire_at(head[0], self._pump, seq=head[1])
        else:
            self._pump_armed = False
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size_bytes
        deliver = self._deliver
        assert deliver is not None
        deliver(packet)

    @property
    def in_flight(self) -> int:
        """Packets sent but not yet delivered (pump queue depth)."""
        return len(self._arrivals)
