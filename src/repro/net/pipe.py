"""Unidirectional network path between two nodes.

A :class:`Pipe` models, in order:

1. **Serialization** — the sender's NIC puts the packet on the wire at
   ``bandwidth_bps``; packets queue FIFO while the wire is busy.
2. **Bounded queue** — if more than ``queue_capacity`` packets are
   waiting for the wire, the new packet is dropped (tail drop).
3. **Propagation** — a fixed ``prop_delay`` plus an adjustable
   ``extra_delay`` (the Fig 3 injection knob) plus optional random
   jitter.

Delivery order is preserved: the arrival time is clamped to be no
earlier than the previous packet's arrival, so jitter never reorders a
path.  (The paper's techniques do not depend on reordering, and in-order
delivery keeps the TCP model honest about what triggers transmissions.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import NetworkError
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.units import serialization_delay


@dataclass
class PipeStats:
    """Counters a pipe accumulates over its lifetime."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0


class Pipe:
    """One-way link with delay, bandwidth, queueing, and injection knobs.

    Parameters
    ----------
    sim:
        The simulation engine used to schedule deliveries.
    name:
        Label used in traces and error messages.
    prop_delay:
        One-way propagation delay in ns.
    bandwidth_bps:
        Wire speed in bits/s; ``None`` disables serialization delay and
        queueing entirely (an ideal link).
    queue_capacity:
        Maximum packets waiting for the wire before tail drop (only
        meaningful with finite bandwidth).
    jitter:
        Optional callable returning a non-negative ns jitter to add to
        each packet's propagation (e.g. ``lambda: rng.randrange(5_000)``).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        prop_delay: int,
        bandwidth_bps: Optional[int] = None,
        queue_capacity: int = 1024,
        jitter: Optional[Callable[[], int]] = None,
    ):
        if prop_delay < 0:
            raise NetworkError("negative propagation delay on pipe %s" % name)
        if queue_capacity < 1:
            raise NetworkError("queue capacity must be >= 1 on pipe %s" % name)
        self._sim = sim
        self.name = name
        self._prop_delay = prop_delay
        self._bandwidth_bps = bandwidth_bps
        self._queue_capacity = queue_capacity
        self._jitter = jitter
        self._extra_delay = 0
        self._wire_free_at = 0
        self._last_arrival = 0
        # Departure times of packets still occupying the queue/wire;
        # drained lazily in send() instead of with per-packet events.
        self._departures: Deque[int] = deque()
        self.stats = PipeStats()
        self._deliver: Optional[Callable[[Packet], None]] = None

    @property
    def prop_delay(self) -> int:
        """Configured propagation delay (ns), excluding extra delay."""
        return self._prop_delay

    @property
    def extra_delay(self) -> int:
        """Currently injected extra one-way delay (ns)."""
        return self._extra_delay

    def set_extra_delay(self, extra: int) -> None:
        """Inject (or clear, with 0) additional one-way delay.

        This is the experiment's fault-injection knob: Fig 3 sets 1 ms of
        extra delay on one LB→server pipe mid-run.
        """
        if extra < 0:
            raise NetworkError("extra delay must be >= 0, got %d" % extra)
        self._extra_delay = extra

    def connect(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the receiving side's delivery callback."""
        self._deliver = deliver

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet``; returns False if it was tail-dropped."""
        if self._deliver is None:
            raise NetworkError("pipe %s has no receiver connected" % self.name)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes

        now = self._sim.now
        if self._bandwidth_bps is None:
            departure = now
        else:
            departures = self._departures
            while departures and departures[0] <= now:
                departures.popleft()
            if len(departures) >= self._queue_capacity:
                self.stats.packets_dropped += 1
                return False
            start = max(now, self._wire_free_at)
            departure = start + serialization_delay(
                packet.size_bytes, self._bandwidth_bps
            )
            self._wire_free_at = departure
            departures.append(departure)

        arrival = departure + self._prop_delay + self._extra_delay
        if self._jitter is not None:
            jitter = self._jitter()
            if jitter < 0:
                raise NetworkError("jitter must be non-negative on %s" % self.name)
            arrival += jitter
        # Never reorder: clamp to the previous arrival instant.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival

        self._sim.schedule_at(arrival, lambda p=packet: self._arrive(p))
        return True

    def _arrive(self, packet: Packet) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        assert self._deliver is not None
        self._deliver(packet)
