"""Unidirectional network path between two nodes.

A :class:`Pipe` models, in order:

1. **Random loss** — an optional ``drop_prob`` (the chaos plane's lossy
   path knob) discards the packet before it reaches the wire.
2. **Serialization** — the sender's NIC puts the packet on the wire at
   ``bandwidth_bps``; packets queue FIFO while the wire is busy.  A
   runtime bandwidth override (the throttle knob) can cap the wire
   speed below its configured value.
3. **Bounded queue** — if more than ``queue_capacity`` packets are
   waiting for the wire, the new packet is dropped (tail drop).
4. **Propagation** — a fixed ``prop_delay`` plus an adjustable
   ``extra_delay`` (the Fig 3 injection knob) plus optional random
   jitter (configured and/or injected at runtime).

Delivery order is preserved: the arrival time is clamped to be no
earlier than the previous packet's arrival, so jitter never reorders a
path.  (The paper's techniques do not depend on reordering, and in-order
delivery keeps the TCP model honest about what triggers transmissions.)

Tail drops and random losses are counted separately in
:class:`PipeStats` (``packets_dropped_queue`` vs ``packets_dropped_loss``)
so experiments can distinguish congestion from injected loss.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from itertools import repeat as _repeat
from typing import Callable, Deque, Optional

from repro.errors import NetworkError
from repro.net.packet import HEADER_BYTES, Packet, PacketSlab
from repro.sim.engine import EventHandle, Simulator
from repro.units import serialization_delay


@dataclass
class PipeStats:
    """Counters a pipe accumulates over its lifetime."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_partition: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    @property
    def packets_dropped(self) -> int:
        """Total drops from any cause (tail drop, loss, partition)."""
        return (
            self.packets_dropped_queue
            + self.packets_dropped_loss
            + self.packets_dropped_partition
        )


class Pipe:
    """One-way link with delay, bandwidth, queueing, and injection knobs.

    Parameters
    ----------
    sim:
        The simulation engine used to schedule deliveries.
    name:
        Label used in traces and error messages.
    prop_delay:
        One-way propagation delay in ns.
    bandwidth_bps:
        Wire speed in bits/s; ``None`` disables serialization delay and
        queueing entirely (an ideal link).
    queue_capacity:
        Maximum packets waiting for the wire before tail drop (only
        meaningful with finite bandwidth).
    jitter:
        Optional callable returning a non-negative ns jitter to add to
        each packet's propagation (e.g. ``lambda: rng.randrange(5_000)``).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        prop_delay: int,
        bandwidth_bps: Optional[int] = None,
        queue_capacity: int = 1024,
        jitter: Optional[Callable[[], int]] = None,
        slab: Optional[PacketSlab] = None,
    ):
        if prop_delay < 0:
            raise NetworkError("negative propagation delay on pipe %s" % name)
        if queue_capacity < 1:
            raise NetworkError("queue capacity must be >= 1 on pipe %s" % name)
        self._sim = sim
        self.name = name
        self._prop_delay = prop_delay
        self._bandwidth_bps = bandwidth_bps
        self._bandwidth_override: Optional[int] = None
        self._queue_capacity = queue_capacity
        self._jitter = jitter
        self._extra_jitter: Optional[Callable[[], int]] = None
        self._extra_delay = 0
        self._drop_prob = 0.0
        self._partitioned = False
        self._loss_rng: Optional[random.Random] = None
        self._wire_free_at = 0
        self._last_arrival = 0
        # Hot-path caches, kept in sync by the knob setters: the send
        # fast path reads one flag instead of re-deriving partition /
        # loss / jitter / override state per packet.
        self._eff_bw = bandwidth_bps
        self._total_delay = prop_delay
        self._cold = jitter is not None
        # Departure times of packets still occupying the queue/wire;
        # drained lazily in send() instead of with per-packet events.
        self._departures: Deque[int] = deque()
        # The delivery pump: packets in flight wait in this deque as
        # (arrival, reserved seq, packet) and exactly one engine event —
        # armed for the head entry — is outstanding per pipe.  Arrivals
        # are monotone (the no-reorder clamp), so the head is always the
        # next delivery; each packet's tie-breaking seq is reserved at
        # send time, which keeps event order byte-identical to the old
        # one-event-per-packet scheme while the heap stays O(pipes).
        self._arrivals: Deque[tuple] = deque()
        self._pump_armed = False
        self.stats = PipeStats()
        self._deliver: Optional[Callable[[Packet], None]] = None
        self._deliver_batch: Optional[Callable[[list], None]] = None
        # Slab mode: payloads are integer handles into these columns.
        # The pipe owns a handle from send() until delivery or drop.
        self._slab = slab

    @property
    def prop_delay(self) -> int:
        """Configured propagation delay (ns), excluding extra delay."""
        return self._prop_delay

    @property
    def extra_delay(self) -> int:
        """Currently injected extra one-way delay (ns)."""
        return self._extra_delay

    def set_extra_delay(self, extra: int) -> None:
        """Inject (or clear, with 0) additional one-way delay.

        This is the experiment's fault-injection knob: Fig 3 sets 1 ms of
        extra delay on one LB→server pipe mid-run.
        """
        if extra < 0:
            raise NetworkError("extra delay must be >= 0, got %d" % extra)
        self._extra_delay = extra
        self._total_delay = self._prop_delay + extra

    @property
    def drop_prob(self) -> float:
        """Current random-loss probability (0 disables loss)."""
        return self._drop_prob

    def set_drop_prob(
        self, prob: float, rng: Optional[random.Random] = None
    ) -> None:
        """Inject (or clear, with 0) random packet loss.

        ``rng`` supplies the loss draws and must come from a dedicated
        seeded stream so loss does not perturb other randomness.
        """
        if not 0.0 <= prob <= 1.0:
            raise NetworkError(
                "drop probability must be in [0, 1], got %r" % prob
            )
        if prob > 0.0 and rng is None and self._loss_rng is None:
            raise NetworkError("loss on pipe %s needs an RNG" % self.name)
        if rng is not None:
            self._loss_rng = rng
        self._drop_prob = prob
        self._refresh_cold()

    @property
    def partitioned(self) -> bool:
        """Whether a network partition is currently cutting this pipe."""
        return self._partitioned

    def set_partitioned(self, active: bool) -> None:
        """Cut (or restore) the pipe entirely.

        While partitioned every packet is discarded before the wire and
        counted under ``packets_dropped_partition`` — a hard cut, unlike
        probabilistic loss, so both fate and statistics stay
        deterministic without an RNG.
        """
        self._partitioned = bool(active)
        self._refresh_cold()

    @property
    def bandwidth_bps(self) -> Optional[int]:
        """Configured wire speed (bits/s), ignoring any override."""
        return self._bandwidth_bps

    @property
    def effective_bandwidth_bps(self) -> Optional[int]:
        """Wire speed in force right now (override never exceeds base)."""
        if self._bandwidth_override is None:
            return self._bandwidth_bps
        if self._bandwidth_bps is None:
            return self._bandwidth_override
        return min(self._bandwidth_bps, self._bandwidth_override)

    def set_bandwidth_override(self, bandwidth_bps: Optional[int]) -> None:
        """Throttle the wire to ``bandwidth_bps`` (None restores base).

        A throttle only ever slows the link: the effective bandwidth is
        the minimum of the configured speed and the override.
        """
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError(
                "bandwidth override must be positive or None on %s" % self.name
            )
        self._bandwidth_override = bandwidth_bps
        self._eff_bw = self.effective_bandwidth_bps

    @property
    def extra_jitter(self) -> Optional[Callable[[], int]]:
        """Currently injected jitter draw (None when inactive)."""
        return self._extra_jitter

    def set_extra_jitter(self, jitter: Optional[Callable[[], int]] = None) -> None:
        """Inject (or clear, with None) additional per-packet jitter.

        Composes with any construction-time jitter; both draws are added
        to the packet's propagation delay.
        """
        self._extra_jitter = jitter
        self._refresh_cold()

    def _refresh_cold(self) -> None:
        """Recompute whether send() must take the slow (faulted) path."""
        self._cold = (
            self._partitioned
            or self._drop_prob > 0.0
            or self._jitter is not None
            or self._extra_jitter is not None
        )

    def connect(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the receiving side's delivery callback."""
        self._deliver = deliver

    def connect_batch(self, deliver_batch: Callable[[list], None]) -> None:
        """Attach an optional *batch* delivery callback (slab mode only).

        When set, the pump hands an entire same-instant batch of due slab
        handles to ``deliver_batch(handles)`` in one call whenever that
        is order-equivalent to per-packet dispatch: every queued arrival
        shares the head's arrival instant and no other engine event's
        key interleaves the batch's reserved seqs.  Receivers that
        register this commit to handle-only traffic on the pipe and take
        ownership of every handle in the list.  Per-packet
        :meth:`connect` delivery remains the fallback (lone arrivals,
        bounded runs, profiled runs, mixed-instant batches).
        """
        self._deliver_batch = deliver_batch

    def send(self, packet) -> bool:
        """Transmit ``packet`` (object or slab handle).

        Returns False if it was dropped.  In slab mode the pipe takes
        ownership of the handle: dropped handles are freed here,
        delivered ones pass to the receiver.
        """
        if self._deliver is None:
            raise NetworkError("pipe %s has no receiver connected" % self.name)
        slab = self._slab
        if slab is not None and type(packet) is int:
            size = HEADER_BYTES + slab.payload_len[packet]
        else:
            slab = None
            size = packet.size_bytes
        stats = self.stats
        stats.packets_sent += 1
        stats.bytes_sent += size
        cold = self._cold

        if cold:
            if self._partitioned:
                stats.packets_dropped_partition += 1
                if slab is not None:
                    slab.free(packet)
                return False
            if self._drop_prob > 0.0:
                assert self._loss_rng is not None
                if self._loss_rng.random() < self._drop_prob:
                    stats.packets_dropped_loss += 1
                    if slab is not None:
                        slab.free(packet)
                    return False

        sim = self._sim
        now = sim._now
        bandwidth = self._eff_bw
        if bandwidth is None:
            departure = now
        else:
            departures = self._departures
            while departures and departures[0] <= now:
                departures.popleft()
            if len(departures) >= self._queue_capacity:
                stats.packets_dropped_queue += 1
                if slab is not None:
                    slab.free(packet)
                return False
            start = self._wire_free_at
            if start < now:
                start = now
            # Inlined serialization_delay(): ceil(bits·ns-per-s / bps).
            departure = start + (-(-size * 8_000_000_000 // bandwidth))
            self._wire_free_at = departure
            departures.append(departure)

        arrival = departure + self._total_delay
        if cold:
            for draw in (self._jitter, self._extra_jitter):
                if draw is not None:
                    jitter = draw()
                    if jitter < 0:
                        raise NetworkError(
                            "jitter must be non-negative on %s" % self.name
                        )
                    arrival += jitter
        # Never reorder: clamp to the previous arrival instant.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival

        # Reserve the tie-breaking seq now (as if the delivery event were
        # scheduled here) but only keep one engine event outstanding.
        # (reserve_seq() and note_parked(1) inlined — this is the hottest
        # per-packet call site in the simulation.)
        seq = sim._seq + 1
        sim._seq = seq
        self._arrivals.append((arrival, seq, packet))
        parked = sim._parked + 1
        sim._parked = parked
        load = len(sim._queue) - sim._tombstones + sim._run_pending + parked
        if load > sim._peak_load:
            sim._peak_load = load
        if not self._pump_armed:
            self._pump_armed = True
            sim.schedule_fire_at(arrival, self._pump, seq=seq)
        return True

    def send_batch(self, handles: list) -> int:
        """Transmit a wave of slab handles; returns how many were accepted.

        Fast path for the warm ideal-link case (slab mode, no faults, no
        bandwidth): the wave shares one arrival instant, so stats, seq
        reservation, and pump arming are each done once and the per-packet
        work collapses to a C-level extend of the arrival queue.  Any
        other configuration (faults armed, finite bandwidth, object mode)
        falls back to per-packet :meth:`send`, which preserves exact
        drop/serialization behavior.
        """
        slab = self._slab
        if slab is None or self._cold or self._eff_bw is not None:
            send = self.send
            sent = 0
            for handle in handles:
                if send(handle):
                    sent += 1
            return sent
        if self._deliver is None:
            raise NetworkError("pipe %s has no receiver connected" % self.name)
        n = len(handles)
        if n == 0:
            return 0
        stats = self.stats
        payload_len = slab.payload_len
        size = HEADER_BYTES * n + sum(map(payload_len.__getitem__, handles))
        stats.packets_sent += n
        stats.bytes_sent += size
        sim = self._sim
        arrival = sim._now + self._total_delay
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        seq = sim.reserve_seq_block(n)
        self._arrivals.extend(
            zip(_repeat(arrival, n), range(seq, seq + n), handles)
        )
        sim.note_parked(n)
        if not self._pump_armed:
            self._pump_armed = True
            sim.schedule_fire_at(arrival, self._pump, seq=seq)
        return n

    def _pump(self) -> None:
        """Deliver every in-flight packet whose arrival is due; re-arm.

        Batch drain: one engine event delivers the head packet and then —
        when the engine is in an unbounded run (``sim.inline_ok``) — keeps
        delivering successive arrivals inline for as long as each would
        have been the very next engine event anyway (its ``(time, seq)``
        key precedes the engine's next key and the run horizon).  Each
        inline delivery advances the clock and the processed-events count
        exactly as a separate pump firing would, so ``events_processed``,
        callback order, and every timestamp stay byte-identical to the
        one-event-per-packet scheme; only the heap traffic disappears.

        When the batch leaves arrivals behind (or the engine is stepping
        with a budget), the pump re-arms for the new head using its
        reserved seq, preserving tie order against unrelated events.
        """
        sim = self._sim
        arrivals = self._arrivals
        stats = self.stats
        deliver = self._deliver
        assert deliver is not None
        slab = self._slab

        _arrival, _seq, packet = arrivals.popleft()
        if not arrivals and sim._inline_ok:
            # Fast path: lone arrival during an unbounded drain (the
            # overwhelmingly common case on lightly loaded pipes).  With
            # nothing left to batch, the phantom/horizon machinery below
            # degenerates to exactly this:
            self._pump_armed = False
            sim._parked -= 1
            stats.packets_delivered += 1
            if slab is not None and type(packet) is int:
                stats.bytes_delivered += HEADER_BYTES + slab.payload_len[packet]
            else:
                stats.bytes_delivered += packet.size_bytes
            deliver(packet)
            return
        deliver_batch = self._deliver_batch
        if (
            deliver_batch is not None
            and sim._inline_ok
            and sim._profiler is None
            and slab is not None
            and arrivals
            and arrivals[-1][0] == _arrival
        ):
            # Bulk drain: every queued arrival shares this instant
            # (arrivals are monotone, so last == head means all equal).
            # If no other engine event's key interleaves the batch's
            # reserved seqs, per-packet dispatch would deliver exactly
            # this list in exactly this order with the clock pinned at
            # _arrival — so hand the whole batch to the receiver in one
            # call and account for it wholesale.
            last_seq = arrivals[-1][1]
            key = sim.next_key()
            if key is None or key > (_arrival, last_seq):
                batch = [packet]
                batch.extend(entry[2] for entry in arrivals)
                arrivals.clear()
                self._pump_armed = False
                n = len(batch)
                sim._parked -= n
                stats.packets_delivered += n
                payload_len = slab.payload_len
                stats.bytes_delivered += HEADER_BYTES * n + sum(
                    map(payload_len.__getitem__, batch)
                )
                # The pump's own heap event covers the head; the rest
                # were delivered inline.
                sim.inline_fire_batch(_arrival, n - 1)
                deliver_batch(batch)
                return
        if not sim.inline_ok:
            # Bounded run (step()/max_events): exact per-packet behavior.
            if arrivals:
                head = arrivals[0]
                sim.schedule_fire_at(head[0], self._pump, seq=head[1])
            else:
                self._pump_armed = False
            sim._parked -= 1
            stats.packets_delivered += 1
            if slab is not None and type(packet) is int:
                stats.bytes_delivered += HEADER_BYTES + slab.payload_len[packet]
            else:
                stats.bytes_delivered += packet.size_bytes
            deliver(packet)
            return

        # Mirror the per-firing bookkeeping of the one-event scheme
        # before every delivery: while arrivals remain queued the old
        # scheme had a re-armed pump event in the heap (modelled here as
        # a phantom, so peak depth follows the same trajectory); once
        # arrivals drain, the pump was disarmed, so a send() issued from
        # inside a delivery arms a real heap event exactly as before.
        profiler = sim._profiler
        until = sim.inline_until
        sim._parked -= 1
        # The first packet's delivery belongs to the pump's own heap
        # event (the engine already wraps and counts it); only inline
        # deliveries are dispatched through the profiler here, keeping
        # profiler.events == sim.events_processed.
        first = True
        while True:
            if arrivals:
                sim._phantom = 1
                armed_inline = True
            else:
                sim._phantom = 0
                self._pump_armed = False
                armed_inline = False
            stats.packets_delivered += 1
            if slab is not None and type(packet) is int:
                stats.bytes_delivered += HEADER_BYTES + slab.payload_len[packet]
            else:
                stats.bytes_delivered += packet.size_bytes
            if profiler is None or first:
                first = False
                deliver(packet)
            else:
                profiler.run_args(deliver, packet)
            if not armed_inline:
                # Arrivals were empty at delivery time; any packets sent
                # during the delivery armed a fresh heap event themselves.
                break
            head = arrivals[0]
            t2 = head[0]
            if until is not None and t2 > until:
                self._re_arm(head)
                break
            s2 = head[1]
            queue = sim._queue
            if sim._runs or (queue and type(queue[0][2]) is EventHandle):
                # Slow path: run columns or a possibly-cancelled heap
                # head need the engine's authoritative next key.
                key = sim.next_key()
                if key is not None and key < (t2, s2):
                    self._re_arm(head)
                    break
            elif queue:
                entry = queue[0]
                qt = entry[0]
                if qt < t2 or (qt == t2 and entry[1] < s2):
                    self._re_arm(head)
                    break
            arrivals.popleft()
            packet = head[2]
            sim._parked -= 1
            # inline_fire(t2), inlined:
            sim._now = t2
            sim._events_processed += 1
        sim._phantom = 0

    def _re_arm(self, head: tuple) -> None:
        # Delivery must yield to an earlier engine event: drop the
        # phantom (the real push replaces it) and schedule the pump for
        # the head arrival under its reserved seq.
        sim = self._sim
        sim._phantom = 0
        sim.schedule_fire_at(head[0], self._pump, seq=head[1])

    @property
    def in_flight(self) -> int:
        """Packets sent but not yet delivered (pump queue depth)."""
        return len(self._arrivals)
