"""The node interface every network participant implements."""

from __future__ import annotations

from typing import Protocol

from repro.net.packet import Packet


class Node(Protocol):
    """Anything attachable to a :class:`~repro.net.network.Network`.

    Hosts (client/server transport endpoints) and the load balancer are
    nodes.  The network calls :meth:`on_packet` when a packet arrives on
    any pipe whose receiving end is this node.
    """

    name: str

    def on_packet(self, packet: Packet) -> None:
        """Handle a packet delivered to this node."""
        ...
