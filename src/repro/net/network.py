"""The network fabric: nodes, pipes, and hop-by-hop routing.

Routing is deliberately static and explicit.  Each node has a route
table mapping *destination host* → *next-hop node name*, plus an
optional default route.  That is all the reproduction needs, and it
makes Direct Server Return a first-class configuration rather than a
special case:

* clients route the VIP (and, by default route, everything) to the LB;
* the LB routes each backend host to a direct pipe;
* servers route each client host to a direct pipe — the return path
  never touches the LB.

``make_dsr_topology`` builds exactly that shape for N clients and M
servers and is what the experiment harness uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.node import Node
from repro.net.packet import Packet, PacketSlab
from repro.net.pipe import Pipe
from repro.net.trace import PacketTrace
from repro.sim.engine import Simulator


class Network:
    """Registry of nodes, pipes between them, and per-node routes.

    When constructed with a :class:`PacketSlab`, the fabric runs in slab
    mode: packets are integer handles into the slab's columns, hosts and
    the LB address them by handle, and network taps receive materialized
    :class:`Packet` snapshots (taps are the cold observation path).
    """

    def __init__(self, sim: Simulator, slab: Optional[PacketSlab] = None):
        self._sim = sim
        #: Slab backing packet records, or None for object mode.
        self.slab = slab
        self._nodes: Dict[str, Node] = {}
        self._pipes: Dict[Tuple[str, str], Pipe] = {}
        self._routes: Dict[str, Dict[str, str]] = {}
        self._default_routes: Dict[str, str] = {}
        self._aliases: Dict[str, str] = {}
        self._taps: List[Callable[[str, Packet], None]] = []
        # Memoized (src node, dst host) → outgoing pipe.  Route
        # resolution walks three dicts per packet otherwise; the cache
        # collapses that to one lookup and is invalidated wholesale on
        # any topology mutation (routes, aliases, pipes).
        self._hop_cache: Dict[Tuple[str, str], Pipe] = {}

    @property
    def sim(self) -> Simulator:
        """The simulation engine this network schedules on."""
        return self._sim

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node; names must be unique."""
        if node.name in self._nodes:
            raise NetworkError("duplicate node name %r" % node.name)
        self._nodes[node.name] = node
        self._routes.setdefault(node.name, {})

    def get_node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError("unknown node %r" % name) from None

    def add_alias(self, alias: str, node_name: str) -> None:
        """Make ``alias`` (e.g. a VIP) deliverable to ``node_name``.

        Used for DSR: each backend server owns the VIP as an alias so it
        can receive packets the LB forwards without rewriting their
        destination, and can source responses from the VIP.
        """
        if node_name not in self._nodes:
            raise NetworkError("alias target %r not a node" % node_name)
        self._aliases[alias] = node_name
        self._hop_cache.clear()

    def connect(
        self,
        src: str,
        dst: str,
        prop_delay: int,
        bandwidth_bps: Optional[int] = None,
        queue_capacity: int = 1024,
        jitter: Optional[Callable[[], int]] = None,
        name: Optional[str] = None,
    ) -> Pipe:
        """Create a unidirectional pipe ``src → dst``."""
        if src not in self._nodes:
            raise NetworkError("unknown source node %r" % src)
        if dst not in self._nodes:
            raise NetworkError("unknown destination node %r" % dst)
        key = (src, dst)
        if key in self._pipes:
            raise NetworkError("pipe %s->%s already exists" % key)
        pipe = Pipe(
            self._sim,
            name or "%s->%s" % key,
            prop_delay,
            bandwidth_bps,
            queue_capacity,
            jitter,
            slab=self.slab,
        )
        # Bind the receiver's method directly: delivery is the hottest
        # callback in the simulation, so skip wrapper indirection.
        pipe.connect(self._nodes[dst].on_packet)
        self._pipes[key] = pipe
        self._hop_cache.clear()
        return pipe

    def connect_bidirectional(
        self,
        a: str,
        b: str,
        prop_delay: int,
        bandwidth_bps: Optional[int] = None,
        queue_capacity: int = 1024,
    ) -> Tuple[Pipe, Pipe]:
        """Convenience: a symmetric pair of pipes."""
        forward = self.connect(a, b, prop_delay, bandwidth_bps, queue_capacity)
        backward = self.connect(b, a, prop_delay, bandwidth_bps, queue_capacity)
        return forward, backward

    def pipe(self, src: str, dst: str) -> Pipe:
        """Look up the pipe ``src → dst``."""
        try:
            return self._pipes[(src, dst)]
        except KeyError:
            raise NetworkError("no pipe %s->%s" % (src, dst)) from None

    def pipes(self) -> Dict[Tuple[str, str], Pipe]:
        """Snapshot of all pipes, keyed ``(src, dst)`` (for tooling)."""
        return dict(self._pipes)

    def has_pipe(self, src: str, dst: str) -> bool:
        """Whether the pipe ``src → dst`` exists."""
        return (src, dst) in self._pipes

    def add_route(self, node: str, dst_host: str, next_hop: str) -> None:
        """Route traffic from ``node`` toward ``dst_host`` via ``next_hop``."""
        if node not in self._nodes:
            raise NetworkError("unknown node %r" % node)
        self._routes[node][dst_host] = next_hop
        self._hop_cache.clear()

    def set_default_route(self, node: str, next_hop: str) -> None:
        """Fallback next hop for destinations with no explicit route."""
        if node not in self._nodes:
            raise NetworkError("unknown node %r" % node)
        self._default_routes[node] = next_hop
        self._hop_cache.clear()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def send_from(self, node_name: str, packet) -> bool:
        """Route ``packet`` out of ``node_name`` toward its destination.

        ``packet`` is a :class:`Packet` or a slab handle.  Resolves the
        next hop (explicit route, then default route, then — if the
        destination resolves to a directly-pipe-connected node — that
        node).  Returns False if the pipe tail-dropped the packet.
        """
        if type(packet) is int:
            slab = self.slab
            dst_host = slab.ep_host[slab.dst_i[packet]]
        else:
            dst_host = packet.dst.host
        key = (node_name, dst_host)
        pipe = self._hop_cache.get(key)
        if pipe is None:
            next_hop = self._resolve_next_hop(node_name, dst_host)
            pipe = self._pipes.get((node_name, next_hop))
            if pipe is None:
                raise NetworkError(
                    "no pipe from %s to next hop %s (for dst %s)"
                    % (node_name, next_hop, dst_host)
                )
            self._hop_cache[key] = pipe
        if self._taps:
            self._run_taps(pipe.name, packet)
        return pipe.send(packet)

    def send_via(self, src_node: str, next_hop: str, packet) -> bool:
        """Send over an explicit hop, ignoring route tables.

        The load balancer uses this to forward a VIP-addressed packet to
        the backend it selected — the DSR forwarding step.
        """
        pipe = self._pipes.get((src_node, next_hop))
        if pipe is None:
            raise NetworkError("no pipe %s->%s" % (src_node, next_hop))
        if self._taps:
            self._run_taps(pipe.name, packet)
        return pipe.send(packet)

    def _run_taps(self, pipe_name: str, packet) -> None:
        # Taps are the cold observation path: slab handles are
        # materialized once into an independent snapshot so trace
        # records survive handle recycling.
        if type(packet) is int:
            packet = self.slab.materialize(packet)
        for tap in self._taps:
            tap(pipe_name, packet)

    def _resolve_next_hop(self, node_name: str, dst_host: str) -> str:
        routes = self._routes.get(node_name, {})
        if dst_host in routes:
            return routes[dst_host]
        resolved = self._aliases.get(dst_host, dst_host)
        if resolved in routes:
            return routes[resolved]
        if node_name in self._default_routes:
            return self._default_routes[node_name]
        if (node_name, resolved) in self._pipes:
            return resolved
        raise NetworkError("node %s has no route to %s" % (node_name, dst_host))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def add_tap(self, tap: Callable[[str, Packet], None]) -> None:
        """Observe every packet at transmission time (pipe name, packet)."""
        self._taps.append(tap)

    def attach_trace(self, trace: PacketTrace) -> None:
        """Record every transmission into ``trace``."""
        self.add_tap(
            lambda pipe_name, packet: trace.record(
                self._sim.now, pipe_name, packet
            )
        )
