"""Time and size units.

All simulation timestamps and durations in this project are integer
nanoseconds.  Using integers keeps event ordering exact (no floating-point
comparison surprises at microsecond scales) and makes traces reproducible
bit-for-bit.  This module provides the multipliers and a few conversion
helpers so call sites read naturally, e.g. ``delay=1 * MILLISECONDS``.
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NANOSECONDS = 1
#: Nanoseconds in one microsecond.
MICROSECONDS = 1_000
#: Nanoseconds in one millisecond.
MILLISECONDS = 1_000_000
#: Nanoseconds in one second.
SECONDS = 1_000_000_000

#: Bits in one byte, for bandwidth math.
BITS_PER_BYTE = 8

#: Bandwidth units expressed in bits per second.
KILOBITS_PER_SECOND = 1_000
MEGABITS_PER_SECOND = 1_000_000
GIGABITS_PER_SECOND = 1_000_000_000


def seconds(value: float) -> int:
    """Convert a float second count to integer nanoseconds."""
    return round(value * SECONDS)


def milliseconds(value: float) -> int:
    """Convert a float millisecond count to integer nanoseconds."""
    return round(value * MILLISECONDS)


def microseconds(value: float) -> int:
    """Convert a float microsecond count to integer nanoseconds."""
    return round(value * MICROSECONDS)


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECONDS


def to_millis(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (reporting only)."""
    return ns / MILLISECONDS


def to_micros(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds (reporting only)."""
    return ns / MICROSECONDS


def serialization_delay(size_bytes: int, bandwidth_bps: int) -> int:
    """Time to put ``size_bytes`` on a wire of ``bandwidth_bps``, in ns.

    Rounds up so that back-to-back packets never occupy the link for zero
    time, which would let an infinite number of packets through at one
    instant.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive, got %r" % bandwidth_bps)
    bits = size_bytes * BITS_PER_BYTE
    return -(-bits * SECONDS // bandwidth_bps)  # ceiling division


def format_ns(ns: int) -> str:
    """Human-readable rendering of a nanosecond duration for reports."""
    if ns >= SECONDS:
        return "%.3fs" % (ns / SECONDS)
    if ns >= MILLISECONDS:
        return "%.3fms" % (ns / MILLISECONDS)
    if ns >= MICROSECONDS:
        return "%.1fus" % (ns / MICROSECONDS)
    return "%dns" % ns
