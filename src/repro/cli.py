"""Command-line interface: ``python -m repro <command>``.

Runs the paper's experiments and the ablation sweeps from a terminal,
printing the same reports the benchmarks persist.  Intended for quick
exploration; the benchmark suite remains the canonical reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.controllers import available as available_controllers
from repro.errors import ConfigError
from repro.faults import PRESETS, parse_faults
from repro.harness.ablations import (
    sweep_ack_and_pacing,
    sweep_alpha,
    sweep_ensemble,
    sweep_epoch,
    sweep_far_clients,
    sweep_hysteresis,
    sweep_pipeline_depth,
    sweep_policies,
)
from repro.harness.churn import sweep_churn
from repro.harness.compare import RACE_PRESETS, run_compare
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.figures import (
    BacklogConfig,
    Fig3Config,
    run_error_decomposition,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_reaction,
)
from repro.harness.multilb import sweep_multilb
from repro.harness.recovery import fault_window, time_to_recovery
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.insight import (
    InsightConfig,
    explain_alert,
    explain_overview,
    explain_shift,
    load_timeline,
    render_diff,
)
from repro.obs import (
    ObsConfig,
    render_request_tree,
    render_shift_attribution,
    render_shift_list,
)
from repro.resilience import ResilienceConfig
from repro.sweep import (
    ResultStore,
    SweepSpec,
    load_spec,
    parse_axis,
    print_progress,
    run_sweep,
)
from repro.units import MICROSECONDS, to_micros, to_millis

_SWEEPS = {
    "epoch": sweep_epoch,
    "alpha": sweep_alpha,
    "ensemble": sweep_ensemble,
    "hysteresis": sweep_hysteresis,
    "policies": sweep_policies,
    "far-clients": sweep_far_clients,
    "pipeline": sweep_pipeline_depth,
    "ack-pacing": sweep_ack_and_pacing,
    "multilb": sweep_multilb,
    "churn": sweep_churn,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-band feedback control for load balancers (HotNets '22) "
        "— reproduction experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default 1)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="simulated seconds (default 2.0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one scenario and print its report")
    run_cmd.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default=PolicyName.FEEDBACK.value,
    )
    run_cmd.add_argument("--servers", type=int, default=2)
    run_cmd.add_argument("--clients", type=int, default=1)
    run_cmd.add_argument(
        "--strategy",
        choices=available_controllers(),
        default="alpha",
        help="control law for the feedback policy (default alpha)",
    )
    run_cmd.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos-plane fault: a preset name (%s) or an inline spec "
        "like 'delay:node=server0,start=1s,extra=1ms'; repeatable"
        % ", ".join(sorted(PRESETS)),
    )
    run_cmd.add_argument(
        "--timeline",
        metavar="FILE",
        default=None,
        help="arm the insight plane and write its timeline artifact "
        "(JSONL) to FILE",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="run one scenario with the obs plane on and dump its metrics",
        description="Runs a scenario with the observability plane's "
        "metrics registry enabled and prints every instrument — per-"
        "backend routed packets, T_LB samples per reporting timeout, "
        "weight shifts, epoch rolls, engine stats — in Prometheus text "
        "exposition format (default) or JSON.",
    )
    metrics_cmd.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default=PolicyName.FEEDBACK.value,
    )
    metrics_cmd.add_argument("--servers", type=int, default=2)
    metrics_cmd.add_argument("--clients", type=int, default=1)
    metrics_cmd.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos-plane fault (preset name or inline spec); repeatable",
    )
    metrics_cmd.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format (default prom)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="causal tracing on the Fig 3 feedback arm: which T_LB "
        "samples caused which weight shift",
        description="Runs the Fig 3 feedback arm with causal tracing "
        "enabled.  With no flags, lists every executed weight shift "
        "with its contributing-sample count.  --shift N prints the "
        "T_LB samples (with batch boundaries) the estimator weighed "
        "when shift N fired; --request ID prints one request's span "
        "tree from client send to the shift it contributed to.",
    )
    trace_cmd.add_argument(
        "--shift",
        type=int,
        default=None,
        metavar="N",
        help="print the contributing samples of shift N (0-based)",
    )
    trace_cmd.add_argument(
        "--request",
        type=int,
        default=None,
        metavar="ID",
        help="print the span tree of one request id",
    )

    explain_cmd = sub.add_parser(
        "explain",
        help="causal chains from the flight recorder: why did the "
        "controller shift weight, why did the SLO alert fire",
        description="Runs the Fig 3 feedback arm with the insight "
        "plane recording.  With no flags, lists the recorded shifts "
        "and SLO alerts by index.  --shift N walks the timeline "
        "backwards from weight shift N and prints the causal chain "
        "(triggering sample, estimator snapshot, controller inputs, "
        "fault windows in the lookback, dominant upstream cause); "
        "--alert N does the same from SLO alert N.",
    )
    explain_cmd.add_argument(
        "--shift",
        type=int,
        default=None,
        metavar="N",
        help="explain weight shift N (0-based)",
    )
    explain_cmd.add_argument(
        "--alert",
        type=int,
        default=None,
        metavar="N",
        help="explain SLO alert N (0-based)",
    )
    explain_cmd.add_argument(
        "--lookback",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="causal lookback behind the event (default 0.25s)",
    )
    explain_cmd.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="also write the run's timeline artifact (JSONL) to FILE",
    )

    diff_cmd = sub.add_parser(
        "diff",
        help="align two timeline artifacts and report divergence "
        "points in weights, modes, and SLO state",
        description="Loads two JSONL timeline artifacts (written by "
        "run --timeline, explain --export, fleet --timeline, or the "
        "chaos/compare --timelines directories), aligns their frames "
        "into frame-interval buckets, and reports where the runs "
        "diverge.  Always exits 0: divergence is a finding, not a "
        "failure.",
    )
    diff_cmd.add_argument("run_a", metavar="RUN_A", help="first artifact")
    diff_cmd.add_argument("run_b", metavar="RUN_B", help="second artifact")
    diff_cmd.add_argument(
        "--eps",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="normalized per-backend weight divergence threshold "
        "(default 0.05)",
    )

    res_cmd = sub.add_parser(
        "resilience",
        help="run a fault preset with the resilience plane on and report "
        "degradation/recovery timing",
        description="Runs the FEEDBACK policy with the full resilience "
        "plane enabled (signal grading, degradation ladder, circuit "
        "breakers, health checks, client retries) against a chaos "
        "preset, then prints the scenario report plus time-to-FALLBACK "
        "and time-to-recovery.",
    )
    res_cmd.add_argument(
        "--fault",
        choices=("crash", "lossy_path", "flapping_server"),
        default="crash",
        help="chaos preset to run against (default crash)",
    )
    res_cmd.add_argument("--servers", type=int, default=2)
    res_cmd.add_argument("--clients", type=int, default=1)

    compare_cmd = sub.add_parser(
        "compare",
        help="race the controller zoo across chaos presets and print a "
        "leaderboard",
        description="Runs every selected control law against every "
        "selected fault preset — identical seed, topology, and stimulus "
        "per lane — through the cached parallel sweep executor, then "
        "prints a per-preset leaderboard (p95/p99, time-to-recovery, "
        "shift count, weight churn, stale holds) plus overall mean-rank "
        "standings.  Re-running an unchanged race is served entirely "
        "from the result store.",
    )
    compare_cmd.add_argument(
        "--preset",
        action="append",
        default=[],
        choices=sorted(PRESETS),
        help="fault preset to race on; repeatable (default race card: %s)"
        % ", ".join(RACE_PRESETS),
    )
    compare_cmd.add_argument(
        "--controllers",
        metavar="C1,C2",
        help="comma list of control laws (default: every registered law: %s)"
        % ", ".join(available_controllers()),
    )
    compare_cmd.add_argument("--servers", type=int, default=3)
    compare_cmd.add_argument("--clients", type=int, default=1)
    compare_cmd.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    compare_cmd.add_argument(
        "--store",
        default=".sweep-store",
        metavar="DIR",
        help="result store directory (default .sweep-store)",
    )
    compare_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="re-simulate every lane even when the store has its result",
    )
    compare_cmd.add_argument(
        "--timelines",
        metavar="DIR",
        default=None,
        help="arm the insight plane and write each lane's timeline "
        "artifact (preset-controller.jsonl) into DIR",
    )

    chaos_cmd = sub.add_parser(
        "chaos",
        help="randomized chaos campaign: generated fault schedules judged "
        "against the invariant registry",
        description="Generates seeded fault schedules from the full chaos "
        "vocabulary under an intensity budget, runs them across the "
        "selected control laws through the cached sweep executor, and "
        "judges every run against the registered safety/liveness "
        "invariants.  Violating runs are delta-debugged down to minimal "
        "replayable reproducer artifacts.  'repro chaos replay FILE' "
        "re-runs one artifact and reports whether it still violates.",
    )
    chaos_cmd.add_argument(
        "action",
        nargs="?",
        default="campaign",
        choices=("campaign", "replay"),
        help="campaign (default) or replay a reproducer artifact",
    )
    chaos_cmd.add_argument(
        "artifact",
        nargs="?",
        help="reproducer artifact path (replay only)",
    )
    chaos_cmd.add_argument(
        "--runs", type=int, default=10, help="campaign runs (default 10)"
    )
    chaos_cmd.add_argument(
        "--controllers",
        metavar="C1,C2",
        default="alpha",
        help="comma list of control laws cycled across runs, or 'all' "
        "(default alpha; registered: %s)" % ", ".join(available_controllers()),
    )
    chaos_cmd.add_argument("--servers", type=int, default=3)
    chaos_cmd.add_argument("--clients", type=int, default=1)
    chaos_cmd.add_argument(
        "--invariants",
        metavar="I1,I2",
        help="comma list of invariants to judge (default: all registered)",
    )
    chaos_cmd.add_argument(
        "--max-faults",
        type=int,
        default=4,
        help="faults per generated schedule (default 4)",
    )
    chaos_cmd.add_argument(
        "--budget",
        type=float,
        default=4.0,
        help="schedule intensity budget (default 4.0)",
    )
    chaos_cmd.add_argument(
        "--fleet-every",
        type=int,
        default=4,
        help="arm the fleet plane every Nth run (0 disables; default 4)",
    )
    chaos_cmd.add_argument(
        "--artifacts",
        default=".campaign-artifacts",
        metavar="DIR",
        help="where shrunk reproducers are written (default "
        ".campaign-artifacts)",
    )
    chaos_cmd.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    chaos_cmd.add_argument(
        "--store",
        default=".sweep-store",
        metavar="DIR",
        help="result store directory (default .sweep-store)",
    )
    chaos_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="re-simulate every run even when the store has its result",
    )
    chaos_cmd.add_argument(
        "--timelines",
        metavar="DIR",
        default=None,
        help="arm the insight plane and write each run's timeline "
        "artifact (runNN.jsonl) into DIR",
    )

    fleet_cmd = sub.add_parser(
        "fleet",
        help="elastic fleet: autoscale to 1000+ backends under diurnal load",
        description="Runs the fleet plane's elastic scenario: the pool "
        "starts small, target tracking plus a scheduled ramp grow it to "
        "peak capacity under staggered diurnal client load (with a "
        "correlated burst landing mid-scale-out), and the report prints "
        "the scaling timeline, oscillation count, affinity-violation "
        "audit, and the FRESH/STALE signal-quality census each decision "
        "saw.  With --controllers, races the zoo through the same "
        "scenario and prints a fleet leaderboard instead.",
    )
    fleet_cmd.add_argument(
        "--strategy",
        choices=available_controllers(),
        default="alpha",
        help="control law for the single-run report (default alpha)",
    )
    fleet_cmd.add_argument(
        "--controllers",
        metavar="C1,C2",
        help="race mode: comma list of control laws (or 'all'); prints "
        "the fleet leaderboard instead of one report",
    )
    fleet_cmd.add_argument(
        "--initial", type=int, default=100, help="starting backends (default 100)"
    )
    fleet_cmd.add_argument(
        "--max",
        dest="max_backends",
        type=int,
        default=1024,
        help="provisioned backend universe / peak capacity (default 1024)",
    )
    fleet_cmd.add_argument("--clients", type=int, default=4)
    fleet_cmd.add_argument(
        "--connections",
        type=int,
        default=128,
        help="connections per client (default 128)",
    )
    fleet_cmd.add_argument(
        "--no-burst",
        action="store_true",
        help="drop the correlated burst that lands during the scale-out",
    )
    fleet_cmd.add_argument(
        "--jobs", type=int, default=1, help="race-mode worker processes"
    )
    fleet_cmd.add_argument(
        "--store",
        default=".sweep-store",
        metavar="DIR",
        help="race-mode result store directory (default .sweep-store)",
    )
    fleet_cmd.add_argument(
        "--timeline",
        metavar="FILE",
        default=None,
        help="single-run mode: arm the insight plane and write its "
        "timeline artifact (JSONL) to FILE",
    )

    sub.add_parser("fig2a", help="paper Fig 2(a): fixed timeouts vs truth")
    sub.add_parser("fig2b", help="paper Fig 2(b): the ensemble tracks truth")
    sub.add_parser("fig3", help="paper Fig 3: Maglev vs latency-aware LB")
    sub.add_parser("reaction", help="reaction-time claim (§1/§4)")
    sub.add_parser("error", help="error-model identity (§3)")

    ablation = sub.add_parser("ablation", help="run a parameter sweep")
    ablation.add_argument("sweep", choices=sorted(_SWEEPS))
    ablation.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )

    sweep_cmd = sub.add_parser(
        "sweep",
        help="declarative scenario sweep: JSON spec file or inline axes",
        description="Expand a sweep spec into scenario points, run them "
        "through the parallel executor, and print one summary row per "
        "point.  Results are cached by content in the store directory: "
        "rerunning an unchanged sweep simulates nothing, and an "
        "interrupted sweep resumes where it stopped.",
    )
    sweep_cmd.add_argument(
        "spec",
        nargs="?",
        help="JSON sweep spec file (mutually exclusive with inline axes)",
    )
    sweep_cmd.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="PATH=V1,V2",
        help="cartesian-product axis over a dotted config path "
        "(e.g. 'feedback.controller.alpha=0.05,0.1'); repeatable",
    )
    sweep_cmd.add_argument(
        "--zip",
        action="append",
        default=[],
        dest="zip_axes",
        metavar="PATH=V1,V2",
        help="lockstep axis (all --zip axes advance together); repeatable",
    )
    sweep_cmd.add_argument(
        "--seeds",
        metavar="S1,S2",
        help="replicate every point once per seed",
    )
    sweep_cmd.add_argument(
        "--strategy",
        metavar="S1,S2",
        help="comma list of control laws swept as a grid axis over "
        "feedback.strategy (registered: %s)"
        % ", ".join(available_controllers()),
    )
    sweep_cmd.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        help="base routing policy (default: feedback)",
    )
    sweep_cmd.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="base-config chaos-plane fault (preset name or inline spec); "
        "repeatable",
    )
    sweep_cmd.add_argument("--name", default="sweep", help="sweep name")
    sweep_cmd.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    sweep_cmd.add_argument(
        "--store",
        default=".sweep-store",
        metavar="DIR",
        help="result store directory (default .sweep-store)",
    )
    sweep_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="re-simulate every point even when the store has its result",
    )
    sweep_cmd.add_argument(
        "--resume",
        action="store_true",
        help="require an existing store (guard against resuming into an "
        "empty directory by mistake)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    duration = units.seconds(args.duration)

    if args.command == "run":
        faults = []
        for spec in args.fault:
            faults.extend(parse_faults(spec, duration))
        config = ScenarioConfig(
            seed=args.seed,
            duration=duration,
            n_clients=args.clients,
            n_servers=args.servers,
            policy=PolicyName(args.policy),
            faults=faults,
            insight=InsightConfig(enabled=args.timeline is not None),
            warmup=duration // 10,
        )
        config.feedback.strategy = args.strategy
        result = run_scenario(config)
        print(result.report())
        if args.timeline is not None:
            result.scenario.insight.export(args.timeline)
            print("timeline written: %s" % args.timeline)
        return 0

    if args.command == "metrics":
        faults = []
        for spec in args.fault:
            faults.extend(parse_faults(spec, duration))
        config = ScenarioConfig(
            seed=args.seed,
            duration=duration,
            n_clients=args.clients,
            n_servers=args.servers,
            policy=PolicyName(args.policy),
            faults=faults,
            obs=ObsConfig(enabled=True, tracing=False, profiling=False),
            warmup=duration // 10,
        )
        result = run_scenario(config)
        registry = result.scenario.obs.registry
        assert registry is not None
        if args.format == "json":
            import json

            print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
        else:
            print(registry.to_prometheus(), end="")
        return 0

    if args.command == "trace":
        fig3 = run_fig3(
            Fig3Config(
                seed=args.seed,
                duration=duration,
                obs=ObsConfig(enabled=True, profiling=False),
            ),
            policies=(PolicyName.FEEDBACK,),
        )
        result = fig3.results[PolicyName.FEEDBACK.value]
        scenario = result.scenario
        assert scenario.obs is not None and scenario.obs.tracer is not None
        assert scenario.feedback is not None
        tracer = scenario.obs.tracer
        shifts = scenario.feedback.shift_events()
        window = scenario.feedback.estimator.config.window
        if args.request is not None:
            print(
                render_request_tree(
                    tracer,
                    args.request,
                    shifts,
                    window,
                    fault_windows=result.fault_windows(),
                    vip=scenario.vip,
                )
            )
            return 0
        if not shifts:
            print("no weight shifts executed in this run")
            return 1
        if args.shift is None:
            print(render_shift_list(tracer, shifts, window))
            return 0
        if not 0 <= args.shift < len(shifts):
            print(
                "shift index %d out of range (%d shifts recorded)"
                % (args.shift, len(shifts)),
                file=sys.stderr,
            )
            return 2
        print(
            render_shift_attribution(
                tracer, shifts, args.shift, window, scales=tracer.scales
            )
        )
        return 0

    if args.command == "explain":
        fig3 = run_fig3(
            Fig3Config(
                seed=args.seed,
                duration=duration,
                insight=InsightConfig(enabled=True),
            ),
            policies=(PolicyName.FEEDBACK,),
        )
        result = fig3.results[PolicyName.FEEDBACK.value]
        assert result.scenario.insight is not None
        if args.export is not None:
            result.scenario.insight.export(args.export)
            print("timeline written: %s" % args.export)
        lookback = units.seconds(args.lookback)
        if args.shift is not None and args.alert is not None:
            print("give --shift or --alert, not both", file=sys.stderr)
            return 2
        try:
            if args.shift is not None:
                print(explain_shift(result, args.shift, lookback))
            elif args.alert is not None:
                print(explain_alert(result, args.alert, lookback))
            else:
                print(explain_overview(result))
        except IndexError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        return 0

    if args.command == "diff":
        try:
            timeline_a = load_timeline(args.run_a)
            timeline_b = load_timeline(args.run_b)
        except (OSError, ValueError) as exc:
            print("cannot load timeline: %s" % exc, file=sys.stderr)
            return 2
        print(render_diff(timeline_a, timeline_b, weight_eps=args.eps))
        return 0

    if args.command == "resilience":
        faults = parse_faults(args.fault, duration)
        config = ScenarioConfig(
            seed=args.seed,
            duration=duration,
            n_clients=args.clients,
            n_servers=args.servers,
            policy=PolicyName.FEEDBACK,
            faults=faults,
            resilience=ResilienceConfig(enabled=True, health_checks=True),
            warmup=duration // 10,
        )
        result = run_scenario(config)
        print(result.report())
        onset = min(f.start for f in faults)
        fallback_at = result.first_mode_entry("FALLBACK", after=onset)
        if fallback_at is None:
            print("ladder never entered FALLBACK (fault=%s)" % args.fault)
        else:
            print(
                "time to FALLBACK after fault onset: %.3f ms"
                % to_millis(fallback_at - onset)
            )
            recovery_at = result.first_mode_entry("FEEDBACK", after=fallback_at)
            if recovery_at is None:
                print("no FEEDBACK recovery observed before the run ended")
            else:
                print(
                    "time to FEEDBACK recovery: %.3f ms after FALLBACK entry"
                    % to_millis(recovery_at - fallback_at)
                )
        latency_recovery = time_to_recovery(result, fault_window(config))
        if latency_recovery is None:
            print("tail latency never re-entered the pre-fault band")
        else:
            print(
                "time to tail-latency recovery: %.3f ms after fault onset"
                % to_millis(latency_recovery)
            )
        return 0

    if args.command == "fig2a":
        config = BacklogConfig(
            seed=args.seed, duration=duration, step_at=duration // 2
        )
        result = run_fig2a(config)
        rows = []
        for delta, (pre, post) in sorted(result.sample_counts.items()):
            rows.append(
                (
                    "%dus" % (delta // MICROSECONDS),
                    pre,
                    _us(result.median_estimate(delta, False)),
                    post,
                    _us(result.median_estimate(delta, True)),
                )
            )
        rows.append(
            (
                "truth",
                "",
                _us(result.median_ground_truth(False)),
                "",
                _us(result.median_ground_truth(True)),
            )
        )
        print(
            format_table(
                ("delta", "#pre", "median pre", "#post", "median post"), rows
            )
        )
        return 0

    if args.command == "fig2b":
        config = BacklogConfig(
            seed=args.seed, duration=duration, step_at=duration // 2
        )
        result = run_fig2b(config)
        print(
            format_table(
                ("window", "median T_LB", "median T_client", "rel.err"),
                [
                    (
                        "pre-step",
                        _us(result.median_estimate(False)),
                        _us(result.median_ground_truth(False)),
                        "%.3f" % result.tracking_error(False),
                    ),
                    (
                        "post-step",
                        _us(result.median_estimate(True)),
                        _us(result.median_ground_truth(True)),
                        "%.3f" % result.tracking_error(True),
                    ),
                ],
            )
        )
        return 0

    if args.command == "fig3":
        config = Fig3Config(seed=args.seed, duration=duration)
        result = run_fig3(config)
        rows = []
        for policy in ("maglev", "feedback"):
            rows.append(
                (
                    policy,
                    _ms(result.steady_state_p95(policy)),
                    _ms(result.post_injection_p95(policy, config.duration // 8)),
                )
            )
        print(
            format_table(
                ("arm", "pre-fault p95 (ms)", "post-fault p95 (ms)"), rows
            )
        )
        return 0

    if args.command == "reaction":
        result = run_reaction(Fig3Config(seed=args.seed, duration=duration))
        if result.reaction_ns is None:
            print("no shift observed after the injection")
            return 1
        print("first shift: +%.2f ms after injection" % to_millis(result.reaction_ns))
        if result.injected_weight_floor_at is not None:
            print(
                "weight floor reached: +%.2f ms"
                % to_millis(result.injected_weight_floor_at - result.injection_at)
            )
        return 0

    if args.command == "error":
        rows = []
        for think_us in (0, 100, 500):
            result = run_error_decomposition(
                think_us * MICROSECONDS, duration=duration, seed=args.seed
            )
            rows.append(
                (
                    think_us,
                    "%.1f" % to_micros(result.median_t_client),
                    "%.1f" % to_micros(result.median_t_lb),
                    "%.1f" % to_micros(result.measured_error),
                    "%.1f" % to_micros(result.identity_gap),
                )
            )
        print(
            format_table(
                ("think (us)", "T_client (us)", "T_LB (us)", "err (us)", "gap (us)"),
                rows,
            )
        )
        return 0

    if args.command == "ablation":
        rows = _SWEEPS[args.sweep](jobs=args.jobs)
        headers = list(rows[0].keys())
        print(format_table(headers, [[row[h] for h in headers] for row in rows]))
        return 0

    if args.command == "fleet":
        try:
            return _fleet_command(args, duration)
        except ConfigError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    if args.command == "compare":
        try:
            return _compare_command(args, duration)
        except ConfigError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    if args.command == "chaos":
        try:
            return _chaos_command(args, duration)
        except ConfigError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    if args.command == "sweep":
        try:
            return _sweep_command(args, duration)
        except ConfigError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    return 2  # unreachable: argparse enforces the command set


def _fleet_command(args: argparse.Namespace, duration: int) -> int:
    """The ``repro fleet`` verb: the elastic scale experiment."""
    from repro.harness.elastic import (
        ElasticConfig,
        race_table,
        run_elastic,
        run_elastic_race,
    )

    base = ElasticConfig(
        seed=args.seed,
        duration=duration,
        strategy=args.strategy,
        initial_backends=args.initial,
        max_backends=args.max_backends,
        clients=args.clients,
        connections=args.connections,
        burst=not args.no_burst,
        insight=args.timeline is not None,
    )
    if args.controllers:
        if args.controllers.strip() == "all":
            controllers = available_controllers()
        else:
            controllers = [
                part.strip()
                for part in args.controllers.split(",")
                if part.strip()
            ]
        registered = available_controllers()
        for name in controllers:
            if name not in registered:
                raise ConfigError(
                    "unknown control strategy %r (registered: %s)"
                    % (name, ", ".join(registered))
                )
        rows = run_elastic_race(
            controllers,
            base=base,
            jobs=args.jobs,
            store=ResultStore(args.store),
        )
        print(race_table(rows))
        return 0
    elastic = run_elastic(base)
    print(elastic.report())
    if args.timeline is not None:
        elastic.scenario.insight.export(args.timeline)
        print("timeline written: %s" % args.timeline)
    return 0


def _chaos_command(args: argparse.Namespace, duration: int) -> int:
    """The ``repro chaos`` verb: campaign or artifact replay."""
    from repro.campaign import (
        CampaignConfig,
        GeneratorConfig,
        load_violations,
        replay_artifact,
        run_campaign,
    )

    store = ResultStore(args.store)
    use_cache = not args.no_cache

    if args.action == "replay":
        if not args.artifact:
            raise ConfigError("replay needs an artifact path")
        point, row = replay_artifact(
            args.artifact, store=store, use_cache=use_cache
        )
        recorded = load_violations(args.artifact)
        print(
            "replayed run %d (%s, seed %d): %d faults, %d invariant "
            "checks, %d violations"
            % (
                point.run,
                point.strategy,
                point.seed,
                len(point.faults),
                row["checks"],
                row["violations"],
            )
        )
        for name in row["violated"]:
            for message in row["details"][name]:
                print("  %s: %s" % (name, message))
        if sorted(row["violated"]) == sorted(recorded):
            print("verdict matches the artifact (recorded: %s)"
                  % (", ".join(sorted(recorded)) or "none"))
        else:
            print(
                "verdict CHANGED: artifact recorded %s"
                % (", ".join(sorted(recorded)) or "none")
            )
        return 1 if row["violations"] else 0

    if args.controllers.strip() == "all":
        controllers = available_controllers()
    else:
        controllers = [
            part.strip() for part in args.controllers.split(",") if part.strip()
        ]
    invariants = None
    if args.invariants:
        invariants = tuple(
            part.strip() for part in args.invariants.split(",") if part.strip()
        )
    config = CampaignConfig(
        seed=args.seed,
        runs=args.runs,
        duration=duration,
        n_servers=args.servers,
        n_clients=args.clients,
        controllers=tuple(controllers),
        generator=GeneratorConfig(
            max_faults=args.max_faults, intensity_budget=args.budget
        ),
        invariants=invariants,
        fleet_every=args.fleet_every,
        insight=args.timelines is not None,
    )
    campaign = run_campaign(
        config,
        jobs=args.jobs,
        store=store,
        use_cache=use_cache,
        progress=print_progress,
        artifact_dir=args.artifacts,
        timeline_dir=args.timelines,
    )
    print(campaign.table())
    print(campaign.summary())
    for path in campaign.timelines:
        print("timeline written: %s" % path)
    violating = campaign.violating()
    if violating:
        for path in campaign.artifacts:
            print("reproducer written: %s" % path)
        print(
            "%d of %d runs violated invariants"
            % (len(violating), len(campaign.points)),
            file=sys.stderr,
        )
        return 1
    return 0


def _compare_command(args: argparse.Namespace, duration: int) -> int:
    """The ``repro compare`` verb: race the zoo, print the leaderboard."""
    presets = args.preset or list(RACE_PRESETS)
    if args.controllers:
        controllers = [
            part.strip() for part in args.controllers.split(",") if part.strip()
        ]
    else:
        controllers = available_controllers()
    compare = run_compare(
        presets,
        controllers,
        seed=args.seed,
        duration=duration,
        n_servers=args.servers,
        n_clients=args.clients,
        jobs=args.jobs,
        store=ResultStore(args.store),
        use_cache=not args.no_cache,
        progress=print_progress,
        insight=args.timelines is not None,
    )
    print(compare.leaderboard())
    print(compare.summary())
    if args.timelines is not None:
        for path in compare.write_timelines(args.timelines):
            print("timeline written: %s" % path)
    return 0


def _sweep_command(args: argparse.Namespace, duration: int) -> int:
    """The ``repro sweep`` verb: build the spec, run it, print rows."""
    import os

    inline_axes = (
        args.grid or args.zip_axes or args.seeds or args.fault or args.strategy
    )
    if args.spec and inline_axes:
        raise ConfigError("give either a spec file or inline axes, not both")

    if args.spec:
        spec = load_spec(args.spec)
    else:
        faults = []
        for text in args.fault:
            faults.extend(parse_faults(text, duration))
        policy = PolicyName(args.policy) if args.policy else PolicyName.FEEDBACK
        base = ScenarioConfig(
            seed=args.seed,
            duration=duration,
            policy=policy,
            faults=faults,
            warmup=duration // 10,
        )
        seeds = None
        if args.seeds:
            try:
                seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
            except ValueError:
                raise ConfigError("--seeds must be a comma list of integers") from None
        grid = dict(parse_axis(text) for text in args.grid)
        if args.strategy:
            strategies = [
                part.strip() for part in args.strategy.split(",") if part.strip()
            ]
            registered = available_controllers()
            for name in strategies:
                if name not in registered:
                    raise ConfigError(
                        "unknown control strategy %r (registered: %s)"
                        % (name, ", ".join(registered))
                    )
            grid["feedback.strategy"] = strategies
        spec = SweepSpec(
            base=base,
            grid=grid,
            zipped=dict(parse_axis(text) for text in args.zip_axes),
            seeds=seeds,
            name=args.name,
        )

    if args.resume and not os.path.isdir(args.store):
        raise ConfigError(
            "--resume: store %r does not exist (nothing to resume)" % args.store
        )
    store = ResultStore(args.store)

    report = run_sweep(
        spec,
        jobs=args.jobs,
        store=store,
        use_cache=not args.no_cache,
        progress=print_progress,
    )

    headers: List[str] = []
    for row in report.rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    table_rows = [
        [outcome.label] + [_cell(outcome.row.get(h)) for h in headers]
        for outcome in report.outcomes
    ]
    if table_rows:
        print(format_table(["point"] + headers, table_rows))
    print(report.summary(spec.name))
    return 0


def _cell(value: object) -> object:
    """Render one row value for the table: compact but lossless."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%g" % value
    if isinstance(value, dict):
        return ",".join("%s=%s" % (k, v) for k, v in sorted(value.items()))
    return value


def _us(value) -> str:
    return "-" if value is None else "%.0fus" % to_micros(value)


def _ms(value) -> str:
    return "-" if value is None else "%.3f" % to_millis(value)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
