"""Command-line interface: ``python -m repro <command>``.

Runs the paper's experiments and the ablation sweeps from a terminal,
printing the same reports the benchmarks persist.  Intended for quick
exploration; the benchmark suite remains the canonical reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.faults import PRESETS, parse_faults
from repro.harness.ablations import (
    sweep_ack_and_pacing,
    sweep_alpha,
    sweep_ensemble,
    sweep_epoch,
    sweep_far_clients,
    sweep_hysteresis,
    sweep_pipeline_depth,
    sweep_policies,
)
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.figures import (
    BacklogConfig,
    Fig3Config,
    run_error_decomposition,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_reaction,
)
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.units import MICROSECONDS, to_micros, to_millis

_SWEEPS = {
    "epoch": sweep_epoch,
    "alpha": sweep_alpha,
    "ensemble": sweep_ensemble,
    "hysteresis": sweep_hysteresis,
    "policies": sweep_policies,
    "far-clients": sweep_far_clients,
    "pipeline": sweep_pipeline_depth,
    "ack-pacing": sweep_ack_and_pacing,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-band feedback control for load balancers (HotNets '22) "
        "— reproduction experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default 1)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="simulated seconds (default 2.0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one scenario and print its report")
    run_cmd.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default=PolicyName.FEEDBACK.value,
    )
    run_cmd.add_argument("--servers", type=int, default=2)
    run_cmd.add_argument("--clients", type=int, default=1)
    run_cmd.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos-plane fault: a preset name (%s) or an inline spec "
        "like 'delay:node=server0,start=1s,extra=1ms'; repeatable"
        % ", ".join(sorted(PRESETS)),
    )

    sub.add_parser("fig2a", help="paper Fig 2(a): fixed timeouts vs truth")
    sub.add_parser("fig2b", help="paper Fig 2(b): the ensemble tracks truth")
    sub.add_parser("fig3", help="paper Fig 3: Maglev vs latency-aware LB")
    sub.add_parser("reaction", help="reaction-time claim (§1/§4)")
    sub.add_parser("error", help="error-model identity (§3)")

    ablation = sub.add_parser("ablation", help="run a parameter sweep")
    ablation.add_argument("sweep", choices=sorted(_SWEEPS))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    duration = units.seconds(args.duration)

    if args.command == "run":
        faults = []
        for spec in args.fault:
            faults.extend(parse_faults(spec, duration))
        config = ScenarioConfig(
            seed=args.seed,
            duration=duration,
            n_clients=args.clients,
            n_servers=args.servers,
            policy=PolicyName(args.policy),
            faults=faults,
            warmup=duration // 10,
        )
        print(run_scenario(config).report())
        return 0

    if args.command == "fig2a":
        config = BacklogConfig(
            seed=args.seed, duration=duration, step_at=duration // 2
        )
        result = run_fig2a(config)
        rows = []
        for delta, (pre, post) in sorted(result.sample_counts.items()):
            rows.append(
                (
                    "%dus" % (delta // MICROSECONDS),
                    pre,
                    _us(result.median_estimate(delta, False)),
                    post,
                    _us(result.median_estimate(delta, True)),
                )
            )
        rows.append(
            (
                "truth",
                "",
                _us(result.median_ground_truth(False)),
                "",
                _us(result.median_ground_truth(True)),
            )
        )
        print(
            format_table(
                ("delta", "#pre", "median pre", "#post", "median post"), rows
            )
        )
        return 0

    if args.command == "fig2b":
        config = BacklogConfig(
            seed=args.seed, duration=duration, step_at=duration // 2
        )
        result = run_fig2b(config)
        print(
            format_table(
                ("window", "median T_LB", "median T_client", "rel.err"),
                [
                    (
                        "pre-step",
                        _us(result.median_estimate(False)),
                        _us(result.median_ground_truth(False)),
                        "%.3f" % result.tracking_error(False),
                    ),
                    (
                        "post-step",
                        _us(result.median_estimate(True)),
                        _us(result.median_ground_truth(True)),
                        "%.3f" % result.tracking_error(True),
                    ),
                ],
            )
        )
        return 0

    if args.command == "fig3":
        config = Fig3Config(seed=args.seed, duration=duration)
        result = run_fig3(config)
        rows = []
        for policy in ("maglev", "feedback"):
            rows.append(
                (
                    policy,
                    _ms(result.steady_state_p95(policy)),
                    _ms(result.post_injection_p95(policy, config.duration // 8)),
                )
            )
        print(
            format_table(
                ("arm", "pre-fault p95 (ms)", "post-fault p95 (ms)"), rows
            )
        )
        return 0

    if args.command == "reaction":
        result = run_reaction(Fig3Config(seed=args.seed, duration=duration))
        if result.reaction_ns is None:
            print("no shift observed after the injection")
            return 1
        print("first shift: +%.2f ms after injection" % to_millis(result.reaction_ns))
        if result.injected_weight_floor_at is not None:
            print(
                "weight floor reached: +%.2f ms"
                % to_millis(result.injected_weight_floor_at - result.injection_at)
            )
        return 0

    if args.command == "error":
        rows = []
        for think_us in (0, 100, 500):
            result = run_error_decomposition(
                think_us * MICROSECONDS, duration=duration, seed=args.seed
            )
            rows.append(
                (
                    think_us,
                    "%.1f" % to_micros(result.median_t_client),
                    "%.1f" % to_micros(result.median_t_lb),
                    "%.1f" % to_micros(result.measured_error),
                    "%.1f" % to_micros(result.identity_gap),
                )
            )
        print(
            format_table(
                ("think (us)", "T_client (us)", "T_LB (us)", "err (us)", "gap (us)"),
                rows,
            )
        )
        return 0

    if args.command == "ablation":
        rows = _SWEEPS[args.sweep]()
        headers = list(rows[0].keys())
        print(format_table(headers, [[row[h] for h in headers] for row in rows]))
        return 0

    return 2  # unreachable: argparse enforces the command set


def _us(value) -> str:
    return "-" if value is None else "%.0fus" % to_micros(value)


def _ms(value) -> str:
    return "-" if value is None else "%.3f" % to_millis(value)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
