"""Discrete-event simulation substrate.

The engine (:class:`~repro.sim.engine.Simulator`) maintains an integer
nanosecond clock and a priority queue of callbacks.  All other packages
(network, transport, applications, the load balancer) schedule their work
through it, which makes every experiment fully deterministic given a seed.
"""

from repro.sim.engine import Simulator, EventHandle, Timer
from repro.sim.random import RandomStreams

__all__ = ["Simulator", "EventHandle", "Timer", "RandomStreams"]
