"""Named, independently-seeded random streams.

Experiments need both reproducibility (same seed ⇒ same trace) and
*isolation*: adding a draw to one component must not perturb another
component's sequence.  :class:`RandomStreams` hands each named component
its own ``random.Random`` seeded from the root seed and the stream name,
so streams are stable under code evolution elsewhere.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(*parts: object) -> int:
    """Deterministic 64-bit seed from any printable parts.

    The single seed-derivation rule for the whole system: named streams,
    stream-family forks, and sweep points all hash their identity through
    here, so a seed derived in a worker process equals the seed derived
    in-process for the same identity — multiprocessing fan-out cannot
    perturb randomness (the sweep executor's determinism contract).
    """
    text = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of per-component deterministic RNGs.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("client.arrivals")
    >>> b = streams.get("server.service")
    >>> a is streams.get("client.arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Root seed all streams derive from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent stream family (e.g. per-client)."""
        return RandomStreams(derive_seed(self._seed, "fork", salt))
