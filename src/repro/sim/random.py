"""Named, independently-seeded random streams.

Experiments need both reproducibility (same seed ⇒ same trace) and
*isolation*: adding a draw to one component must not perturb another
component's sequence.  :class:`RandomStreams` hands each named component
its own ``random.Random`` seeded from the root seed and the stream name,
so streams are stable under code evolution elsewhere.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of per-component deterministic RNGs.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("client.arrivals")
    >>> b = streams.get("server.service")
    >>> a is streams.get("client.arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Root seed all streams derive from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                ("%d/%s" % (self._seed, name)).encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent stream family (e.g. per-client)."""
        digest = hashlib.sha256(
            ("%d/fork/%s" % (self._seed, salt)).encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
