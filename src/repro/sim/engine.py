"""Discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock (integer nanoseconds) and a
binary-heap event queue.  Events are ``(time, sequence, payload)`` tuples;
the monotonically increasing sequence number breaks ties so that two events
scheduled for the same instant fire in scheduling order, which keeps runs
deterministic.

Two scheduling surfaces share the queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` that supports cancellation — protocol timers
  (retransmission, delayed ACKs) need to disarm.
* :meth:`Simulator.schedule_fire` / :meth:`Simulator.schedule_fire_at`
  are the fire-and-forget fast path: the bare callback is pushed onto the
  heap with no handle object at all.  Packet deliveries and one-shot
  sends — the bulk of a simulation's events — never cancel, so they skip
  the allocation entirely.

Cancellation is handled with tombstones: :meth:`EventHandle.cancel` marks
the entry dead and the main loop skips it, avoiding O(n) heap surgery.
The simulator counts live tombstones and compacts the heap in place when
more than half of the queued entries are dead, so restartable timers that
re-arm long deadlines (retransmit timers bumped on every ACK) cannot grow
the heap without bound.  :attr:`Simulator.live_events` excludes
tombstones; :attr:`Simulator.pending_events` includes them.

Two batching surfaces let bulk producers skip the per-event heap churn:

* :meth:`Simulator.schedule_fire_many` accepts a sorted *column* of fire
  times sharing one callback.  The column is kept in a side "run lane"
  (one entry per column, not per event) and merged against the heap in
  bisect-bounded chunks; a scheduling version counter forces a re-merge
  whenever a callback schedules new work, so ordering stays exactly what
  per-event pushes would have produced.
* The pipe delivery pump (:mod:`repro.net.pipe`) delivers consecutive
  arrivals *inline* inside one engine event.  The engine exposes the
  contract it needs: :attr:`Simulator.inline_ok` /
  :attr:`Simulator.inline_until` (set only while an unbounded drain is
  running), :meth:`Simulator.next_key` (the heap/run-lane key the next
  inline delivery must precede), and :meth:`Simulator.inline_fire`
  (advances the clock and the event counter per delivered packet, so
  ``events_processed`` and report footers are identical to the
  one-event-per-packet trajectory).

Work parked *outside* the heap (pipe arrival queues, run-lane columns)
is tracked separately so load metrics stay honest: a 1k-packet batch
must not read as queue depth 1.  :meth:`Simulator.note_parked` feeds
:attr:`Simulator.parked_packets`, :attr:`Simulator.pending_load`, and
the :attr:`Simulator.peak_load` high-water mark, while the legacy
:attr:`Simulator.peak_queue_depth` keeps its historical heap-entry
semantics (a "phantom" entry stands in for the heap slot the old
per-packet pump would have occupied mid-batch, so the metric's
trajectory is unchanged).

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1000, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1000]
"""

from __future__ import annotations

import gc
import heapq
from bisect import bisect_left, bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Compaction is skipped below this queue size — rebuilding a tiny heap
#: costs more than skipping a handful of tombstones at pop time.
_COMPACT_MIN_QUEUE = 64


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Returned by :meth:`Simulator.schedule` and :meth:`Simulator.schedule_at`.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_fired", "_sim")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], sim=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self.callback = _NOOP  # free closure references promptly
        sim = self._sim
        if sim is not None:
            sim._note_tombstone()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return "EventHandle(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


def _NOOP() -> None:
    return None


class Simulator:
    """Deterministic discrete-event loop with an integer-nanosecond clock.

    The simulator never advances time on its own: it jumps from event to
    event.  ``run_until`` bounds the clock, which is how experiment
    durations are expressed.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        # (time, seq, EventHandle) for cancellable events,
        # (time, seq, bare callback) for fire-and-forget ones.
        self._queue: List[tuple] = []
        self._tombstones = 0
        self._running = False
        self._events_processed = 0
        self._peak_queue_depth = 0
        # Run lane: unordered list of [next_time, next_seq, idx, times,
        # callback] columns from schedule_fire_many.  Scanned with min()
        # (columns are few); entries are mutated in place as they drain.
        self._runs: List[list] = []
        self._run_pending = 0
        # Bumped on every push (heap or run lane); chunked drains re-merge
        # when a callback dirtied the schedule mid-chunk.
        self._version = 0
        # Heap entries the old one-event-per-packet pump *would* have
        # held while a batch drain is mid-flight; keeps peak_queue_depth
        # byte-identical to the per-packet trajectory.
        self._phantom = 0
        # Honest load accounting: work parked outside the heap (pipe
        # arrival queues) plus its high-water mark including the heap.
        self._parked = 0
        self._peak_load = 0
        # Set only while an unbounded _drain is running; the pipe pump
        # checks these before delivering arrivals inline.
        self._inline_ok = False
        self._until: Optional[int] = None
        #: Optional observer with a ``run(callback)`` method; when set,
        #: every event dispatch routes through it (see
        #: :class:`repro.obs.profiler.EngineProfiler`).  The profiler
        #: observes only — it never touches the clock or the queue.
        self._profiler = None

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far (for throughput benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued, **including** cancelled tombstones.

        This over-reports outstanding work when restartable timers have
        left tombstones behind; use :attr:`live_events` for the number of
        events that will actually fire.
        """
        return len(self._queue) + self._run_pending

    @property
    def live_events(self) -> int:
        """Events still queued that will actually fire (no tombstones)."""
        return len(self._queue) - self._tombstones + self._run_pending

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event queue (simulation cost metric)."""
        return self._peak_queue_depth

    @property
    def parked_packets(self) -> int:
        """Deliverable work parked outside the heap (pipe arrival queues).

        The per-pipe pump keeps one heap entry per pipe no matter how
        many packets wait behind it; this counter is where those packets
        show up.  Fed by :meth:`note_parked`.
        """
        return self._parked

    @property
    def pending_load(self) -> int:
        """Honest outstanding work: live events plus parked packets.

        Unlike :attr:`live_events`, a pipe holding 1000 queued arrivals
        behind its single pump entry reports 1000 here, not 1.
        """
        return len(self._queue) - self._tombstones + self._run_pending + self._parked

    @property
    def peak_load(self) -> int:
        """High-water mark of :attr:`pending_load`."""
        return self._peak_load

    def note_parked(self, delta: int) -> None:
        """Adjust :attr:`parked_packets` by ``delta`` (may be negative).

        Called by pipes as packets enter/leave their arrival queues, so
        the load high-water mark sees every parked packet even though
        only one heap entry per pipe exists.
        """
        self._parked += delta
        if delta > 0:
            load = (
                len(self._queue) - self._tombstones + self._run_pending + self._parked
            )
            if load > self._peak_load:
                self._peak_load = load

    @property
    def inline_ok(self) -> bool:
        """True while an unbounded drain is running (inline delivery safe)."""
        return self._inline_ok

    @property
    def inline_until(self) -> Optional[int]:
        """Clock bound of the running drain (None = unbounded)."""
        return self._until

    def next_key(self) -> Optional[Tuple[int, int]]:
        """``(time, seq)`` of the next live scheduled event, or None.

        Skips (and discards) cancelled heap heads, and considers run-lane
        columns.  The pipe pump must only deliver an arrival inline while
        the arrival's key precedes this one — otherwise an interleaved
        event would be reordered.
        """
        queue = self._queue
        key: Optional[Tuple[int, int]] = None
        while queue:
            head = queue[0]
            payload = head[2]
            if payload.__class__ is EventHandle and payload._cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            key = (head[0], head[1])
            break
        runs = self._runs
        if runs:
            run = runs[0] if len(runs) == 1 else min(runs)
            run_key = (run[0], run[1])
            if key is None or run_key < key:
                key = run_key
        return key

    def inline_fire(self, time: int) -> None:
        """Account one inline-delivered packet at virtual time ``time``.

        The pump calls this for every arrival it delivers *after* the
        first one in its engine event, so ``events_processed`` counts
        exactly what the one-event-per-packet pump would have counted.
        """
        self._now = time
        self._events_processed += 1

    def inline_fire_batch(self, time: int, count: int) -> None:
        """Account ``count`` inline deliveries at ``time`` in one call.

        The pump's bulk drain uses this when an entire same-instant batch
        is delivered through one callback: ``events_processed`` advances
        by exactly what per-packet :meth:`inline_fire` calls would have
        accumulated.
        """
        self._now = time
        self._events_processed += count

    def set_phantom(self, count: int) -> None:
        """Stand-in heap entries for a batch drain in progress.

        While the pump delivers arrivals inline, the old per-packet pump
        would have kept one re-armed heap entry alive; ``count`` (0 or 1)
        keeps :attr:`peak_queue_depth` on that exact trajectory.
        """
        self._phantom = count

    def set_profiler(self, profiler) -> None:
        """Install (or remove, with None) a per-event dispatch observer."""
        self._profiler = profiler

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError("cannot schedule %d ns in the past" % delay)
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%d, already at t=%d" % (time, self._now)
            )
        self._seq += 1
        self._version += 1
        handle = EventHandle(time, self._seq, callback, self)
        heapq.heappush(self._queue, (time, self._seq, handle))
        # _note_push() inlined: this and schedule_fire_at are the two
        # hottest push sites.
        depth = len(self._queue) + self._run_pending + self._phantom
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        load = depth - self._phantom - self._tombstones + self._parked
        if load > self._peak_load:
            self._peak_load = load
        return handle

    def schedule_fire(self, delay: int, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        For events that are never cancelled (packet deliveries, one-shot
        sends) this skips the handle allocation on the hot path.  There
        is no way to cancel the event once scheduled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule %d ns in the past" % delay)
        self.schedule_fire_at(self._now + delay, callback)

    def schedule_fire_at(
        self,
        time: int,
        callback: Callable[[], None],
        seq: Optional[int] = None,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`.

        ``seq`` may be a value previously obtained from
        :meth:`reserve_seq`; this lets a caller that batches events (the
        pipe delivery pump) keep the exact tie-breaking order the events
        would have had if each had been pushed at reservation time.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%d, already at t=%d" % (time, self._now)
            )
        if seq is None:
            self._seq += 1
            seq = self._seq
        self._version += 1
        heapq.heappush(self._queue, (time, seq, callback))
        depth = len(self._queue) + self._run_pending + self._phantom
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        load = depth - self._phantom - self._tombstones + self._parked
        if load > self._peak_load:
            self._peak_load = load

    def _note_push(self) -> None:
        """Peak bookkeeping after any push (heap or run lane)."""
        depth = len(self._queue) + self._run_pending + self._phantom
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        load = depth - self._phantom - self._tombstones + self._parked
        if load > self._peak_load:
            self._peak_load = load

    def schedule_fire_many(
        self, times: Sequence[int], callback: Callable[[], None]
    ) -> None:
        """Schedule a sorted column of fire-and-forget events at once.

        ``times`` are absolute timestamps, non-decreasing, none in the
        past.  The whole column costs one run-lane entry instead of
        ``len(times)`` heap pushes; consecutive sequence numbers are
        reserved so ties against heap events break exactly as if each
        event had been pushed individually at call time.  The list is
        owned by the simulator after the call — don't mutate it.
        """
        n = len(times)
        if n == 0:
            return
        col = list(times)
        if col[0] < self._now:
            raise SimulationError(
                "cannot schedule at t=%d, already at t=%d" % (col[0], self._now)
            )
        if n > 1 and col != sorted(col):
            raise SimulationError("schedule_fire_many times must be non-decreasing")
        base = self._seq + 1
        self._seq += n
        self._version += 1
        self._runs.append([col[0], base, 0, col, callback])
        self._run_pending += n
        self._note_push()

    def reserve_seq(self) -> int:
        """Claim the next tie-breaking sequence number without scheduling.

        Pass the reserved value to :meth:`schedule_fire_at` later to make
        the event order exactly as if it had been scheduled now.  Each
        reserved value must be used at most once.
        """
        self._seq += 1
        return self._seq

    def reserve_seq_block(self, n: int) -> int:
        """Claim ``n`` consecutive tie-breaking seqs; returns the first.

        Equivalent to ``n`` :meth:`reserve_seq` calls — the batch send
        path uses this so a whole wave of packets keeps the exact tie
        order per-packet sends would have reserved.
        """
        first = self._seq + 1
        self._seq += n
        return first

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        pause = gc.isenabled()
        if pause:
            gc.disable()
        try:
            return self._drain(until=None, max_events=max_events)
        finally:
            if pause:
                gc.enable()

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``; clock ends at ``time``.

        Events scheduled beyond ``time`` stay queued, so simulations can be
        resumed with further ``run_until`` calls.

        The cyclic garbage collector is paused for the duration of the
        drain (as in :meth:`run`): the hot path allocates heavily but
        creates no cycles, and generation scans were measured at ~15% of
        wall time on packet-bound runs.  Anything cyclic the simulation
        built up is reclaimed by the re-enabled collector afterwards.
        """
        pause = gc.isenabled()
        if pause:
            gc.disable()
        try:
            processed = self._drain(until=time, max_events=max_events)
        finally:
            if pause:
                gc.enable()
        if self._now < time:
            self._now = time
        return processed

    def step(self) -> bool:
        """Fire the single next live event.  Returns False if none remain."""
        if self._runs:
            run = self._runs[0] if len(self._runs) == 1 else min(self._runs)
            key = None
            queue = self._queue
            while queue:
                head = queue[0]
                payload = head[2]
                if payload.__class__ is EventHandle and payload._cancelled:
                    heapq.heappop(queue)
                    self._tombstones -= 1
                    continue
                key = (head[0], head[1])
                break
            if key is None or (run[0], run[1]) < key:
                self._fire_run_event(run)
                return True
        while self._queue:
            time, _seq, payload = heapq.heappop(self._queue)
            if payload.__class__ is EventHandle:
                if payload._cancelled:
                    self._tombstones -= 1
                    continue
                payload._fired = True
                callback = payload.callback
            else:
                callback = payload
            self._now = time
            self._events_processed += 1
            if self._profiler is None:
                callback()
            else:
                self._profiler.run(callback)
            return True
        return False

    def _fire_run_event(self, run: list) -> None:
        """Fire exactly the head event of one run-lane column."""
        times = run[3]
        idx = run[2]
        self._now = times[idx]
        self._run_pending -= 1
        idx += 1
        if idx >= len(times):
            self._runs.remove(run)
        else:
            run[0] = times[idx]
            run[1] += 1
            run[2] = idx
        self._events_processed += 1
        callback = run[4]
        if self._profiler is None:
            callback()
        else:
            self._profiler.run(callback)

    def _drain(self, until: Optional[int], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("re-entrant run() call")
        self._running = True
        # Inline delivery (pipe pump batches) is only sound when the
        # drain is unbounded in event count: run(max_events)/step() need
        # one event per packet to mean one packet.
        self._inline_ok = max_events is None
        self._until = until
        start = self._events_processed
        processed = 0
        queue = self._queue
        runs = self._runs
        heappop = heapq.heappop
        profiler = self._profiler
        handle_class = EventHandle
        try:
            while True:
                if runs:
                    run = runs[0] if len(runs) == 1 else min(runs)
                    # Skip dead heap heads so the merge compares live keys.
                    while queue:
                        head = queue[0]
                        payload = head[2]
                        if payload.__class__ is handle_class and payload._cancelled:
                            heappop(queue)
                            self._tombstones -= 1
                            continue
                        break
                    if not queue or (run[0], run[1]) < (queue[0][0], queue[0][1]):
                        if until is not None and run[0] > until:
                            break
                        if max_events is not None and processed >= max_events:
                            break
                        processed += self._fire_run_chunk(
                            run, until, max_events, processed, profiler
                        )
                        continue
                elif not queue:
                    break
                entry = queue[0]
                payload = entry[2]
                is_handle = payload.__class__ is handle_class
                if is_handle:
                    if payload._cancelled:
                        heappop(queue)
                        self._tombstones -= 1
                        continue
                    callback = payload.callback
                else:
                    callback = payload
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heappop(queue)
                if is_handle:
                    payload._fired = True
                self._now = entry[0]
                if profiler is None:
                    callback()
                else:
                    profiler.run(callback)
                processed += 1
        finally:
            self._running = False
            self._inline_ok = False
            self._until = None
            # Inline pump deliveries already bumped _events_processed
            # directly; fold in the heap/run events fired by this frame.
            self._events_processed += processed
        return self._events_processed - start

    def _fire_run_chunk(
        self,
        run: list,
        until: Optional[int],
        max_events: Optional[int],
        processed: int,
        profiler,
    ) -> int:
        """Fire the longest safe prefix of one run-lane column.

        The chunk is bounded by the heap head's key (events interleave
        exactly as per-event pushes would), by ``until``/``max_events``,
        and by the scheduling version: the tight loop bails as soon as a
        callback schedules anything, letting the caller re-merge.
        """
        queue = self._queue
        times = run[3]
        idx = run[2]
        n = len(times)
        # The chunk must stop at the next event from ANY other lane —
        # the heap head or a sibling run column.
        bound = (queue[0][0], queue[0][1]) if queue else None
        for other in self._runs:
            if other is not run:
                other_key = (other[0], other[1])
                if bound is None or other_key < bound:
                    bound = other_key
        if bound is not None:
            hi = bisect_left(times, bound[0], idx, n)
            if hi == idx:
                # Head event shares the bound's timestamp but wins the
                # seq tie (caller checked); fire just that one.
                hi = idx + 1
        else:
            hi = n
        if until is not None and times[hi - 1] > until:
            hi = bisect_right(times, until, idx, hi)
        if max_events is not None:
            budget = max_events - processed
            if hi - idx > budget:
                hi = idx + budget
        callback = run[4]
        version = self._version
        # Iterate a slice instead of indexing: the for-loop's C-level
        # iteration is ~3x faster per event than `times[idx]; idx += 1`,
        # and this loop is the engine's dispatch ceiling.
        fired = 0
        if profiler is None:
            for t in times[idx:hi]:
                self._now = t
                callback()
                fired += 1
                if self._version != version:
                    break
        else:
            for t in times[idx:hi]:
                self._now = t
                profiler.run(callback)
                fired += 1
                if self._version != version:
                    break
        idx += fired
        self._run_pending -= fired
        if idx >= n:
            self._runs.remove(run)
        else:
            run[0] = times[idx]
            run[1] += fired
            run[2] = idx
        return fired

    # ------------------------------------------------------------------
    # Tombstone hygiene
    # ------------------------------------------------------------------

    def _note_tombstone(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts when dead
        entries outnumber live ones."""
        self._tombstones += 1
        # The phantom (a pump entry conceptually re-armed during an
        # inline batch) counts toward the queue size so compaction
        # triggers at the same instants as the one-event-per-packet
        # scheme.
        depth = len(self._queue) + self._phantom
        if depth >= _COMPACT_MIN_QUEUE and self._tombstones * 2 > depth:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, **in place**.

        The queue list object is mutated (not replaced) so that a drain
        loop holding a local alias keeps seeing the compacted heap even
        when a callback triggers compaction mid-run.
        """
        queue = self._queue
        queue[:] = [
            entry
            for entry in queue
            if not (entry[2].__class__ is EventHandle and entry[2]._cancelled)
        ]
        heapq.heapify(queue)
        self._tombstones = 0


class Timer:
    """A restartable one-shot timer, the building block for protocol timers.

    Wraps scheduling/cancellation so client code (retransmission, delayed
    ACKs, epoch boundaries) doesn't juggle raw handles.  ``start`` on a
    running timer reschedules it.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def deadline(self) -> Optional[int]:
        """Absolute fire time, or None when idle."""
        if self.running:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: int) -> None:
        """Arm (or re-arm) the timer ``delay`` ns from now."""
        self.stop()
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
