"""Discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock (integer nanoseconds) and a
binary-heap event queue.  Events are ``(time, sequence, payload)`` tuples;
the monotonically increasing sequence number breaks ties so that two events
scheduled for the same instant fire in scheduling order, which keeps runs
deterministic.

Two scheduling surfaces share the queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` that supports cancellation — protocol timers
  (retransmission, delayed ACKs) need to disarm.
* :meth:`Simulator.schedule_fire` / :meth:`Simulator.schedule_fire_at`
  are the fire-and-forget fast path: the bare callback is pushed onto the
  heap with no handle object at all.  Packet deliveries and one-shot
  sends — the bulk of a simulation's events — never cancel, so they skip
  the allocation entirely.

Cancellation is handled with tombstones: :meth:`EventHandle.cancel` marks
the entry dead and the main loop skips it, avoiding O(n) heap surgery.
The simulator counts live tombstones and compacts the heap in place when
more than half of the queued entries are dead, so restartable timers that
re-arm long deadlines (retransmit timers bumped on every ACK) cannot grow
the heap without bound.  :attr:`Simulator.live_events` excludes
tombstones; :attr:`Simulator.pending_events` includes them.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1000, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1000]
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError

#: Compaction is skipped below this queue size — rebuilding a tiny heap
#: costs more than skipping a handful of tombstones at pop time.
_COMPACT_MIN_QUEUE = 64


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Returned by :meth:`Simulator.schedule` and :meth:`Simulator.schedule_at`.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_fired", "_sim")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], sim=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self.callback = _NOOP  # free closure references promptly
        sim = self._sim
        if sim is not None:
            sim._note_tombstone()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return "EventHandle(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


def _NOOP() -> None:
    return None


class Simulator:
    """Deterministic discrete-event loop with an integer-nanosecond clock.

    The simulator never advances time on its own: it jumps from event to
    event.  ``run_until`` bounds the clock, which is how experiment
    durations are expressed.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        # (time, seq, EventHandle) for cancellable events,
        # (time, seq, bare callback) for fire-and-forget ones.
        self._queue: List[tuple] = []
        self._tombstones = 0
        self._running = False
        self._events_processed = 0
        self._peak_queue_depth = 0
        #: Optional observer with a ``run(callback)`` method; when set,
        #: every event dispatch routes through it (see
        #: :class:`repro.obs.profiler.EngineProfiler`).  The profiler
        #: observes only — it never touches the clock or the queue.
        self._profiler = None

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far (for throughput benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued, **including** cancelled tombstones.

        This over-reports outstanding work when restartable timers have
        left tombstones behind; use :attr:`live_events` for the number of
        events that will actually fire.
        """
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Events still queued that will actually fire (no tombstones)."""
        return len(self._queue) - self._tombstones

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event queue (simulation cost metric)."""
        return self._peak_queue_depth

    def set_profiler(self, profiler) -> None:
        """Install (or remove, with None) a per-event dispatch observer."""
        self._profiler = profiler

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError("cannot schedule %d ns in the past" % delay)
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%d, already at t=%d" % (time, self._now)
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, callback, self)
        heapq.heappush(self._queue, (time, self._seq, handle))
        if len(self._queue) > self._peak_queue_depth:
            self._peak_queue_depth = len(self._queue)
        return handle

    def schedule_fire(self, delay: int, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        For events that are never cancelled (packet deliveries, one-shot
        sends) this skips the handle allocation on the hot path.  There
        is no way to cancel the event once scheduled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule %d ns in the past" % delay)
        self.schedule_fire_at(self._now + delay, callback)

    def schedule_fire_at(
        self,
        time: int,
        callback: Callable[[], None],
        seq: Optional[int] = None,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`.

        ``seq`` may be a value previously obtained from
        :meth:`reserve_seq`; this lets a caller that batches events (the
        pipe delivery pump) keep the exact tie-breaking order the events
        would have had if each had been pushed at reservation time.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%d, already at t=%d" % (time, self._now)
            )
        if seq is None:
            self._seq += 1
            seq = self._seq
        heapq.heappush(self._queue, (time, seq, callback))
        if len(self._queue) > self._peak_queue_depth:
            self._peak_queue_depth = len(self._queue)

    def reserve_seq(self) -> int:
        """Claim the next tie-breaking sequence number without scheduling.

        Pass the reserved value to :meth:`schedule_fire_at` later to make
        the event order exactly as if it had been scheduled now.  Each
        reserved value must be used at most once.
        """
        self._seq += 1
        return self._seq

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        return self._drain(until=None, max_events=max_events)

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``; clock ends at ``time``.

        Events scheduled beyond ``time`` stay queued, so simulations can be
        resumed with further ``run_until`` calls.
        """
        processed = self._drain(until=time, max_events=max_events)
        if self._now < time:
            self._now = time
        return processed

    def step(self) -> bool:
        """Fire the single next live event.  Returns False if none remain."""
        while self._queue:
            time, _seq, payload = heapq.heappop(self._queue)
            if payload.__class__ is EventHandle:
                if payload._cancelled:
                    self._tombstones -= 1
                    continue
                payload._fired = True
                callback = payload.callback
            else:
                callback = payload
            self._now = time
            self._events_processed += 1
            if self._profiler is None:
                callback()
            else:
                self._profiler.run(callback)
            return True
        return False

    def _drain(self, until: Optional[int], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("re-entrant run() call")
        self._running = True
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        profiler = self._profiler
        handle_class = EventHandle
        try:
            while queue:
                entry = queue[0]
                payload = entry[2]
                is_handle = payload.__class__ is handle_class
                if is_handle:
                    if payload._cancelled:
                        heappop(queue)
                        self._tombstones -= 1
                        continue
                    callback = payload.callback
                else:
                    callback = payload
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heappop(queue)
                if is_handle:
                    payload._fired = True
                self._now = entry[0]
                if profiler is None:
                    callback()
                else:
                    profiler.run(callback)
                processed += 1
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    # ------------------------------------------------------------------
    # Tombstone hygiene
    # ------------------------------------------------------------------

    def _note_tombstone(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts when dead
        entries outnumber live ones."""
        self._tombstones += 1
        queue = self._queue
        if len(queue) >= _COMPACT_MIN_QUEUE and self._tombstones * 2 > len(queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, **in place**.

        The queue list object is mutated (not replaced) so that a drain
        loop holding a local alias keeps seeing the compacted heap even
        when a callback triggers compaction mid-run.
        """
        queue = self._queue
        queue[:] = [
            entry
            for entry in queue
            if not (entry[2].__class__ is EventHandle and entry[2]._cancelled)
        ]
        heapq.heapify(queue)
        self._tombstones = 0


class Timer:
    """A restartable one-shot timer, the building block for protocol timers.

    Wraps scheduling/cancellation so client code (retransmission, delayed
    ACKs, epoch boundaries) doesn't juggle raw handles.  ``start`` on a
    running timer reschedules it.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def deadline(self) -> Optional[int]:
        """Absolute fire time, or None when idle."""
        if self.running:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: int) -> None:
        """Arm (or re-arm) the timer ``delay`` ns from now."""
        self.stop()
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
