"""Labeled metric instruments and the per-scenario registry.

The observability plane's first pillar: :class:`Counter`,
:class:`Gauge`, and :class:`HistogramMetric` families, each optionally
labeled (``family.labels(backend="server0").inc()``), owned by one
:class:`Registry` per scenario.  Histograms reuse
:class:`repro.telemetry.histogram.LogHistogram` as their backend, so
latency metrics get log-bucketed resolution for free.

Exports are dependency-free: :meth:`Registry.to_json` for programmatic
consumers and :meth:`Registry.to_prometheus` for the text exposition
format real dataplanes scrape.  :func:`parse_prometheus_text` is the
matching strict line-format validator (used by tests and the CI smoke
job; it is a checker, not a full client).

Pull-style sources (pipe drop counters, engine stats) register a
*collect hook* — a callback the registry runs before every export — so
values that live elsewhere are refreshed at scrape time instead of
being pushed on every change.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.histogram import LogHistogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Malformed metric name, labels, or export text."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError("invalid metric name %r" % name)
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value losslessly (no %g precision cliff)."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return "%d" % int(value)
    return repr(float(value))


def format_labels(labels: Dict[str, str]) -> str:
    """Render a label dict in Prometheus sample syntax (sorted keys)."""
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, _escape_label_value(str(labels[key])))
        for key in sorted(labels)
    )
    return "{%s}" % inner


class _Family:
    """Common machinery: a named metric with labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        for label in self.label_names:
            if not _LABEL_NAME_RE.match(label):
                raise MetricError("invalid label name %r" % label)
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            # Label-less families have exactly one implicit child.
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: object):
        """The child for one label-value combination (created lazily)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                "metric %s takes labels %r, got %r"
                % (self.name, list(self.label_names), sorted(labels))
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def children(self) -> Iterator[Tuple[Dict[str, str], object]]:
        """Iterate ``(labels, child)`` pairs in insertion order."""
        for key, child in self._children.items():
            yield dict(zip(self.label_names, key)), child

    # Label-less convenience: the family proxies its single child.

    def _only_child(self):
        if self.label_names:
            raise MetricError(
                "metric %s is labeled; call .labels(...) first" % self.name
            )
        return self._children[()]


class _CounterChild:
    """Monotonic value for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError("counters only go up, got %r" % amount)
        self.value += amount


class Counter(_Family):
    """A monotonically increasing count (events, packets, samples)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._only_child().inc(amount)

    @property
    def value(self) -> float:
        """Value of the label-less child."""
        return self._only_child().value


class _GaugeChild:
    """Settable value for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust upward."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust downward."""
        self.value -= amount


class Gauge(_Family):
    """A value that can go up and down (queue depth, weight, mode)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the label-less child."""
        self._only_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._only_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less child."""
        self._only_child().dec(amount)

    @property
    def value(self) -> float:
        """Value of the label-less child."""
        return self._only_child().value


class _HistogramChild:
    """A :class:`LogHistogram` for one label combination."""

    __slots__ = ("histogram",)

    def __init__(self, base: float, sub: int) -> None:
        self.histogram = LogHistogram(base=base, sub=sub)

    def observe(self, value: float) -> None:
        """Record one (positive) observation."""
        self.histogram.record(value)


class HistogramMetric(_Family):
    """A log-bucketed distribution (latencies; values must be > 0)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        base: float = 2.0,
        sub: int = 4,
    ):
        self._base = base
        self._sub = sub
        super().__init__(name, help, label_names)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._base, self._sub)

    def observe(self, value: float) -> None:
        """Record into the label-less child."""
        self._only_child().observe(value)


class Registry:
    """All of one scenario's instruments, keyed by metric name."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collect_hooks: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self._families)

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch the identical existing) counter family."""
        return self._register(Counter(name, help, labels))

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        """Register (or fetch the identical existing) gauge family."""
        return self._register(Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        base: float = 2.0,
        sub: int = 4,
    ) -> HistogramMetric:
        """Register (or fetch the identical existing) histogram family."""
        return self._register(HistogramMetric(name, help, labels, base, sub))

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if (
                type(existing) is not type(family)
                or existing.label_names != family.label_names
            ):
                raise MetricError(
                    "metric %s already registered with a different "
                    "type or label set" % family.name
                )
            return existing
        self._families[family.name] = family
        return family

    def get(self, name: str) -> Optional[_Family]:
        """Look up a family by name (None when absent)."""
        return self._families.get(name)

    def families(self) -> List[_Family]:
        """All families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before every export (pull-style sources)."""
        self._collect_hooks.append(hook)

    def collect(self) -> None:
        """Refresh pull-style sources (runs every registered hook)."""
        for hook in self._collect_hooks:
            hook()

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, dict]:
        """Nested-dict rendering: name → type/help/samples."""
        self.collect()
        out: Dict[str, dict] = {}
        for family in self.families():
            samples = []
            for labels, child in family.children():
                if isinstance(child, _HistogramChild):
                    hist = child.histogram
                    samples.append(
                        {
                            "labels": labels,
                            "count": hist.total,
                            "sum": hist.sum,
                            "buckets": [
                                {"le": hi, "count": count}
                                for _lo, hi, count in hist.buckets()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for family in self.families():
            lines.append("# HELP %s %s" % (family.name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            for labels, child in family.children():
                if isinstance(child, _HistogramChild):
                    lines.extend(self._histogram_lines(family.name, labels, child))
                else:
                    lines.append(
                        "%s%s %s"
                        % (family.name, format_labels(labels), _format_value(child.value))
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _histogram_lines(
        name: str, labels: Dict[str, str], child: _HistogramChild
    ) -> List[str]:
        hist = child.histogram
        lines: List[str] = []
        cumulative = 0
        for _lo, hi, count in hist.buckets():
            cumulative += count
            le_labels = dict(labels)
            le_labels["le"] = _format_value(hi)
            lines.append(
                "%s_bucket%s %d" % (name, format_labels(le_labels), cumulative)
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            "%s_bucket%s %d" % (name, format_labels(inf_labels), hist.total)
        )
        lines.append(
            "%s_sum%s %s" % (name, format_labels(labels), _format_value(hist.sum))
        )
        lines.append("%s_count%s %d" % (name, format_labels(labels), hist.total))
        return lines


# ======================================================================
# Exposition-format validation (tests + CI smoke, no third-party deps)
# ======================================================================

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?P<value>[^ ]+)(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"((?:[^\"\\]|\\.)*)\"")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise MetricError("invalid sample value %r" % text) from None


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Strictly parse Prometheus exposition text.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    and raises :class:`MetricError` on any malformed line, on samples
    with no preceding ``# TYPE``, or on histogram series missing their
    ``+Inf`` bucket.
    """
    families: Dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and parts[1] == "HELP":
                parts.append("")
            if len(parts) < 4:
                raise MetricError("line %d: malformed comment %r" % (lineno, line))
            _hash, keyword, name, rest = parts
            if not _NAME_RE.match(name):
                raise MetricError("line %d: invalid metric name %r" % (lineno, name))
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if keyword == "TYPE":
                if rest not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise MetricError("line %d: unknown type %r" % (lineno, rest))
                if family["samples"]:
                    raise MetricError(
                        "line %d: TYPE for %s after its samples" % (lineno, name)
                    )
                family["type"] = rest
            else:
                family["help"] = rest
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricError("line %d: malformed sample %r" % (lineno, line))
        name = match.group("name")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL_PAIR_RE.findall(match.group("labels")):
                if key in labels:
                    raise MetricError("line %d: duplicate label %r" % (lineno, key))
                labels[key] = value
        value = _parse_value(match.group("value"))
        base = name
        for suffix in _HISTOGRAM_SUFFIXES:
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and families.get(trimmed, {}).get("type") == "histogram":
                base = trimmed
                break
        family = families.get(base)
        if family is None or family["type"] is None:
            raise MetricError(
                "line %d: sample %s has no preceding # TYPE" % (lineno, name)
            )
        family["samples"].append((name, labels, value))

    for name, family in families.items():
        if family["type"] == "histogram" and family["samples"]:
            inf_buckets = [
                s
                for s in family["samples"]
                if s[0] == name + "_bucket" and s[1].get("le") == "+Inf"
            ]
            if not inf_buckets:
                raise MetricError("histogram %s missing +Inf bucket" % name)
    return families
