"""repro.obs — the unified observability plane.

Three pillars, all disabled by default and byte-identical when off:

1. **Metrics registry** (:mod:`repro.obs.metrics`) — labeled
   ``Counter`` / ``Gauge`` / ``HistogramMetric`` instruments in a
   per-scenario :class:`Registry`, exportable as JSON and Prometheus
   text exposition format.
2. **Causal trace spans** (:mod:`repro.obs.trace`) — request-scoped
   spans following one request id from client send through the LB's
   routing decision and the server's service to the emitted ``T_LB``
   sample and the shift it contributed to.
3. **Engine profiling** (:mod:`repro.obs.profiler`) — per-site
   wall-time accounting of every simulator callback.

Enable via ``ScenarioConfig.obs``::

    from repro.obs import ObsConfig
    config = ScenarioConfig(obs=ObsConfig(enabled=True))
    result = run_scenario(config)
    print(result.scenario.obs.registry.to_prometheus())
"""

from repro.obs.config import ObsConfig
from repro.obs.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricError,
    Registry,
    parse_prometheus_text,
)
from repro.obs.plane import ObsPlane
from repro.obs.profiler import EngineProfiler, SiteStats, site_name
from repro.obs.trace import (
    CausalTracer,
    ResponseSpan,
    RouteSpan,
    SampleSpan,
    SendSpan,
    render_request_tree,
    render_shift_attribution,
    render_shift_list,
)

__all__ = [
    "CausalTracer",
    "Counter",
    "EngineProfiler",
    "Gauge",
    "HistogramMetric",
    "MetricError",
    "ObsConfig",
    "ObsPlane",
    "Registry",
    "ResponseSpan",
    "RouteSpan",
    "SampleSpan",
    "SendSpan",
    "SiteStats",
    "parse_prometheus_text",
    "render_request_tree",
    "render_shift_attribution",
    "render_shift_list",
    "site_name",
]
