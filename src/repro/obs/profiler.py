"""Opt-in engine profiler: where does simulated time cost wall time?

The :class:`repro.sim.engine.Simulator` dispatches every event through
one dispatch point, so profiling is a single seam: when a profiler is
installed (``sim.set_profiler``), each callback runs under
:meth:`EngineProfiler.run`, which aggregates wall-clock nanoseconds by
*site* — the callback's ``module.qualname``.  Bound methods and
``functools.partial`` wrappers are unwrapped so ``_ConnLoop._send_one``
shows up once, not once per connection object.

The profiler observes only; it never touches the event queue or the
virtual clock, so profiled runs stay byte-identical in simulation
results (they are merely slower in wall time).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List


def site_name(callback: Callable[[], None]) -> str:
    """Stable aggregation key for a callback: ``module.qualname``."""
    fn = callback
    while isinstance(fn, functools.partial):
        fn = fn.func
    fn = getattr(fn, "__func__", fn)  # unwrap bound methods
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return "%s.%s" % (module, qualname)


@dataclass
class SiteStats:
    """Aggregate cost of one callback site."""

    site: str
    calls: int = 0
    wall_ns: int = 0

    @property
    def mean_ns(self) -> float:
        """Average wall nanoseconds per call."""
        return self.wall_ns / self.calls if self.calls else 0.0


class EngineProfiler:
    """Aggregates per-site wall time for every dispatched event."""

    def __init__(self) -> None:
        self._sites: Dict[str, SiteStats] = {}
        self.events = 0
        self.wall_ns = 0
        # Wall time charged by nested run_args calls (batch deliveries
        # inside a pump callback); run() subtracts it so a site's cost
        # is self-time, never double-counted.
        self._nested_ns = 0

    def run(self, callback: Callable[[], None]) -> None:
        """Execute ``callback``, charging its *self* wall time to its site.

        Time already charged to receiver sites by nested
        :meth:`run_args` calls (a pump's batch deliveries) is excluded,
        so totals stay additive across sites.
        """
        nested_before = self._nested_ns
        start = time.perf_counter_ns()
        try:
            callback()
        finally:
            elapsed = time.perf_counter_ns() - start
            elapsed -= self._nested_ns - nested_before
            site = site_name(callback)
            stats = self._sites.get(site)
            if stats is None:
                stats = SiteStats(site=site)
                self._sites[site] = stats
            stats.calls += 1
            stats.wall_ns += elapsed
            self.events += 1
            self.wall_ns += elapsed

    def run_args(self, fn: Callable, *args) -> None:
        """Execute ``fn(*args)``, charging its wall time to ``fn``'s site.

        The batch-drain pipe pump routes each *inline* packet delivery
        through this, so a 1k-packet batch shows up as one pump call
        plus 999 calls against the receiver's site (``Host.on_packet``,
        ``LoadBalancer.on_packet``) — matching the engine's event count
        (one heap event plus 999 inline fires) exactly.
        """
        start = time.perf_counter_ns()
        try:
            fn(*args)
        finally:
            elapsed = time.perf_counter_ns() - start
            self._nested_ns += elapsed
            site = site_name(fn)
            stats = self._sites.get(site)
            if stats is None:
                stats = SiteStats(site=site)
                self._sites[site] = stats
            stats.calls += 1
            stats.wall_ns += elapsed
            self.events += 1
            self.wall_ns += elapsed

    def top_sites(self, n: int = 10) -> List[SiteStats]:
        """The ``n`` most expensive sites by total wall time."""
        ranked = sorted(
            self._sites.values(), key=lambda s: s.wall_ns, reverse=True
        )
        return ranked[:n]

    def events_per_second(self) -> float:
        """Dispatched events per wall-clock second inside callbacks."""
        if self.wall_ns == 0:
            return 0.0
        return self.events / (self.wall_ns / 1e9)

    def report_lines(self, n: int = 8) -> List[str]:
        """Human-readable summary for ``ScenarioResult.report()``."""
        lines = [
            "profile: %d events, %.1f ms in callbacks, %.0f events/sec"
            % (self.events, self.wall_ns / 1e6, self.events_per_second())
        ]
        for stats in self.top_sites(n):
            lines.append(
                "  %-56s %9d calls %10.3f ms %8.0f ns/call"
                % (
                    stats.site,
                    stats.calls,
                    stats.wall_ns / 1e6,
                    stats.mean_ns,
                )
            )
        return lines
