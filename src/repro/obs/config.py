"""Observability-plane configuration.

Everything here defaults to *off*: with ``ObsConfig.enabled`` false the
plane is structurally absent (no registry, no tracer, no profiler, no
extra taps) and scenario results are byte-identical to a build without
it.  Enabling it adds passive recording only — instrumentation never
draws randomness or schedules events, so even an enabled run produces
the same records and shifts as a disabled one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass
class ObsConfig:
    """Switches for the three observability pillars."""

    #: Master switch; nothing below matters while this is False.
    enabled: bool = False
    #: Pillar 1: the labeled-instrument registry.
    metrics: bool = True
    #: Pillar 2: the causal tracer (send → route → sample → shift).
    tracing: bool = True
    #: Pillar 3: the engine profiler (callbacks-by-site, events/sec).
    #: Off even under ``enabled`` because per-event timing has real
    #: wall-clock cost on large runs.
    profiling: bool = False
    #: Also attach a :class:`repro.net.trace.PacketTrace` to the network.
    capture_packets: bool = False
    #: Record cap for the packet trace (None = unbounded).
    packet_trace_limit: Optional[int] = 100_000
    #: Cap on stored trace events; excess events are counted, not kept.
    max_trace_events: int = 200_000

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.packet_trace_limit is not None and self.packet_trace_limit <= 0:
            raise ConfigError("packet_trace_limit must be positive or None")
        if self.max_trace_events <= 0:
            raise ConfigError("max_trace_events must be positive")
