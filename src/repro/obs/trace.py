"""Causal trace spans: from a client send to the shift it caused.

The paper's core claim is causal — a response *triggers* the client's
next packet, whose arrival gap at the LB becomes a ``T_LB`` sample,
which moves weights.  :class:`CausalTracer` records each link of that
chain as a span:

* :class:`SendSpan` — a client handed a request to its connection;
* :class:`RouteSpan` — the LB's routing decision for the flow's first
  packet (later packets follow conntrack affinity);
* :class:`ResponseSpan` — the server's reply arrived back at the
  client, with the server-side queue/service split;
* :class:`SampleSpan` — FIXEDTIMEOUT closed a batch on the flow and
  emitted a ``T_LB`` sample (the batch boundary is ``time - t_lb``);
* :class:`ScaleSpan` — the fleet plane executed a scaling decision
  (capacity before/after, the policy that fired, its reason).

Shifts themselves stay where they always were — the controller's
``shifts`` list — and attribution is computed on demand:
:meth:`CausalTracer.contributing_samples` answers "which samples could
the estimator have been looking at when this shift fired" (the last
``window`` samples per involved backend, the estimator's own memory).

Everything here is passive: the tracer only appends to lists, so a
traced run's simulation results are identical to an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.addr import FlowKey
from repro.units import to_micros, to_millis


@dataclass
class SendSpan:
    """A client handed one request (or a retry of it) to the wire."""

    __slots__ = ("time", "request_id", "client", "port", "retry")

    time: int
    request_id: int
    client: str
    port: int
    retry: bool


@dataclass
class RouteSpan:
    """The LB's routing decision for a flow's first observed packet."""

    __slots__ = ("time", "flow", "backend")

    time: int
    flow: FlowKey
    backend: str


@dataclass
class ResponseSpan:
    """A response completed at the client (DSR: it bypassed the LB)."""

    __slots__ = (
        "time",
        "request_id",
        "server",
        "queue_delay",
        "service_time",
        "latency",
    )

    time: int
    request_id: int
    server: Optional[str]
    queue_delay: int
    service_time: int
    latency: int


@dataclass
class SampleSpan:
    """One emitted ``T_LB`` sample with its producing timeout δ."""

    __slots__ = ("time", "flow", "backend", "t_lb", "delta")

    time: int
    flow: FlowKey
    backend: str
    t_lb: int
    delta: int

    @property
    def batch_start(self) -> int:
        """Start of the batch gap this sample measured (ns)."""
        return self.time - self.t_lb


@dataclass
class ScaleSpan:
    """The fleet plane executed one scaling decision."""

    __slots__ = ("time", "policy", "direction", "before", "after", "reason")

    time: int
    policy: str
    direction: str
    before: int
    after: int
    reason: str


#: A fault window as the runner reports it: (kind, targets, start, end).
FaultWindow = Tuple[str, Tuple[str, ...], int, Optional[int]]


class CausalTracer:
    """Request-scoped span recorder for the measurement-attribution chain.

    ``max_events`` bounds memory: past it, new spans are counted in
    ``dropped`` rather than stored (never silently lost).
    """

    def __init__(self, max_events: int = 200_000):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.sends: List[SendSpan] = []
        self.responses: Dict[int, ResponseSpan] = {}
        self.routes: Dict[FlowKey, RouteSpan] = {}
        self.samples: List[SampleSpan] = []
        self.scales: List[ScaleSpan] = []
        self.dropped = 0
        self._events = 0
        self._sends_by_id: Dict[int, List[SendSpan]] = {}

    def __len__(self) -> int:
        return self._events

    def _admit(self) -> bool:
        if self._events >= self.max_events:
            self.dropped += 1
            return False
        self._events += 1
        return True

    # ------------------------------------------------------------------
    # Recording hooks (wired by the obs plane)
    # ------------------------------------------------------------------

    def on_send(
        self, now: int, request_id: int, client: str, port: int, retry: bool
    ) -> None:
        """A client issued a request on connection-local ``port``."""
        if not self._admit():
            return
        span = SendSpan(now, request_id, client, port, retry)
        self.sends.append(span)
        self._sends_by_id.setdefault(request_id, []).append(span)

    def on_route(self, now: int, flow: FlowKey, backend: str) -> None:
        """The LB forwarded a packet of ``flow`` (first packet kept)."""
        if flow in self.routes:
            return
        if not self._admit():
            return
        self.routes[flow] = RouteSpan(now, flow, backend)

    def on_response(
        self,
        now: int,
        request_id: int,
        server: Optional[str],
        queue_delay: int,
        service_time: int,
        latency: int,
    ) -> None:
        """A request completed at its client."""
        if not self._admit():
            return
        self.responses[request_id] = ResponseSpan(
            now, request_id, server, queue_delay, service_time, latency
        )

    def on_sample(
        self, now: int, flow: FlowKey, backend: str, t_lb: int, delta: int
    ) -> None:
        """The feedback plane emitted a ``T_LB`` sample for ``flow``."""
        if not self._admit():
            return
        self.samples.append(SampleSpan(now, flow, backend, t_lb, delta))

    def on_scale(
        self,
        now: int,
        policy: str,
        direction: str,
        before: int,
        after: int,
        reason: str,
    ) -> None:
        """The fleet plane executed a scaling decision."""
        if not self._admit():
            return
        self.scales.append(
            ScaleSpan(now, policy, direction, before, after, reason)
        )

    # ------------------------------------------------------------------
    # Attribution queries
    # ------------------------------------------------------------------

    def sends_for(self, request_id: int) -> List[SendSpan]:
        """Every send attempt of one request (retries included)."""
        return list(self._sends_by_id.get(request_id, []))

    def samples_for_flow(self, flow: FlowKey) -> List[SampleSpan]:
        """All samples emitted on one flow, in time order."""
        return [s for s in self.samples if s.flow == flow]

    def contributing_samples(self, shift, window: int) -> List[SampleSpan]:
        """Samples the estimator could have weighed when ``shift`` fired.

        The estimator keeps a sliding window of ``window`` samples per
        backend, so the causal set is the last ``window`` samples at or
        before the shift for each backend the decision compared — the
        shifted-from (worst) backend and, when recorded, the best one.
        A ``from_backend`` of ``"*"`` (the resilience ladder's uniform
        relax) involves the whole pool.
        """
        backends: Optional[Set[str]] = None
        if shift.from_backend != "*":
            backends = {shift.from_backend}
            best = getattr(shift, "best_backend", None)
            if best:
                backends.add(best)
        per_backend: Dict[str, List[SampleSpan]] = {}
        for sample in self.samples:
            if sample.time > shift.time:
                break  # samples arrive in time order
            if backends is not None and sample.backend not in backends:
                continue
            per_backend.setdefault(sample.backend, []).append(sample)
        chosen: List[SampleSpan] = []
        for name in sorted(per_backend):
            chosen.extend(per_backend[name][-window:])
        chosen.sort(key=lambda s: (s.time, s.backend))
        return chosen

    def first_shift_containing(
        self, sample: SampleSpan, shifts: Sequence, window: int
    ) -> Optional[int]:
        """Index of the first shift whose causal set includes ``sample``."""
        for index, shift in enumerate(shifts):
            if shift.time < sample.time:
                continue
            if sample in self.contributing_samples(shift, window):
                return index
        return None


# ======================================================================
# Rendering (the `repro trace` CLI verb)
# ======================================================================


def _describe_shift(index: int, shift) -> str:
    best = getattr(shift, "best_backend", None)
    towards = best if best else "pool"
    return (
        "shift #%d at %.3fms: %s -> %s  (worst=%.1fus best=%.1fus, %s)"
        % (
            index,
            to_millis(shift.time),
            shift.from_backend,
            towards,
            to_micros(shift.worst_estimate),
            to_micros(shift.best_estimate),
            shift.reason,
        )
    )


def render_shift_list(tracer: CausalTracer, shifts: Sequence, window: int) -> str:
    """One line per shift with its contributing-sample count."""
    lines = []
    for index, shift in enumerate(shifts):
        count = len(tracer.contributing_samples(shift, window))
        lines.append(
            "%s  [%d contributing samples]" % (_describe_shift(index, shift), count)
        )
    lines.append(
        "run `repro trace --shift N` to list a shift's contributing "
        "T_LB samples with their batch boundaries"
    )
    return "\n".join(lines)


def render_shift_attribution(
    tracer: CausalTracer,
    shifts: Sequence,
    index: int,
    window: int,
    scales: Sequence = (),
    events: Sequence = (),
) -> str:
    """Which ``T_LB`` samples caused shift ``index``, with batch bounds.

    ``scales`` (fleet :class:`ScaleSpan`-likes) and ``events`` (campaign
    violation events) that fall inside the attribution window — from the
    earliest contributing sample's batch start to the shift — are
    rendered as extra cross-plane sections, so a shift provoked by a
    scale-in or coincident with a dark-routing violation says so.
    """
    shift = shifts[index]
    samples = tracer.contributing_samples(shift, window)
    lines = [
        _describe_shift(index, shift),
        "contributing T_LB samples (estimator window: last %d per backend):"
        % window,
        "  %11s  %-10s %10s %9s  %-23s %s"
        % ("t(ms)", "backend", "T_LB(us)", "delta(us)", "batch window (ms)", "flow"),
    ]
    for sample in samples:
        lines.append(
            "  %11.3f  %-10s %10.1f %9d  %11.3f -> %8.3f  %s"
            % (
                to_millis(sample.time),
                sample.backend,
                to_micros(sample.t_lb),
                sample.delta // 1000,
                to_millis(sample.batch_start),
                to_millis(sample.time),
                sample.flow,
            )
        )
    if not samples:
        lines.append("  (none recorded before this shift)")
    window_start = (
        min(s.batch_start for s in samples) if samples else shift.time
    )
    in_window_scales = [
        s for s in scales if window_start <= s.time <= shift.time
    ]
    if in_window_scales:
        lines.append("fleet scaling decisions in attribution window:")
        for span in in_window_scales:
            lines.append(
                "  %11.3f  %s %s: %d -> %d  (%s)"
                % (
                    to_millis(span.time),
                    span.policy,
                    span.direction,
                    span.before,
                    span.after,
                    span.reason,
                )
            )
    in_window_events = [
        e for e in events if window_start <= e.time <= shift.time
    ]
    if in_window_events:
        lines.append("invariant violations in attribution window:")
        for event in in_window_events:
            lines.append("  %11.3f  [%s] %s" % (
                to_millis(event.time), event.invariant, event.message,
            ))
    return "\n".join(lines)


def render_request_tree(
    tracer: CausalTracer,
    request_id: int,
    shifts: Sequence,
    window: int,
    fault_windows: Sequence[FaultWindow] = (),
    vip: Optional[object] = None,
) -> str:
    """The span tree for one request id, client send → shift."""
    sends = tracer.sends_for(request_id)
    if not sends:
        return "request %d: no trace spans recorded" % request_id
    response = tracer.responses.get(request_id)
    lines = ["request %d" % request_id]

    flow: Optional[FlowKey] = None
    for send in sends:
        attempt = "retry" if send.retry else "first attempt"
        lines.append(
            "|- sent at %.3fms from %s:%d (%s)"
            % (to_millis(send.time), send.client, send.port, attempt)
        )
        if vip is not None:
            flow = FlowKey(send.client, send.port, vip.host, vip.port)
            route = tracer.routes.get(flow)
            if route is not None:
                lines.append(
                    "|  |- LB routed flow %s -> %s at %.3fms"
                    % (route.flow, route.backend, to_millis(route.time))
                )

    backend = response.server if response is not None else None
    start = sends[0].time
    end = response.time if response is not None else None
    crossed = [
        (kind, targets, w_start, w_end)
        for kind, targets, w_start, w_end in fault_windows
        if (end is None or w_start <= end)
        and (w_end is None or w_end >= start)
        and (backend is None or backend in targets or not targets)
    ]
    for kind, targets, w_start, w_end in crossed:
        span = (
            "%.3fms -> end of run" % to_millis(w_start)
            if w_end is None
            else "%.3fms -> %.3fms" % (to_millis(w_start), to_millis(w_end))
        )
        lines.append(
            "|- fault window crossed: %s on %s [%s]"
            % (kind, ", ".join(targets), span)
        )

    if response is not None:
        if response.server is not None:
            lines.append(
                "|- %s served: queue %.1fus + service %.1fus"
                % (
                    response.server,
                    to_micros(response.queue_delay),
                    to_micros(response.service_time),
                )
            )
        lines.append(
            "|- response completed at %.3fms (latency %.3fms, DSR: "
            "bypassed the LB)"
            % (to_millis(response.time), to_millis(response.latency))
        )
    else:
        lines.append("|- no response recorded (in flight or lost)")

    flow_samples = tracer.samples_for_flow(flow) if flow is not None else []
    if flow_samples:
        lines.append("`- T_LB samples on this flow:")
        for sample in flow_samples:
            lines.append(
                "   |- t=%.3fms T_LB=%.1fus delta=%dus batch %.3f -> %.3fms"
                % (
                    to_millis(sample.time),
                    to_micros(sample.t_lb),
                    sample.delta // 1000,
                    to_millis(sample.batch_start),
                    to_millis(sample.time),
                )
            )
            shift_index = tracer.first_shift_containing(sample, shifts, window)
            if shift_index is not None:
                lines.append(
                    "   |  `- contributed to %s"
                    % _describe_shift(shift_index, shifts[shift_index])
                )
    else:
        lines.append("`- no T_LB samples emitted on this flow")
    return "\n".join(lines)
