"""Wiring: one :class:`ObsPlane` instruments a built scenario.

The plane is the only module that knows both sides: the instruments
(:mod:`repro.obs.metrics`, :mod:`repro.obs.trace`,
:mod:`repro.obs.profiler`) and the components they observe.  Components
never import ``repro.obs``; they expose ``attach_metrics`` /
``attach_tracer`` seams taking opaque instrument bundles (mirroring the
estimator's ``attach_quality`` pattern), and everything they do with
them is guarded on ``is not None`` — so a scenario without the plane
pays nothing and behaves identically.

Instrument inventory (all prefixed ``repro_``):

========================================  ===========================
``lb_packets_total{backend}``             routed packets per backend
``lb_new_flows_total{backend}``           new-flow placements
``lb_misroutes_total``                    packets dropped off-VIP
``tlb_samples_total{backend,delta_us}``   T_LB samples per backend per δᵢ
``tlb_latency_ns{backend}``               T_LB distribution (histogram)
``estimator_samples_total{backend}``      samples folded into estimates
``epoch_rolls_total``                     ENSEMBLETIMEOUT epoch ends
``cliff_picks_total{delta_us}``           cliff-chosen reporting timeouts
``censored_samples_total``                retransmission-censored samples
``weight_shifts_total{controller,reason}``  executed weight updates
``stale_holds_total{controller}``         updates refused on stale signal
``mode_transitions_total{to_mode}``       resilience-ladder transitions
``controller_mode``                       ladder severity (0/1/2)
``breaker_transitions_total{backend,to_state}``  breaker edges
``fleet_scaling_decisions_total{policy,direction}``  executed scalings
``fleet_transitions_total{from_state,to_state}``  backend lifecycle edges
``fleet_capacity`` / ``fleet_backends{state}``  fleet size (collect hook)
``backend_weight{backend}``               pool weight (collect hook)
``backend_latency_estimate_ns{backend}``  current estimate (collect hook)
``pipe_dropped_packets{pipe,cause}``      queue vs loss drops (hook)
``sim_events_processed`` / ``sim_pending_events`` /
``sim_peak_queue_depth``                  engine stats (collect hook)
========================================  ===========================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.trace import PacketTrace
from repro.obs.config import ObsConfig
from repro.obs.metrics import Registry
from repro.obs.profiler import EngineProfiler
from repro.obs.trace import CausalTracer

if TYPE_CHECKING:  # pragma: no cover - type-only (harness imports obs)
    from repro.harness.scenario import Scenario


class LBMetrics:
    """Dataplane instruments (attached to the LoadBalancer)."""

    def __init__(self, registry: Registry):
        self.packets = registry.counter(
            "repro_lb_packets_total",
            "Client->server packets the LB forwarded, per backend",
            labels=("backend",),
        )
        self.new_flows = registry.counter(
            "repro_lb_new_flows_total",
            "New flows placed by the routing policy, per backend",
            labels=("backend",),
        )
        self.misroutes = registry.counter(
            "repro_lb_misroutes_total",
            "Packets dropped because they did not address the VIP",
        )


class FeedbackMetrics:
    """Measurement-plane instruments (attached to InbandFeedback)."""

    def __init__(self, registry: Registry):
        self.tlb_samples = registry.counter(
            "repro_tlb_samples_total",
            "T_LB samples emitted, per backend per reporting timeout",
            labels=("backend", "delta_us"),
        )
        self.epoch_rolls = registry.counter(
            "repro_epoch_rolls_total",
            "ENSEMBLETIMEOUT epoch boundaries crossed (all flows)",
        )
        self.cliff_picks = registry.counter(
            "repro_cliff_picks_total",
            "Reporting timeouts chosen at epoch ends, per delta",
            labels=("delta_us",),
        )
        self.censored = registry.counter(
            "repro_censored_samples_total",
            "Samples censored as retransmission-tainted",
        )


class EstimatorMetrics:
    """Estimator instruments (attached to BackendLatencyEstimator)."""

    def __init__(self, registry: Registry):
        self.samples = registry.counter(
            "repro_estimator_samples_total",
            "Samples folded into per-backend estimates",
            labels=("backend",),
        )
        self.latency = registry.histogram(
            "repro_tlb_latency_ns",
            "Distribution of observed T_LB samples (ns)",
            labels=("backend",),
        )


class _BoundCounter:
    """A counter family with some label values pre-bound.

    Controllers never know their registry name — the plane binds the
    ``controller`` label here so every existing call site
    (``.labels(reason=...).inc()`` and bare ``.inc()``) keeps working
    while the exported series gains the per-controller dimension.
    """

    def __init__(self, family, bound):
        self._family = family
        self._bound = dict(bound)

    def labels(self, **labels):
        merged = dict(self._bound)
        merged.update(labels)
        return self._family.labels(**merged)

    def inc(self, amount: float = 1.0) -> None:
        self._family.labels(**self._bound).inc(amount)


class ControllerMetrics:
    """Control-plane instruments (attached to the active control law)."""

    def __init__(self, registry: Registry, controller: str = "alpha"):
        self.shifts = _BoundCounter(
            registry.counter(
                "repro_weight_shifts_total",
                "Executed weight updates, by controller and reason",
                labels=("controller", "reason"),
            ),
            {"controller": controller},
        )
        self.stale_holds = _BoundCounter(
            registry.counter(
                "repro_stale_holds_total",
                "Updates refused because a consulted estimate was stale",
                labels=("controller",),
            ),
            {"controller": controller},
        )


class LadderMetrics:
    """Resilience-ladder instruments (attached to DegradationLadder)."""

    def __init__(self, registry: Registry):
        self.transitions = registry.counter(
            "repro_mode_transitions_total",
            "Degradation-ladder transitions, by target mode",
            labels=("to_mode",),
        )
        self.mode = registry.gauge(
            "repro_controller_mode",
            "Current ladder severity (0=feedback 1=hold 2=fallback)",
        )


class BreakerMetrics:
    """Circuit-breaker instruments (attached to BreakerBoard)."""

    def __init__(self, registry: Registry):
        self.transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state changes, per backend per target state",
            labels=("backend", "to_state"),
        )


class FleetMetrics:
    """Fleet-plane instruments (attached to the AutoscalingGroup)."""

    def __init__(self, registry: Registry):
        self.decisions = registry.counter(
            "repro_fleet_scaling_decisions_total",
            "Executed scaling decisions, by policy kind and direction",
            labels=("policy", "direction"),
        )


class ObsPlane:
    """The scenario's observability plane: registry + tracer + profiler."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.registry: Optional[Registry] = None
        self.tracer: Optional[CausalTracer] = None
        self.profiler: Optional[EngineProfiler] = None
        self.packet_trace: Optional[PacketTrace] = None

    @classmethod
    def install(cls, scenario: "Scenario") -> "ObsPlane":
        """Build the plane per ``scenario.config.obs`` and attach it."""
        config = scenario.config.obs
        plane = cls(config)
        if config.metrics:
            plane._install_metrics(scenario)
        if config.tracing:
            plane._install_tracer(scenario)
        if config.profiling:
            plane.profiler = EngineProfiler()
            scenario.sim.set_profiler(plane.profiler)
        if config.capture_packets:
            trace = PacketTrace(limit=config.packet_trace_limit)
            scenario.network.attach_trace(trace)
            scenario.trace = trace
            plane.packet_trace = trace
        return plane

    # ------------------------------------------------------------------

    def _install_metrics(self, scenario: "Scenario") -> None:
        registry = Registry()
        self.registry = registry
        scenario.lb.attach_metrics(LBMetrics(registry))
        feedback = scenario.feedback
        if feedback is not None:
            feedback.attach_metrics(FeedbackMetrics(registry))
            feedback.estimator.attach_metrics(EstimatorMetrics(registry))
            controller = feedback.controller
            attach = getattr(controller, "attach_metrics", None)
            if attach is not None:
                attach(
                    ControllerMetrics(
                        registry,
                        controller=scenario.config.feedback.strategy,
                    )
                )
            if feedback.ladder is not None:
                feedback.ladder.attach_metrics(LadderMetrics(registry))
        if scenario.breakers is not None:
            scenario.breakers.attach_metrics(BreakerMetrics(registry))

        fleet = scenario.fleet
        fleet_capacity = None
        fleet_backends = None
        if fleet is not None:
            fleet.attach_metrics(FleetMetrics(registry))
            lifecycle_edges = registry.counter(
                "repro_fleet_transitions_total",
                "Backend lifecycle transitions, per edge",
                labels=("from_state", "to_state"),
            )

            def on_lifecycle(event) -> None:
                lifecycle_edges.labels(
                    from_state=(
                        event.from_state.value if event.from_state else "new"
                    ),
                    to_state=event.to_state.value,
                ).inc()

            fleet.lifecycle.on_transition(on_lifecycle)
            fleet_capacity = registry.gauge(
                "repro_fleet_capacity",
                "Fleet capacity (provisioning + warming + in service)",
            )
            fleet_backends = registry.gauge(
                "repro_fleet_backends",
                "Backends currently in each lifecycle state",
                labels=("state",),
            )

        weight = registry.gauge(
            "repro_backend_weight",
            "Current pool weight per backend",
            labels=("backend",),
        )
        estimate = registry.gauge(
            "repro_backend_latency_estimate_ns",
            "Current per-backend latency estimate (ns)",
            labels=("backend",),
        )
        pipe_drops = registry.gauge(
            "repro_pipe_dropped_packets",
            "Packets dropped per pipe, split by cause",
            labels=("pipe", "cause"),
        )
        sim_events = registry.gauge(
            "repro_sim_events_processed", "Engine events fired so far"
        )
        sim_pending = registry.gauge(
            "repro_sim_pending_events",
            "Engine events still queued, including cancelled tombstones",
        )
        sim_live = registry.gauge(
            "repro_sim_live_events",
            "Outstanding work: live engine events plus packets parked "
            "behind batch-drain pipe pumps (a 1k-packet batch reads as "
            "1000, not 1)",
        )
        sim_peak = registry.gauge(
            "repro_sim_peak_queue_depth", "High-water mark of the event queue"
        )
        sim_peak_load = registry.gauge(
            "repro_sim_peak_load",
            "High-water mark of outstanding work (events + parked packets)",
        )

        def collect() -> None:
            for name, value in scenario.pool.weights().items():
                weight.labels(backend=name).set(value)
            if feedback is not None:
                for name in scenario.pool.names():
                    current = feedback.estimator.estimate(name)
                    if current is not None:
                        estimate.labels(backend=name).set(current)
            for (src, dst), pipe in scenario.network.pipes().items():
                label = "%s->%s" % (src, dst)
                stats = pipe.stats
                pipe_drops.labels(pipe=label, cause="queue").set(
                    stats.packets_dropped_queue
                )
                pipe_drops.labels(pipe=label, cause="loss").set(
                    stats.packets_dropped_loss
                )
                if stats.packets_dropped_partition:
                    pipe_drops.labels(pipe=label, cause="partition").set(
                        stats.packets_dropped_partition
                    )
            sim = scenario.sim
            sim_events.set(sim.events_processed)
            sim_pending.set(sim.pending_events)
            # Honest load: a pipe holding 1000 arrivals behind one pump
            # entry contributes 1000 here, not 1 (see Simulator.pending_load).
            sim_live.set(sim.pending_load)
            sim_peak.set(sim.peak_queue_depth)
            sim_peak_load.set(sim.peak_load)
            if fleet is not None:
                from repro.fleet.lifecycle import BackendState

                fleet_capacity.set(fleet.capacity())
                for state in BackendState:
                    fleet_backends.labels(state=state.value).set(
                        fleet.lifecycle.count(state)
                    )

        registry.add_collect_hook(collect)

    def _install_tracer(self, scenario: "Scenario") -> None:
        tracer = CausalTracer(self.config.max_trace_events)
        self.tracer = tracer
        vip = scenario.vip

        def route_tap(now, flow, backend, packet) -> None:
            tracer.on_route(now, flow, backend)

        scenario.lb.add_tap(route_tap)

        for client in scenario.clients:
            client_name = client.host.name

            def on_send(request, port, retry, _name=client_name) -> None:
                tracer.on_send(
                    request.sent_at, request.request_id, _name, port, retry
                )

            def on_response(record, response) -> None:
                tracer.on_response(
                    record.completed_at,
                    record.request_id,
                    response.server,
                    response.queue_delay,
                    response.service_time,
                    record.latency,
                )

            client.on_send = on_send
            client.on_response = on_response

        if scenario.feedback is not None:
            scenario.feedback.attach_tracer(tracer)
        if scenario.fleet is not None:
            scenario.fleet.attach_tracer(tracer)
        # Stored for request-tree rendering (flow reconstruction).
        tracer.vip = vip  # type: ignore[attr-defined]
