"""Causal chains: walk the timeline backwards from a shift or alert.

``repro explain --shift N`` answers *why did the controller move
weight* — not just when.  The chain walks four layers upstream of the
decision:

1. the **triggering sample** — the last ``T_LB`` sample the feedback
   plane folded in for the demoted backend before the shift;
2. the **estimator snapshot** — the recorded frame at or before the
   shift (per-backend estimates, sample counts, signal grades);
3. the **controller inputs** — worst/best estimates and the hysteresis
   verdict straight off the :class:`~repro.core.controller.ShiftEvent`;
4. **fault windows** overlapping the lookback, scored for relevance so
   the report can name a *dominant upstream cause* (or fall back to
   breaker trips, ladder degradation, or organic load imbalance).

``--alert N`` does the same walk from an SLO alert firing.  Everything
reads the already-recorded timeline and scenario telemetry — explain
never re-runs anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.insight.recorder import describe_frame
from repro.insight.timeline import Timeline
from repro.units import MILLISECONDS, to_micros, to_millis

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.harness.runner import ScenarioResult

#: Default causal lookback behind the event being explained (ns).
DEFAULT_LOOKBACK = 250 * MILLISECONDS

#: ``(kind, targets, start, end)`` — the runner's fault_windows shape.
FaultTuple = Tuple[str, Sequence[str], int, Optional[int]]


def _require_timeline(result: "ScenarioResult") -> Timeline:
    insight = result.scenario.insight
    if insight is None:
        raise ValueError(
            "scenario ran without the insight plane; enable "
            "config.insight to record a timeline"
        )
    return insight.timeline


def _describe_window(window: FaultTuple) -> str:
    kind, targets, start, end = window
    end_text = "end" if end is None else "%.3fms" % to_millis(end)
    return "%s fault on %s @%.3fms..%s" % (
        kind,
        ", ".join(targets) or "(all)",
        to_millis(start),
        end_text,
    )


def _score_window(
    window: FaultTuple,
    backend: Optional[str],
    event_time: int,
    lookback_start: int,
) -> int:
    """Relevance of a fault window to an event on ``backend``.

    Targeting the demoted backend (or everything) outranks bystander
    faults; starting inside the lookback outranks long-running ones;
    still being active at the event outranks already-ended ones.
    """
    kind, targets, start, end = window
    score = 0
    if backend is None or backend in targets or not targets:
        score += 2
    if start >= lookback_start:
        score += 1
    if start <= event_time and (end is None or event_time < end):
        score += 1
    return score


def _overlapping_windows(
    windows: Sequence[FaultTuple], start: int, end: int
) -> List[FaultTuple]:
    """Fault windows intersecting ``[start, end]``."""
    hits = []
    for window in windows:
        w_start, w_end = window[2], window[3]
        if w_start <= end and (w_end is None or w_end >= start):
            hits.append(window)
    return hits


def _dominant_cause(
    result: "ScenarioResult",
    timeline: Timeline,
    backend: Optional[str],
    event_time: int,
    lookback: int,
) -> Tuple[str, List[str]]:
    """Pick the dominant upstream cause and the supporting evidence.

    Precedence: best-scoring overlapping fault window, then a breaker
    trip on the backend, then ladder degradation, then organic load
    imbalance (the null explanation).
    """
    lookback_start = max(0, event_time - lookback)
    evidence: List[str] = []
    windows = _overlapping_windows(
        result.fault_windows(), lookback_start, event_time
    )
    if windows:
        scored = sorted(
            windows,
            key=lambda w: (
                _score_window(w, backend, event_time, lookback_start),
                w[2],
            ),
        )
        for window in scored:
            evidence.append(
                "  fault in lookback: %s (relevance %d)"
                % (
                    _describe_window(window),
                    _score_window(window, backend, event_time, lookback_start),
                )
            )
        best = scored[-1]
        if _score_window(best, backend, event_time, lookback_start) > 0:
            return _describe_window(best), evidence
    trips = [
        a
        for a in timeline.annotations_between(
            lookback_start, event_time, kind="breaker"
        )
        if backend is None or a.data.get("backend") == backend
    ]
    if trips:
        return trips[-1].label, evidence
    degradations = timeline.annotations_between(
        lookback_start, event_time, kind="mode"
    )
    if degradations:
        return degradations[-1].label, evidence
    return "organic load imbalance (no fault, breaker, or mode change in lookback)", evidence


def _render_annotations(
    timeline: Timeline, start: int, end: int
) -> List[str]:
    annotations = timeline.annotations_between(start, end)
    if not annotations:
        return []
    lines = ["timeline annotations in lookback:"]
    for annotation in sorted(annotations, key=lambda a: a.time):
        lines.append(
            "  [%.3fms] %s: %s"
            % (to_millis(annotation.time), annotation.kind, annotation.label)
        )
    return lines


def explain_shift(
    result: "ScenarioResult",
    index: int,
    lookback: int = DEFAULT_LOOKBACK,
) -> str:
    """The causal chain behind weight shift ``index`` (0-based)."""
    timeline = _require_timeline(result)
    shifts = result.scenario.feedback.shift_events() if result.scenario.feedback else []
    if not shifts:
        raise IndexError("no weight shifts recorded")
    if not 0 <= index < len(shifts):
        raise IndexError(
            "shift %d out of range (have %d)" % (index, len(shifts))
        )
    shift = shifts[index]
    from_backend = getattr(shift, "from_backend", None)
    best_backend = getattr(shift, "best_backend", None)
    lookback_start = max(0, shift.time - lookback)

    lines = [
        "explain shift #%d at %.3fms" % (index, to_millis(shift.time)),
        "=" * 48,
    ]
    if from_backend is not None:
        lines.append(
            "decision: demote %s toward %s (%s)"
            % (
                from_backend,
                best_backend or "rest of pool",
                getattr(shift, "reason", "update"),
            )
        )
    else:
        lines.append("decision: weight update (controller records no demotee)")

    # 1. Triggering sample: the last T_LB sample on the demoted backend
    #    that the feedback plane saw before deciding.
    feedback = result.scenario.feedback
    trigger = None
    if feedback is not None and from_backend is not None:
        for sample in reversed(feedback.samples):
            if sample.time <= shift.time and sample.backend == from_backend:
                trigger = sample
                break
    if trigger is not None:
        lines.append(
            "triggering sample: T_LB=%.1fus on %s at %.3fms (flow %s)"
            % (
                to_micros(trigger.t_lb),
                trigger.backend,
                to_millis(trigger.time),
                trigger.flow,
            )
        )
    else:
        lines.append("triggering sample: none recorded for the demoted backend")

    # 2. Estimator snapshot from the nearest recorded frame.
    frame = timeline.frame_at_or_before(shift.time)
    if frame is not None:
        lines.append("estimator snapshot (nearest recorded frame):")
        lines.append(describe_frame(frame))
    else:
        lines.append("estimator snapshot: no frame recorded before the shift")

    # 3. Controller inputs straight off the shift event.
    worst = getattr(shift, "worst_estimate", None)
    best = getattr(shift, "best_estimate", None)
    if worst is not None and best is not None:
        lines.append(
            "controller inputs: worst=%.1fus best=%.1fus ratio=%.2f (%s)"
            % (
                to_micros(worst),
                to_micros(best),
                (worst / best) if best else float("inf"),
                getattr(shift, "reason", "update"),
            )
        )

    # 4. Lookback window: annotations and fault attribution.
    lines.extend(_render_annotations(timeline, lookback_start, shift.time))
    cause, evidence = _dominant_cause(
        result, timeline, from_backend, shift.time, lookback
    )
    lines.extend(evidence)
    lines.append("dominant upstream cause: %s" % cause)
    return "\n".join(lines)


def explain_alert(
    result: "ScenarioResult",
    index: int,
    lookback: int = DEFAULT_LOOKBACK,
) -> str:
    """The causal chain behind SLO alert ``index`` (0-based)."""
    timeline = _require_timeline(result)
    alerts = timeline.alerts()
    if not alerts:
        raise IndexError("no SLO alerts fired")
    if not 0 <= index < len(alerts):
        raise IndexError(
            "alert %d out of range (have %d)" % (index, len(alerts))
        )
    alert = alerts[index]
    lookback_start = max(0, alert.time - lookback)
    lines = [
        "explain SLO alert #%d at %.3fms" % (index, to_millis(alert.time)),
        "=" * 48,
        alert.label,
    ]
    frame = timeline.frame_at_or_before(alert.time)
    if frame is not None:
        lines.append("state at firing (nearest recorded frame):")
        lines.append(describe_frame(frame))
    lines.extend(_render_annotations(timeline, lookback_start, alert.time))
    cause, evidence = _dominant_cause(
        result, timeline, None, alert.time, lookback
    )
    lines.extend(evidence)
    lines.append("dominant upstream cause: %s" % cause)
    return "\n".join(lines)


def explain_overview(result: "ScenarioResult") -> str:
    """Summary of what the timeline holds: shifts and alerts by index."""
    timeline = _require_timeline(result)
    shifts = result.scenario.feedback.shift_events() if result.scenario.feedback else []
    lines = [
        "timeline: %d frames, %d annotations, %d dropped"
        % (len(timeline), len(timeline.annotations), timeline.dropped)
    ]
    if shifts:
        lines.append("shifts (use --shift N):")
        for i, shift in enumerate(shifts):
            from_backend = getattr(shift, "from_backend", None)
            lines.append(
                "  #%d at %.3fms%s"
                % (
                    i,
                    to_millis(shift.time),
                    "" if from_backend is None else " (demotes %s)" % from_backend,
                )
            )
    else:
        lines.append("shifts: none recorded")
    alerts = timeline.alerts()
    if alerts:
        lines.append("SLO alerts (use --alert N):")
        for i, annotation in enumerate(alerts):
            lines.append("  #%d %s" % (i, annotation.label))
    else:
        lines.append("SLO alerts: none fired")
    return "\n".join(lines)
