"""Insight-plane configuration.

Everything here defaults to *off*: with ``InsightConfig.enabled`` false
the plane is structurally absent (no recorder, no timeline, no SLO
monitor, no extra LB tap) and scenario results are byte-identical to a
build without it.  Enabling it adds passive recording only — the flight
recorder never draws randomness or schedules simulator events (frame
pacing rides on the LB's packet tap), so even an enabled run produces
the same records and shifts as a disabled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import MILLISECONDS


@dataclass
class SLOConfig:
    """A declarative latency SLO with multi-window burn-rate alerting.

    A request is *bad* when its latency exceeds ``target``; the error
    budget is ``1 - goal``.  The burn rate over a window is the bad
    fraction divided by the budget (1.0 = burning exactly the budget).
    An alert fires when **both** the short and the long window burn at
    ``burn_threshold`` or faster — the Google SRE multiwindow rule: the
    long window proves the burn is sustained, the short window proves
    it is still happening.
    """

    #: Latency target (ns): a request slower than this is SLO-bad.
    target: int = 2 * MILLISECONDS
    #: Fraction of requests that must meet the target (error budget
    #: is ``1 - goal``).
    goal: float = 0.95
    #: Fast window (ns): proves the burn is current.
    short_window: int = 100 * MILLISECONDS
    #: Slow window (ns): proves the burn is sustained.
    long_window: int = 500 * MILLISECONDS
    #: Both windows must burn at least this many budgets-per-window.
    burn_threshold: float = 2.0
    #: Minimum gap between alert firings (ns).
    cooldown: int = 200 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.target <= 0:
            raise ConfigError("slo target must be positive")
        if not 0.0 < self.goal < 1.0:
            raise ConfigError("slo goal must be in (0, 1)")
        if self.short_window <= 0 or self.long_window <= 0:
            raise ConfigError("slo windows must be positive")
        if self.short_window > self.long_window:
            raise ConfigError("slo short_window must not exceed long_window")
        if self.burn_threshold <= 0:
            raise ConfigError("slo burn_threshold must be positive")
        if self.cooldown < 0:
            raise ConfigError("slo cooldown must be >= 0")


@dataclass
class InsightConfig:
    """Switches for the flight-recorder plane."""

    #: Master switch; nothing below matters while this is False.
    enabled: bool = False
    #: Target gap between recorded frames (ns).  Frames are paced by
    #: the LB's packet tap, so a silent network records no frames —
    #: which is itself signal.
    frame_interval: int = 10 * MILLISECONDS
    #: Ring bound on stored frames; past it the oldest are dropped
    #: (and counted, never silently lost).
    max_frames: int = 4096
    #: The latency SLO the monitor evaluates over the timeline.
    slo: SLOConfig = field(default_factory=SLOConfig)

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.frame_interval <= 0:
            raise ConfigError("frame_interval must be positive")
        if self.max_frames <= 0:
            raise ConfigError("max_frames must be positive")
        self.slo.validate()
