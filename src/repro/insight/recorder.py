"""The flight recorder: epoch-paced, pull-only state capture.

:class:`FlightRecorder` is the insight plane's only moving part.  It is
driven from exactly two seams:

* the LB's packet tap paces frame capture (``on_packet_tap``) — at
  most one frame per ``frame_interval`` of simulated time, taken while
  handling a packet the dataplane was forwarding anyway; and
* ``InbandFeedback.attach_recorder`` reports epoch rolls
  (``on_epoch_roll``) so frames can carry the cliff-chosen reporting
  timeout without the recorder re-deriving ENSEMBLETIMEOUT state.

Everything else is a *pull*: at capture time the recorder reads pool
weights, estimator state, signal grades, breaker/lifecycle/conntrack
state, the ladder mode, and active fault windows through their pure
accessors, and diff-scans the append-only event lists (shifts, mode
transitions, breaker transitions, fleet decisions) for annotations.
It never schedules simulator events and never draws randomness, so a
recorded run is byte-identical to an unrecorded one — the same
guarantee the obs plane makes, proven by the same kind of test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.insight.config import InsightConfig
from repro.insight.slo import SLOMonitor
from repro.insight.timeline import Annotation, Timeline, TimelineFrame
from repro.units import to_micros, to_millis

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.harness.scenario import Scenario


class FlightRecorder:
    """Samples a built scenario into a :class:`Timeline`."""

    def __init__(
        self,
        scenario: "Scenario",
        timeline: Timeline,
        slo: SLOMonitor,
        config: Optional[InsightConfig] = None,
    ):
        self.config = config or InsightConfig()
        self.timeline = timeline
        self.slo = slo
        self._pool = scenario.pool
        self._feedback = scenario.feedback
        self._breakers = scenario.breakers
        self._fleet = scenario.fleet
        self._injector = scenario.injector
        self._conntrack = scenario.lb.conntrack
        self._clients = list(scenario.clients)
        #: Per-client count of records already folded into the SLO.
        self._consumed: List[int] = [0] * len(self._clients)
        self._next_frame = 0
        #: Cliff state fed by the feedback seam.
        self.epoch_rolls = 0
        self.last_cliff_pick: Optional[int] = None
        #: High-water marks for the event lists we diff-scan.
        self._seen_shifts = 0
        self._seen_modes = 0
        self._seen_breaks = 0
        self._seen_scales = 0

    # ------------------------------------------------------------------
    # Seams (wired by InsightPlane.install)
    # ------------------------------------------------------------------

    def on_packet_tap(self, now: int, flow, backend: str, packet) -> None:
        """LB tap: capture a frame when the pacing interval elapsed."""
        if now >= self._next_frame:
            self.capture(now)
            self._next_frame = now + self.config.frame_interval

    def on_epoch_roll(self, now: int, chosen_timeout: int) -> None:
        """The feedback plane crossed an epoch boundary on some flow."""
        self.epoch_rolls += 1
        self.last_cliff_pick = chosen_timeout

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def capture(self, now: int) -> TimelineFrame:
        """Pull-read every plane into one frame; annotate new events."""
        self._consume_records()
        alert = self.slo.evaluate(now)
        if alert is not None:
            self.timeline.annotate(
                Annotation(
                    time=alert.time,
                    kind="slo_alert",
                    label=alert.describe(),
                    data={
                        "burn_short": alert.burn_short,
                        "burn_long": alert.burn_long,
                        "bad": alert.bad,
                        "total": alert.total,
                    },
                )
            )
        self._annotate_new_events()

        frame = TimelineFrame(
            time=now,
            weights=dict(self._pool.weights()),
            epoch_rolls=self.epoch_rolls,
            cliff_pick=self.last_cliff_pick,
            flows=self._conntrack.counted(),
            slo=self.slo.snapshot(now),
        )
        feedback = self._feedback
        if feedback is not None:
            estimator = feedback.estimator
            frame.sample_total = estimator.total_samples
            frame.samples = estimator.sample_counts()
            for name in self._pool.names():
                estimate = estimator.estimate(name)
                if estimate is not None:
                    frame.estimates[name] = round(estimate, 3)
            if feedback.quality is not None:
                frame.grades = {
                    name: feedback.quality.grade(name, now).value
                    for name in self._pool.names()
                }
            if feedback.ladder is not None:
                frame.ladder_mode = feedback.ladder.mode.name
        if self._breakers is not None:
            frame.breakers = {
                name: state.value
                for name, state in self._breakers.states().items()
            }
        if self._fleet is not None:
            frame.lifecycle = {
                name: state.value
                for name, state in sorted(self._fleet.lifecycle.states.items())
            }
        if self._injector is not None:
            frame.faults = [
                [
                    armed.window.fault.kind,
                    list(armed.targets),
                    armed.window.start,
                    armed.window.end,
                ]
                for armed in self._injector.active_at(now)
            ]
        self.timeline.append(frame)
        return frame

    def finalize(self, now: int) -> None:
        """One last capture after the run (the tail the tap never saw)."""
        self.capture(now)

    # ------------------------------------------------------------------

    def _consume_records(self) -> None:
        """Fold newly completed requests into the SLO monitor."""
        for index, client in enumerate(self._clients):
            records = client.records
            start = self._consumed[index]
            if start == len(records):
                continue
            for record in records[start:]:
                self.slo.observe(record.completed_at, record.latency)
            self._consumed[index] = len(records)

    def _annotate_new_events(self) -> None:
        """Diff-scan append-only event lists into annotations."""
        feedback = self._feedback
        if feedback is not None:
            shifts = feedback.shift_events()
            for shift in shifts[self._seen_shifts:]:
                from_backend = getattr(shift, "from_backend", None)
                best = getattr(shift, "best_backend", None)
                if from_backend is not None:
                    label = "weight shift %s -> %s (%s)" % (
                        from_backend,
                        best or "pool",
                        getattr(shift, "reason", "update"),
                    )
                else:
                    label = "weight update"
                self.timeline.annotate(
                    Annotation(
                        time=shift.time,
                        kind="shift",
                        label=label,
                        data={
                            "from": from_backend,
                            "to": best,
                            "reason": getattr(shift, "reason", None),
                        },
                    )
                )
            self._seen_shifts = len(shifts)
            transitions = feedback.mode_transitions()
            for transition in transitions[self._seen_modes:]:
                self.timeline.annotate(
                    Annotation(
                        time=transition.time,
                        kind="mode",
                        label="ladder %s -> %s (%s)"
                        % (
                            transition.from_mode.name,
                            transition.to_mode.name,
                            transition.reason,
                        ),
                        data={
                            "from": transition.from_mode.name,
                            "to": transition.to_mode.name,
                            "reason": transition.reason,
                        },
                    )
                )
            self._seen_modes = len(transitions)
        if self._breakers is not None:
            transitions = self._breakers.transitions
            for transition in transitions[self._seen_breaks:]:
                self.timeline.annotate(
                    Annotation(
                        time=transition.time,
                        kind="breaker",
                        label="breaker %s: %s -> %s (%s)"
                        % (
                            transition.backend,
                            transition.from_state.name,
                            transition.to_state.name,
                            transition.reason,
                        ),
                        data={
                            "backend": transition.backend,
                            "from": transition.from_state.name,
                            "to": transition.to_state.name,
                            "reason": transition.reason,
                        },
                    )
                )
            self._seen_breaks = len(transitions)
        if self._fleet is not None:
            decisions = self._fleet.decisions
            for decision in decisions[self._seen_scales:]:
                self.timeline.annotate(
                    Annotation(
                        time=decision.time,
                        kind="scale",
                        label="fleet %s %s: %d -> %d"
                        % (
                            decision.policy,
                            decision.direction,
                            decision.before,
                            decision.after,
                        ),
                        data={
                            "policy": decision.policy,
                            "direction": decision.direction,
                            "before": decision.before,
                            "after": decision.after,
                        },
                    )
                )
            self._seen_scales = len(decisions)


def describe_frame(frame: TimelineFrame) -> str:
    """One-paragraph rendering of a frame (the explain verb's unit)."""
    lines = [
        "frame at %.3fms: weights %s"
        % (
            to_millis(frame.time),
            " ".join(
                "%s=%.3f" % (name, value)
                for name, value in sorted(frame.weights.items())
            )
            or "(empty pool)",
        )
    ]
    if frame.estimates:
        lines.append(
            "  estimates: "
            + " ".join(
                "%s=%.1fus" % (name, to_micros(value))
                for name, value in sorted(frame.estimates.items())
            )
        )
    if frame.samples:
        lines.append(
            "  samples: "
            + " ".join(
                "%s=%d" % (name, count)
                for name, count in sorted(frame.samples.items())
            )
            + " (total %d, epochs %d%s)"
            % (
                frame.sample_total,
                frame.epoch_rolls,
                ""
                if frame.cliff_pick is None
                else ", cliff pick %dus" % (frame.cliff_pick // 1000),
            )
        )
    if frame.grades:
        lines.append(
            "  signal: "
            + " ".join(
                "%s=%s" % (name, grade)
                for name, grade in sorted(frame.grades.items())
            )
            + ("" if frame.ladder_mode is None else "  mode=%s" % frame.ladder_mode)
        )
    open_breakers = {
        name: state
        for name, state in frame.breakers.items()
        if state != "closed"
    }
    if open_breakers:
        lines.append(
            "  breakers: "
            + " ".join(
                "%s=%s" % (name, state)
                for name, state in sorted(open_breakers.items())
            )
        )
    if frame.faults:
        lines.append(
            "  active faults: "
            + "; ".join(
                "%s on %s" % (kind, ", ".join(targets))
                for kind, targets, _start, _end in frame.faults
            )
        )
    if frame.slo is not None:
        lines.append(
            "  slo: %s (burn short=%.2fx long=%.2fx, %d/%d bad in window)"
            % (
                frame.slo["state"],
                frame.slo["burn_short"],
                frame.slo["burn_long"],
                frame.slo["window_bad"],
                frame.slo["window_total"],
            )
        )
    return "\n".join(lines)
