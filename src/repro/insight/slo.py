"""Declarative latency SLO evaluation with multi-window burn rates.

The monitor consumes completed-request latencies (pulled from client
records at frame-capture time — it installs no hooks) and maintains a
sliding event window of (time, bad) pairs.  ``evaluate`` computes the
burn rate over the short and long windows; an :class:`SLOAlert` fires
when both burn at the configured threshold, subject to a cooldown —
the standard multiwindow multi-burn-rate alerting rule: the long
window keeps one latency spike from paging, the short window stops
the alert promptly once the burn ends.

Everything here is arithmetic over observed values: no randomness, no
scheduled events, no simulator access — the monitor cannot perturb the
run it watches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.insight.config import SLOConfig
from repro.units import to_millis


@dataclass
class SLOAlert:
    """One burn-rate alert firing."""

    time: int
    burn_short: float
    burn_long: float
    #: Bad / total requests inside the long window at firing time.
    bad: int
    total: int

    def describe(self) -> str:
        """One-line rendering for reports and annotations."""
        return (
            "SLO burn-rate alert at %.3fms: short=%.2fx long=%.2fx "
            "(%d of %d requests over target)"
            % (
                to_millis(self.time),
                self.burn_short,
                self.burn_long,
                self.bad,
                self.total,
            )
        )


class SLOMonitor:
    """Evaluates one latency SLO over rolling windows."""

    def __init__(self, config: Optional[SLOConfig] = None):
        self.config = config or SLOConfig()
        self.config.validate()
        #: (completion time, was the request SLO-bad) within long_window.
        self._events: Deque[Tuple[int, bool]] = deque()
        #: Lifetime counters (never pruned).
        self.observed = 0
        self.bad_observed = 0
        #: Alert firings, in time order.
        self.alerts: List[SLOAlert] = []
        self._last_alert_at: Optional[int] = None

    def observe(self, time: int, latency: int) -> None:
        """Fold one completed request into the window."""
        bad = latency > self.config.target
        self._events.append((time, bad))
        self.observed += 1
        if bad:
            self.bad_observed += 1

    def _prune(self, now: int) -> None:
        cutoff = now - self.config.long_window
        events = self._events
        while events and events[0][0] <= cutoff:
            events.popleft()

    def burn_rate(self, now: int, window: int) -> float:
        """Bad fraction over ``(now - window, now]`` divided by budget."""
        cutoff = now - window
        bad = total = 0
        for time, was_bad in self._events:
            if time <= cutoff:
                continue
            total += 1
            if was_bad:
                bad += 1
        if total == 0:
            return 0.0
        budget = 1.0 - self.config.goal
        return (bad / total) / budget

    def evaluate(self, now: int) -> Optional[SLOAlert]:
        """Prune, compute both burns, and fire an alert if both exceed
        the threshold (and the cooldown allows); returns the alert."""
        self._prune(now)
        config = self.config
        burn_short = self.burn_rate(now, config.short_window)
        burn_long = self.burn_rate(now, config.long_window)
        if burn_short < config.burn_threshold or burn_long < config.burn_threshold:
            return None
        if (
            self._last_alert_at is not None
            and now - self._last_alert_at < config.cooldown
        ):
            return None
        bad = sum(1 for _t, was_bad in self._events if was_bad)
        alert = SLOAlert(
            time=now,
            burn_short=round(burn_short, 4),
            burn_long=round(burn_long, 4),
            bad=bad,
            total=len(self._events),
        )
        self.alerts.append(alert)
        self._last_alert_at = now
        return alert

    def snapshot(self, now: int) -> Optional[Dict[str, Any]]:
        """JSON-native burn summary for a timeline frame (None pre-traffic)."""
        if self.observed == 0:
            return None
        self._prune(now)
        bad = sum(1 for _t, was_bad in self._events if was_bad)
        burn_short = self.burn_rate(now, self.config.short_window)
        burn_long = self.burn_rate(now, self.config.long_window)
        burning = (
            burn_short >= self.config.burn_threshold
            and burn_long >= self.config.burn_threshold
        )
        return {
            "burn_short": round(burn_short, 4),
            "burn_long": round(burn_long, 4),
            "window_bad": bad,
            "window_total": len(self._events),
            "observed": self.observed,
            "bad_observed": self.bad_observed,
            "state": "burning" if burning else "ok",
            "alerts": len(self.alerts),
        }
