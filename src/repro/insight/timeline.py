"""The recorded artifact: a bounded timeline of frames and annotations.

A :class:`TimelineFrame` is one epoch-paced snapshot of everything the
controller could see — weights, estimates, sample counts, signal
grades, ladder mode, breaker and lifecycle states, flow counts, active
fault windows, and the SLO monitor's burn state.  Frames live in a
bounded ring (oldest dropped and counted past ``max_frames``);
:class:`Annotation` marks point events (weight shifts, mode and breaker
transitions, scale decisions, SLO alert firings) between frames.

The whole timeline serializes to JSON Lines — one ``meta`` line, then
one line per frame and per annotation — so two runs' artifacts can be
diffed, archived, or replayed without the producing process.
:func:`load_timeline` / :func:`loads` are the other half of that round
trip.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional


@dataclass
class TimelineFrame:
    """One flight-recorder snapshot, JSON-native throughout."""

    #: Simulation time of the capture (ns).
    time: int
    #: Per-backend pool weight.
    weights: Dict[str, float] = field(default_factory=dict)
    #: Per-backend T_LB estimate (ns); only backends with one.
    estimates: Dict[str, float] = field(default_factory=dict)
    #: Per-backend samples folded into the estimator so far.
    samples: Dict[str, int] = field(default_factory=dict)
    #: Per-backend signal grade (``fresh``/``stale``/``invalid``);
    #: empty without the resilience plane.
    grades: Dict[str, str] = field(default_factory=dict)
    #: Per-backend breaker state for breakers instantiated so far.
    breakers: Dict[str, str] = field(default_factory=dict)
    #: Per-backend fleet lifecycle state; empty without the fleet plane.
    lifecycle: Dict[str, str] = field(default_factory=dict)
    #: Per-backend conntrack flow counts (the amortized cached view).
    flows: Dict[str, int] = field(default_factory=dict)
    #: Degradation-ladder mode (``FEEDBACK``/``HOLD``/``FALLBACK``);
    #: None without the resilience plane.
    ladder_mode: Optional[str] = None
    #: Reporting timeout the last completed epoch chose (ns); None
    #: until the first epoch rolls.
    cliff_pick: Optional[int] = None
    #: ENSEMBLETIMEOUT epoch boundaries crossed so far (all flows).
    epoch_rolls: int = 0
    #: T_LB samples produced so far (the estimator's total).
    sample_total: int = 0
    #: Fault windows active at capture: ``[kind, [targets], start, end]``.
    faults: List[list] = field(default_factory=list)
    #: SLO monitor snapshot (burn rates, counts, state); None when the
    #: monitor has seen no traffic yet.
    slo: Optional[Dict[str, Any]] = None


@dataclass
class Annotation:
    """A point event worth marking on the timeline."""

    time: int
    #: Event class: ``shift``, ``mode``, ``breaker``, ``scale``,
    #: ``slo_alert``, ...
    kind: str
    #: One-line human-readable description.
    label: str
    #: Structured payload (JSON-native).
    data: Dict[str, Any] = field(default_factory=dict)


class Timeline:
    """Bounded in-memory frame ring plus annotations, JSONL in and out."""

    def __init__(self, max_frames: int = 4096):
        if max_frames <= 0:
            raise ValueError("max_frames must be positive")
        self.max_frames = max_frames
        self._frames: Deque[TimelineFrame] = deque(maxlen=max_frames)
        self.annotations: List[Annotation] = []
        #: Frames evicted from the ring (never silently lost).
        self.dropped = 0
        #: Run metadata captured at install time (policy, seed, ...).
        self.meta: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def frames(self) -> List[TimelineFrame]:
        """Stored frames, oldest first."""
        return list(self._frames)

    def append(self, frame: TimelineFrame) -> None:
        """Record one frame; the ring evicts (and counts) the oldest."""
        if len(self._frames) == self.max_frames:
            self.dropped += 1
        self._frames.append(frame)

    def annotate(self, annotation: Annotation) -> None:
        """Record one point event."""
        self.annotations.append(annotation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def frame_at_or_before(self, time: int) -> Optional[TimelineFrame]:
        """Latest frame captured at or before ``time`` (None if none)."""
        best: Optional[TimelineFrame] = None
        for frame in self._frames:
            if frame.time > time:
                break  # frames are appended in time order
            best = frame
        return best

    def frames_between(self, start: int, end: int) -> List[TimelineFrame]:
        """Frames with ``start <= time <= end``, oldest first."""
        return [f for f in self._frames if start <= f.time <= end]

    def annotations_between(
        self, start: int, end: int, kind: Optional[str] = None
    ) -> List[Annotation]:
        """Annotations with ``start <= time <= end``, optionally by kind."""
        return [
            a
            for a in self.annotations
            if start <= a.time <= end and (kind is None or a.kind == kind)
        ]

    def alerts(self) -> List[Annotation]:
        """SLO alert firings, in time order."""
        return [a for a in self.annotations if a.kind == "slo_alert"]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def dumps(self, meta: Optional[Dict[str, Any]] = None) -> str:
        """The timeline as JSON Lines (meta, frames, annotations)."""
        merged = dict(self.meta)
        if meta:
            merged.update(meta)
        merged["frames"] = len(self._frames)
        merged["dropped_frames"] = self.dropped
        merged["annotations"] = len(self.annotations)
        lines = [json.dumps({"kind": "meta", **merged}, sort_keys=True)]
        for frame in self._frames:
            lines.append(
                json.dumps({"kind": "frame", **asdict(frame)}, sort_keys=True)
            )
        for annotation in self.annotations:
            record = asdict(annotation)
            # The annotation's own kind moves to "event": the top-level
            # "kind" key is the JSONL record discriminator.
            record["event"] = record.pop("kind")
            lines.append(
                json.dumps({"kind": "annotation", **record}, sort_keys=True)
            )
        return "\n".join(lines) + "\n"

    def export_jsonl(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> str:
        """Write :meth:`dumps` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps(meta))
        return path


def loads(text: str) -> Timeline:
    """Rebuild a :class:`Timeline` from its JSONL serialization."""
    frames: List[TimelineFrame] = []
    annotations: List[Annotation] = []
    meta: Dict[str, Any] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError("timeline line %d is not JSON: %s" % (number, exc))
        kind = record.pop("kind", None)
        if kind == "meta":
            meta = record
        elif kind == "frame":
            frames.append(TimelineFrame(**record))
        elif kind == "annotation":
            record["kind"] = record.pop("event")
            annotations.append(Annotation(**record))
        else:
            raise ValueError(
                "timeline line %d has unknown kind %r" % (number, kind)
            )
    # A ring at least as large as the stored frame count, so loading
    # never re-drops what the producer kept.
    timeline = Timeline(max_frames=max(1, len(frames)))
    timeline.meta = meta
    timeline.dropped = int(meta.get("dropped_frames", 0))
    for frame in frames:
        timeline._frames.append(frame)
    timeline.annotations = annotations
    return timeline


def load_timeline(path: str) -> Timeline:
    """Read a JSONL timeline artifact from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
