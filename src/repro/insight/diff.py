"""Timeline alignment: where did two runs diverge, and in what?

``repro diff RUN_A RUN_B`` loads two JSONL timeline artifacts (two
controllers on the same preset, two seeds, or pre/post a code change),
aligns their frames into buckets of one ``frame_interval``, and walks
the shared span reporting :class:`Divergence` points — normalized
weight vectors drifting past an epsilon, ladder modes disagreeing,
breaker states disagreeing, or SLO state (ok vs burning) disagreeing.

Alignment is by *bucket*, not exact frame time: the two runs pace
frames off their own packet taps, so capture times differ by a few
packets even on identical dynamics.  What matters is what the frames
say about the same slice of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.insight.timeline import Timeline, TimelineFrame
from repro.units import MILLISECONDS, to_millis


@dataclass
class Divergence:
    """One aligned bucket where the runs disagree."""

    time: int
    #: What diverged: ``weights``, ``mode``, ``breaker``, ``slo``.
    field: str
    a: str
    b: str

    def describe(self) -> str:
        """One-line rendering."""
        return "[%.3fms] %s divergence: a=%s b=%s" % (
            to_millis(self.time),
            self.field,
            self.a,
            self.b,
        )


def _normalized_weights(frame: TimelineFrame) -> Dict[str, float]:
    total = sum(frame.weights.values())
    if total <= 0:
        return dict(frame.weights)
    return {name: value / total for name, value in frame.weights.items()}


def _weights_text(weights: Dict[str, float]) -> str:
    return (
        " ".join(
            "%s=%.3f" % (name, value) for name, value in sorted(weights.items())
        )
        or "(empty)"
    )


def _bucket_frames(
    timeline: Timeline, interval: int
) -> Dict[int, TimelineFrame]:
    """Last frame per interval bucket (the bucket's settled view)."""
    buckets: Dict[int, TimelineFrame] = {}
    for frame in timeline.frames:
        buckets[frame.time // interval] = frame
    return buckets


def _slo_state(frame: TimelineFrame) -> Optional[str]:
    if frame.slo is None:
        return None
    return frame.slo.get("state")


def diff_timelines(
    a: Timeline,
    b: Timeline,
    weight_eps: float = 0.05,
) -> List[Divergence]:
    """Divergence points across the span both timelines cover."""
    interval = int(
        a.meta.get("frame_interval")
        or b.meta.get("frame_interval")
        or 10 * MILLISECONDS
    )
    buckets_a = _bucket_frames(a, interval)
    buckets_b = _bucket_frames(b, interval)
    shared = sorted(set(buckets_a) & set(buckets_b))
    divergences: List[Divergence] = []
    for bucket in shared:
        frame_a, frame_b = buckets_a[bucket], buckets_b[bucket]
        time = max(frame_a.time, frame_b.time)

        weights_a = _normalized_weights(frame_a)
        weights_b = _normalized_weights(frame_b)
        drift = max(
            (
                abs(weights_a.get(name, 0.0) - weights_b.get(name, 0.0))
                for name in set(weights_a) | set(weights_b)
            ),
            default=0.0,
        )
        if drift > weight_eps:
            divergences.append(
                Divergence(
                    time=time,
                    field="weights",
                    a=_weights_text(weights_a),
                    b=_weights_text(weights_b),
                )
            )

        if frame_a.ladder_mode != frame_b.ladder_mode:
            divergences.append(
                Divergence(
                    time=time,
                    field="mode",
                    a=str(frame_a.ladder_mode),
                    b=str(frame_b.ladder_mode),
                )
            )

        if frame_a.breakers != frame_b.breakers:
            diffs = {
                name
                for name in set(frame_a.breakers) | set(frame_b.breakers)
                if frame_a.breakers.get(name, "closed")
                != frame_b.breakers.get(name, "closed")
            }
            if diffs:
                divergences.append(
                    Divergence(
                        time=time,
                        field="breaker",
                        a=" ".join(
                            "%s=%s" % (n, frame_a.breakers.get(n, "closed"))
                            for n in sorted(diffs)
                        ),
                        b=" ".join(
                            "%s=%s" % (n, frame_b.breakers.get(n, "closed"))
                            for n in sorted(diffs)
                        ),
                    )
                )

        state_a, state_b = _slo_state(frame_a), _slo_state(frame_b)
        if state_a != state_b:
            divergences.append(
                Divergence(
                    time=time,
                    field="slo",
                    a=str(state_a),
                    b=str(state_b),
                )
            )
    return divergences


def _describe_meta(timeline: Timeline) -> str:
    meta = timeline.meta
    parts = []
    for key in ("policy", "strategy", "seed"):
        if key in meta:
            parts.append("%s=%s" % (key, meta[key]))
    return " ".join(parts) or "(no meta)"


def render_diff(
    a: Timeline,
    b: Timeline,
    weight_eps: float = 0.05,
    limit: int = 40,
) -> str:
    """Human-readable diff report over two timelines."""
    divergences = diff_timelines(a, b, weight_eps)
    lines = [
        "timeline diff",
        "  a: %s (%d frames)" % (_describe_meta(a), len(a)),
        "  b: %s (%d frames)" % (_describe_meta(b), len(b)),
    ]
    interval = int(a.meta.get("frame_interval") or 10 * MILLISECONDS)
    shared = len(
        set(_bucket_frames(a, interval)) & set(_bucket_frames(b, interval))
    )
    lines.append("  aligned buckets: %d" % shared)
    if not divergences:
        lines.append("no divergence: runs agree on weights, modes, and SLO state")
        return "\n".join(lines)
    lines.append(
        "%d divergence point(s)%s:"
        % (
            len(divergences),
            "" if len(divergences) <= limit else " (first %d shown)" % limit,
        )
    )
    for divergence in divergences[:limit]:
        lines.append("  " + divergence.describe())
    first = divergences[0]
    lines.append(
        "first divergence at %.3fms in %s"
        % (to_millis(first.time), first.field)
    )
    return "\n".join(lines)
