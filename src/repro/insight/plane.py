"""Insight-plane assembly: wire the flight recorder onto a scenario.

Mirrors ``repro.obs.plane``: :meth:`InsightPlane.install` is called once
by ``build_scenario`` when ``config.insight.enabled``, after the obs
plane, so the recorder's LB tap observes post-update dataplane state.
Components stay unaware of the plane — the recorder reaches them
through the same ``attach_*`` seams and pure accessors the obs plane
uses, and the feedback plane's new ``attach_recorder`` seam.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.insight.config import InsightConfig
from repro.insight.recorder import FlightRecorder
from repro.insight.slo import SLOMonitor
from repro.insight.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.harness.scenario import Scenario


class InsightPlane:
    """The assembled flight-recorder plane for one scenario."""

    def __init__(
        self,
        config: InsightConfig,
        timeline: Timeline,
        slo: SLOMonitor,
        recorder: FlightRecorder,
    ):
        self.config = config
        self.timeline = timeline
        self.slo = slo
        self.recorder = recorder

    @classmethod
    def install(cls, scenario: "Scenario") -> "InsightPlane":
        """Build the plane and hook it onto an already-built scenario."""
        config = scenario.config.insight
        timeline = Timeline(max_frames=config.max_frames)
        timeline.meta = {
            "policy": scenario.config.policy.value,
            "strategy": scenario.config.feedback.strategy,
            "seed": scenario.config.seed,
            "duration": scenario.config.duration,
            "frame_interval": config.frame_interval,
        }
        slo = SLOMonitor(config.slo)
        recorder = FlightRecorder(scenario, timeline, slo, config)
        # Added after the obs plane's taps, so frames see post-update
        # state for the packet that paced them.
        scenario.lb.add_tap(recorder.on_packet_tap)
        if scenario.feedback is not None:
            scenario.feedback.attach_recorder(recorder)
        return cls(config, timeline, slo, recorder)

    def finalize(self, now: int) -> None:
        """Capture the closing frame once the run is over."""
        self.recorder.finalize(now)

    # ------------------------------------------------------------------
    # Artifact access
    # ------------------------------------------------------------------

    def dumps(self, meta: Optional[Dict[str, Any]] = None) -> str:
        """The timeline artifact as a JSONL string."""
        return self.timeline.dumps(meta)

    def export(self, path: str, meta: Optional[Dict[str, Any]] = None) -> str:
        """Write the timeline artifact to ``path``; returns the path."""
        return self.timeline.export_jsonl(path, meta)

    def summary(self) -> str:
        """One-paragraph report section (frames, alerts, SLO verdict)."""
        timeline = self.timeline
        lines = [
            "insight: %d frames recorded (%d dropped), %d annotations"
            % (len(timeline), timeline.dropped, len(timeline.annotations))
        ]
        alerts = timeline.alerts()
        if alerts:
            lines.append("insight: %d SLO alert(s) fired" % len(alerts))
            for annotation in alerts:
                lines.append("  " + annotation.label)
        elif self.slo.observed:
            lines.append(
                "insight: SLO healthy (%d of %d requests over target)"
                % (self.slo.bad_observed, self.slo.observed)
            )
        return "\n".join(lines)
