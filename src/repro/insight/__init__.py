"""repro.insight — flight recorder, SLO burn-rate monitor, causal explain.

The insight plane records an epoch-paced timeline of controller state
(weights, estimates, grades, modes, breakers, lifecycle, flows, fault
windows) through the same passive ``attach_*`` seams the obs plane
uses, evaluates a declarative latency SLO with multi-window burn-rate
alerting over it, and answers *why* questions after the fact:
``repro explain`` walks the timeline backwards from a shift or alert
into a causal chain, and ``repro diff`` aligns two recorded runs and
reports divergence points.  Off by default; byte-identical on/off.
"""

from repro.insight.config import InsightConfig, SLOConfig
from repro.insight.diff import Divergence, diff_timelines, render_diff
from repro.insight.explain import (
    DEFAULT_LOOKBACK,
    explain_alert,
    explain_overview,
    explain_shift,
)
from repro.insight.plane import InsightPlane
from repro.insight.recorder import FlightRecorder, describe_frame
from repro.insight.slo import SLOAlert, SLOMonitor
from repro.insight.timeline import (
    Annotation,
    Timeline,
    TimelineFrame,
    load_timeline,
    loads,
)

__all__ = [
    "Annotation",
    "DEFAULT_LOOKBACK",
    "Divergence",
    "FlightRecorder",
    "InsightConfig",
    "InsightPlane",
    "SLOAlert",
    "SLOConfig",
    "SLOMonitor",
    "Timeline",
    "TimelineFrame",
    "describe_frame",
    "diff_timelines",
    "explain_alert",
    "explain_overview",
    "explain_shift",
    "load_timeline",
    "loads",
    "render_diff",
]
