"""The paper's contribution: in-band measurement and feedback control.

* :mod:`~repro.core.fixed_timeout` — **Algorithm 1, FIXEDTIMEOUT**:
  flowlet-style batch segmentation of one flow's client→server packet
  arrivals with a fixed inter-batch timeout δ; the gap between first
  packets of successive batches estimates the response latency
  ``T_LB``.
* :mod:`~repro.core.ensemble` — **Algorithm 2, ENSEMBLETIMEOUT**: runs
  an ensemble of exponentially-spaced timeouts, counts samples per
  timeout over an epoch, detects the *sample cliff* and adopts the
  cliff timeout for the next epoch.
* :mod:`~repro.core.flowtable` — per-flow measurement state with idle
  eviction and a capacity bound.
* :mod:`~repro.core.estimator` — aggregates per-flow ``T_LB`` samples
  into per-backend latency estimates.
* :mod:`~repro.core.controller` — the paper's simple strategy: shift a
  fixed fraction α of total traffic away from the worst backend.
* :mod:`~repro.core.feedback` — wires taps → measurement → estimator →
  controller → weighted Maglev, forming the in-band feedback loop.
"""

from repro.core.fixed_timeout import FixedTimeout
from repro.core.ensemble import EnsembleConfig, EnsembleTimeout, default_timeouts
from repro.core.flowtable import FlowTable
from repro.core.estimator import BackendEstimate, BackendLatencyEstimator, EstimatorConfig
from repro.core.controller import AlphaShiftController, ControllerConfig

# Historical re-exports: the alternative laws moved to the controller
# zoo (repro.controllers) but stay importable from repro.core.
from repro.controllers.aimd import AimdConfig, AimdController
from repro.controllers.base import WeightUpdate
from repro.controllers.proportional import (
    ProportionalConfig,
    ProportionalController,
)
from repro.core.feedback import InbandFeedback, FeedbackConfig

__all__ = [
    "AimdController",
    "AimdConfig",
    "ProportionalController",
    "ProportionalConfig",
    "WeightUpdate",
    "FixedTimeout",
    "EnsembleTimeout",
    "EnsembleConfig",
    "default_timeouts",
    "FlowTable",
    "BackendLatencyEstimator",
    "BackendEstimate",
    "EstimatorConfig",
    "AlphaShiftController",
    "ControllerConfig",
    "InbandFeedback",
    "FeedbackConfig",
]
