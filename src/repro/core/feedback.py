"""The in-band feedback loop: taps → measurement → estimation → control.

:class:`InbandFeedback` is the paper's system glued together.  Attached
to a :class:`~repro.lb.dataplane.LoadBalancer` it:

1. receives every client→server packet via the LB's tap (never a
   response — DSR);
2. runs ENSEMBLETIMEOUT on the flow's per-flow state (bounded
   :class:`~repro.core.flowtable.FlowTable`);
3. attributes each emitted ``T_LB`` sample to the backend the flow is
   pinned to;
4. folds the sample into the per-backend estimator; and
5. lets the α-shift controller adjust pool weights, which rebuilds the
   weighted Maglev table for *future* flows (affinity keeps existing
   flows in place).

Set ``control=False`` for measurement-only operation (Fig 2 runs the
estimator against a static Maglev table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.controller import AlphaShiftController, ControllerConfig
from repro.core.ensemble import EnsembleConfig, EnsembleTimeout
from repro.controllers.aimd import AimdConfig
from repro.controllers.gradient import GradientConfig
from repro.controllers.knapsack import KnapsackConfig
from repro.controllers.morpheus import MorpheusConfig
from repro.controllers.proportional import ProportionalConfig
from repro.controllers.registry import create as create_controller
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.core.flowtable import FlowTable
from repro.lb.dataplane import LoadBalancer
from repro.net.addr import FlowKey
from repro.net.packet import FLAG_FIN, FLAG_RST, FLAG_SYN, Packet

_FIN_OR_RST = FLAG_FIN | FLAG_RST
_SYN_OR_FIN = FLAG_SYN | FLAG_FIN
from repro.telemetry.timeseries import TimeSeries
from repro.units import SECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.resilience.breaker import BreakerBoard
    from repro.resilience.config import ResilienceConfig
    from repro.resilience.ladder import ModeTransition


@dataclass
class FeedbackConfig:
    """Configuration of the full loop.

    ``strategy`` selects the control law by its registry name (see
    :mod:`repro.controllers`): ``"alpha"`` is the paper's α-shift rule;
    ``"proportional"``, ``"aimd"``, ``"knapsack"``, ``"gradient"`` and
    ``"morpheus"`` are the zoo's alternatives, each reading its own
    tunables sub-config below.  Unknown names raise
    :class:`~repro.errors.ConfigError` listing the registered laws.
    """

    ensemble: EnsembleConfig = field(default_factory=EnsembleConfig)
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    strategy: str = "alpha"
    proportional: ProportionalConfig = field(default_factory=ProportionalConfig)
    aimd: AimdConfig = field(default_factory=AimdConfig)
    knapsack: KnapsackConfig = field(default_factory=KnapsackConfig)
    gradient: GradientConfig = field(default_factory=GradientConfig)
    morpheus: MorpheusConfig = field(default_factory=MorpheusConfig)
    control: bool = True
    flow_capacity: int = 100_000
    flow_idle_timeout: int = 10 * SECONDS
    record_samples: bool = True
    #: Censor T_LB samples from flows that just retransmitted.  A
    #: retransmission is detectable purely in-band (a data segment whose
    #: sequence range was already seen), and the batch gap it creates is
    #: RTO-scale — loss-recovery noise, not server latency.  Off by
    #: default (the paper's algorithms are verbatim without it); see
    #: EXPERIMENTS.md "Robustness under packet loss".
    censor_retransmissions: bool = False


@dataclass
class SampleRecord:
    """One ``T_LB`` sample as seen by the feedback plane."""

    __slots__ = ("time", "flow", "backend", "t_lb")

    time: int
    flow: FlowKey
    backend: str
    t_lb: int


class _FlowState:
    """Per-flow measurement state: the ensemble plus retransmission
    tracking (highest data sequence seen; a segment at or below it is a
    retransmission and taints the next sample)."""

    __slots__ = ("ensemble", "max_end_seq", "tainted")

    def __init__(self, ensemble: EnsembleTimeout):
        self.ensemble = ensemble
        self.max_end_seq = 0
        self.tainted = False

    def observe_seq(self, packet: Packet) -> None:
        """Track sequence progress; flag retransmissions."""
        if packet.payload_len == 0 and not packet.is_syn:
            return  # pure ACKs carry no new sequence range
        if packet.end_seq <= self.max_end_seq:
            self.tainted = True
        else:
            self.max_end_seq = packet.end_seq

    def observe_seq_fields(self, flags: int, seq: int, payload_len: int) -> None:
        """Field-wise :meth:`observe_seq` for slab-handle packets."""
        if payload_len == 0 and not flags & FLAG_SYN:
            return  # pure ACKs carry no new sequence range
        end_seq = seq + payload_len
        if flags & _SYN_OR_FIN:
            end_seq += 1
        if end_seq <= self.max_end_seq:
            self.tainted = True
        else:
            self.max_end_seq = end_seq


class InbandFeedback:
    """Wires measurement and control onto a load balancer.

    With a :class:`~repro.resilience.config.ResilienceConfig` (enabled)
    the loop grows its guardrails: every backend's sample stream is
    graded by a signal-quality tracker, a degradation ladder gates the
    controller (weights only move in ``FEEDBACK`` mode), a periodic
    check catches starved signals that produce no packets, and passive
    samples feed the LB's circuit breakers as success evidence.
    """

    def __init__(
        self,
        lb: LoadBalancer,
        config: Optional[FeedbackConfig] = None,
        resilience: Optional["ResilienceConfig"] = None,
        breakers: Optional["BreakerBoard"] = None,
    ):
        self.lb = lb
        self.config = config or FeedbackConfig()
        self.estimator = BackendLatencyEstimator(self.config.estimator)
        self.controller = None
        if self.config.control:
            # Registry dispatch: any law in repro.controllers, by name.
            # Unknown names raise ConfigError listing the registered set.
            self.controller = create_controller(
                self.config.strategy, lb.pool, self.estimator, self.config
            )
        self.flows: FlowTable[_FlowState] = FlowTable(
            factory=lambda flow: _FlowState(EnsembleTimeout(self.config.ensemble)),
            capacity=self.config.flow_capacity,
            idle_timeout=self.config.flow_idle_timeout,
        )
        self.samples: List[SampleRecord] = []
        self.censored_samples = 0
        # Hot-path flags and methods, hoisted once: _on_packet runs per
        # forwarded packet and these do not change after construction
        # (flows and estimator are never reassigned).
        self._censor = self.config.censor_retransmissions
        self._record = self.config.record_samples
        self._get_or_create = self.flows.get_or_create
        self._est_observe = self.estimator.observe
        #: Per-backend sample series for reports (time, T_LB ns).
        self.sample_series: Dict[str, TimeSeries] = {}
        #: Resilience plane (None unless enabled).
        self.quality = None
        self.ladder = None
        self.breakers = breakers
        self._was_invalid: Dict[str, bool] = {}
        # Sample-driven ladder-evaluation throttle (see
        # DegradationConfig.min_evaluate_gap); the periodic check always
        # evaluates regardless.
        self._eval_gap = 0
        self._last_eval = -1
        #: Observability plane (both None unless attached).
        self._metrics = None
        self._tracer = None
        #: Insight plane's flight recorder (None unless attached).
        self._recorder = None
        #: The network's PacketSlab (None in object mode); the tap reads
        #: packet fields straight from its columns.
        self._slab = lb.network.slab
        if resilience is not None and resilience.enabled:
            self._wire_resilience(resilience)
        lb.add_tap(self._on_packet)

    def attach_metrics(self, metrics) -> None:
        """Attach measurement-plane instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics

    def attach_tracer(self, tracer) -> None:
        """Record emitted samples as causal-trace spans."""
        self._tracer = tracer

    def attach_recorder(self, recorder) -> None:
        """Report epoch rolls to the insight plane's flight recorder."""
        self._recorder = recorder

    @property
    def sample_count(self) -> int:
        """Total ``T_LB`` samples produced."""
        return self.estimator.total_samples

    def shift_events(self) -> list:
        """Executed weight updates (empty in measurement-only mode)."""
        if self.controller is None:
            return []
        return self.controller.updates

    def mode_transitions(self) -> List["ModeTransition"]:
        """The ladder's telemetry events (empty without resilience)."""
        if self.ladder is None:
            return []
        return self.ladder.transitions

    # ------------------------------------------------------------------

    def _wire_resilience(self, resilience: "ResilienceConfig") -> None:
        # Imported lazily: repro.core loads before repro.resilience can
        # finish initializing (resilience.ladder imports the controller).
        from repro.resilience.ladder import ControllerMode, DegradationLadder
        from repro.resilience.quality import SignalGrade, SignalQualityTracker

        self._feedback_mode = ControllerMode.FEEDBACK
        self._invalid_grade = SignalGrade.INVALID
        sim = self.lb.network.sim
        self.quality = SignalQualityTracker(resilience.signal)
        self.estimator.attach_quality(self.quality)
        for name in self.lb.pool.names():
            self.quality.register(name, sim.now)
        controller = (
            self.controller
            if isinstance(self.controller, AlphaShiftController)
            else None
        )
        self.ladder = DegradationLadder(
            self.lb.pool, self.quality, resilience.ladder, controller=controller
        )
        self._eval_gap = resilience.ladder.min_evaluate_gap
        interval = resilience.ladder.check_interval

        def tick() -> None:
            self._evaluate(sim.now)
            sim.schedule_fire(interval, tick)

        sim.schedule_fire(interval, tick)

    def on_backend_added(self, name: str, now: int) -> None:
        """Reset measurement state for a backend entering the pool.

        The fleet plane reuses backend names across terminate/provision
        cycles; stale estimates, breaker history, or signal-quality state
        from the previous incarnation must not grade the new one.
        """
        self.estimator.forget(name)
        self._was_invalid.pop(name, None)
        if self.breakers is not None:
            self.breakers.reset(name)
        if self.quality is not None:
            # Re-anchor the age clock: register() is a no-op for known
            # names, so drop the old tracker state first.
            self.quality.forget(name)
            self.quality.register(name, now)

    def on_backend_removed(self, name: str, now: int) -> None:
        """Drop measurement state for a backend leaving the pool.

        Called *before* the pool removal when a drain starts, so the
        ladder never sees the draining backend's decaying signal as a
        reason to HOLD.
        """
        self.estimator.forget(name)
        self._was_invalid.pop(name, None)
        if self.quality is not None:
            self.quality.forget(name)

    def _evaluate(self, now: int) -> None:
        """Walk the ladder and feed invalidation edges to the breakers."""
        self._last_eval = now
        self.ladder.evaluate(now)
        if self.breakers is None or self.quality is None:
            return
        from repro.resilience.quality import SignalGrade

        for name in self.lb.pool.names():
            invalid = self.quality.grade(name, now) is SignalGrade.INVALID
            if invalid and not self._was_invalid.get(name, False):
                # One failure per invalidation episode: the signal died.
                self.breakers.record_failure(name, now)
            self._was_invalid[name] = invalid

    def _on_packet(
        self, now: int, flow: FlowKey, backend: str, packet
    ) -> None:
        # ``packet`` is a Packet in object mode, an integer slab handle
        # in slab mode; only its flags (and, when censoring, its sequence
        # range) are read, so both forms are handled field-wise.
        state = self._get_or_create(flow, now)
        slab = self._slab
        if slab is not None and type(packet) is int:
            flags = slab.flags[packet]
            if self._censor:
                state.observe_seq_fields(
                    flags, slab.seq[packet], slab.payload_len[packet]
                )
        else:
            flags = packet.flags
            if self._censor:
                state.observe_seq(packet)
        metrics = self._metrics
        recorder = self._recorder
        if metrics is None and recorder is None:
            ensemble = state.ensemble
            t_lb = ensemble.observe(now)
        else:
            epochs_before = state.ensemble.epochs_completed
            t_lb = state.ensemble.observe(now)
            if state.ensemble.epochs_completed != epochs_before:
                if metrics is not None:
                    metrics.epoch_rolls.inc()
                    metrics.cliff_picks.labels(
                        delta_us=state.ensemble.current_timeout // 1000
                    ).inc()
                if recorder is not None:
                    recorder.on_epoch_roll(now, state.ensemble.current_timeout)

        if flags & _FIN_OR_RST:
            # The flow is ending; its measurement state is no longer useful.
            self.flows.remove(flow)

        if t_lb is None:
            return

        if self._censor and state.tainted:
            # This batch gap straddles a loss-recovery stall; drop it.
            state.tainted = False
            self.censored_samples += 1
            if metrics is not None:
                metrics.censored.inc()
            return

        self._est_observe(backend, now, t_lb)
        if metrics is not None:
            metrics.tlb_samples.labels(
                backend=backend,
                delta_us=state.ensemble.current_timeout // 1000,
            ).inc()
        if self._tracer is not None:
            self._tracer.on_sample(
                now, flow, backend, t_lb, state.ensemble.current_timeout
            )
        if self._record:
            self.samples.append(SampleRecord(now, flow, backend, t_lb))
            series = self.sample_series.get(backend)
            if series is None:
                series = TimeSeries(name=backend)
                self.sample_series[backend] = series
            series.append(now, float(t_lb))

        if self.breakers is not None:
            # A T_LB sample is live-traffic evidence the backend answers.
            self.breakers.record_success(backend, now)
        if self.ladder is not None:
            # _feedback_mode was cached by _wire_resilience; no per-packet
            # import of the resilience plane.
            if self._eval_gap == 0 or now - self._last_eval >= self._eval_gap:
                self._evaluate(now)
            if self.ladder.mode is not self._feedback_mode:
                return  # weights frozen: the signal is not trusted
        if self.controller is not None:
            self.controller.maybe_update(now)
