"""Per-backend latency estimation from per-flow ``T_LB`` samples.

Flows measured by ENSEMBLETIMEOUT are pinned to backends (conntrack),
so each sample can be attributed to the backend serving that flow.  The
estimator maintains, per backend:

* a time-decaying EWMA (robust to uneven per-backend sample rates), and
* an exact sliding-window p95 (matches the paper's tail-latency focus).

The controller asks for a ranking; ``metric`` selects which statistic
ranks backends.  Backends with fewer than ``min_samples`` recent samples
are excluded from ranking decisions — shifting traffic based on one
noisy sample is how thundering herds start (paper §5, question 4).

With a :class:`~repro.resilience.quality.SignalQualityTracker`
attached (:meth:`BackendLatencyEstimator.attach_quality`), the
estimator also grades what it serves: ranking calls that pass ``now``
exclude backends whose signal has been invalidated and flag estimates
that have gone stale, so downstream consumers can refuse to act on a
signal they don't trust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.telemetry.ewma import TimeDecayEwma
from repro.telemetry.quantiles import WindowedQuantile
from repro.units import MILLISECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only (resilience imports core)
    from repro.resilience.quality import SignalQualityTracker


@dataclass
class EstimatorConfig:
    """Estimator tunables."""

    metric: str = "ewma"            # "ewma" | "p95" | "p50"
    window: int = 64                # samples kept per backend
    tau: int = 10 * MILLISECONDS    # EWMA time constant
    min_samples: int = 3            # samples needed before ranking

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if self.metric not in ("ewma", "p95", "p50"):
            raise ValueError("unknown metric %r" % self.metric)
        if self.window <= 0 or self.tau <= 0 or self.min_samples <= 0:
            raise ValueError("estimator parameters must be positive")


@dataclass
class BackendEstimate:
    """Snapshot of one backend's estimated latency."""

    backend: str
    value: float
    samples: int
    last_sample_at: int
    #: True when an attached quality tracker graded the signal stale
    #: (set only by ranking calls that pass ``now``).
    stale: bool = False


class _BackendState:
    __slots__ = ("ewma", "window", "samples", "last_sample_at")

    def __init__(self, config: EstimatorConfig):
        self.ewma = TimeDecayEwma(tau=config.tau)
        self.window = WindowedQuantile(window=config.window)
        self.samples = 0
        self.last_sample_at = 0


class BackendLatencyEstimator:
    """Aggregates ``T_LB`` samples into per-backend latency estimates."""

    def __init__(self, config: Optional[EstimatorConfig] = None):
        self.config = config or EstimatorConfig()
        self.config.validate()
        self._backends: Dict[str, _BackendState] = {}
        self.total_samples = 0
        self._quality: Optional["SignalQualityTracker"] = None
        self._metrics = None

    def attach_quality(self, tracker: "SignalQualityTracker") -> None:
        """Grade served estimates with ``tracker`` (fed on observe)."""
        self._quality = tracker

    def attach_metrics(self, metrics) -> None:
        """Attach estimator instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics

    @property
    def quality(self) -> Optional["SignalQualityTracker"]:
        """The attached signal-quality tracker, if any."""
        return self._quality

    def observe(self, backend: str, now: int, t_lb: int) -> None:
        """Attribute one ``T_LB`` sample (ns) to ``backend``."""
        if t_lb < 0:
            raise ValueError("negative latency sample: %d" % t_lb)
        state = self._backends.get(backend)
        if state is None:
            state = _BackendState(self.config)
            self._backends[backend] = state
        state.ewma.observe(now, float(t_lb))
        state.window.observe(float(t_lb))
        state.samples += 1
        state.last_sample_at = now
        self.total_samples += 1
        if self._quality is not None:
            self._quality.observe(backend, now, float(t_lb))
        if self._metrics is not None:
            self._metrics.samples.labels(backend=backend).inc()
            if t_lb > 0:  # the log-bucketed histogram needs positive values
                self._metrics.latency.labels(backend=backend).observe(float(t_lb))

    def observe_batch(self, backend: str, samples) -> None:
        """Fold a burst of ``(time, t_lb)`` samples for one backend.

        Equivalent to calling :meth:`observe` per sample, with the
        per-backend state lookup and the instrument/quality presence
        checks hoisted out of the loop — the seam the batched T_LB
        observe path (:meth:`EnsembleTimeout.observe_batch` output)
        feeds directly.
        """
        if not samples:
            return
        state = self._backends.get(backend)
        if state is None:
            state = _BackendState(self.config)
            self._backends[backend] = state
        ewma_observe = state.ewma.observe
        window_observe = state.window.observe
        quality = self._quality
        metrics = self._metrics
        for now, t_lb in samples:
            if t_lb < 0:
                raise ValueError("negative latency sample: %d" % t_lb)
            value = float(t_lb)
            ewma_observe(now, value)
            window_observe(value)
            state.samples += 1
            state.last_sample_at = now
            self.total_samples += 1
            if quality is not None:
                quality.observe(backend, now, value)
            if metrics is not None:
                metrics.samples.labels(backend=backend).inc()
                if t_lb > 0:  # the log-bucketed histogram needs positive values
                    metrics.latency.labels(backend=backend).observe(value)

    def estimate(self, backend: str) -> Optional[float]:
        """Current estimate for ``backend`` (ns), or None if unknown."""
        state = self._backends.get(backend)
        if state is None:
            return None
        return self._metric_value(state)

    def sample_counts(self) -> Dict[str, int]:
        """Samples folded in per backend so far (pure read, sorted)."""
        return {name: s.samples for name, s in sorted(self._backends.items())}

    def snapshot(self, now: Optional[int] = None) -> List[BackendEstimate]:
        """Estimates for all backends meeting ``min_samples``.

        With a quality tracker attached and ``now`` given, backends
        whose signal has been invalidated are excluded and estimates
        with a stale signal carry ``stale=True``.
        """
        grade = None
        if self._quality is not None and now is not None:
            from repro.resilience.quality import SignalGrade

            grade = {
                name: self._quality.grade(name, now) for name in self._backends
            }
        result = []
        for name, state in sorted(self._backends.items()):
            if state.samples < self.config.min_samples:
                continue
            stale = False
            if grade is not None:
                if grade[name] is SignalGrade.INVALID:
                    continue
                stale = grade[name] is not SignalGrade.FRESH
            value = self._metric_value(state)
            if value is None:
                continue
            result.append(
                BackendEstimate(
                    backend=name,
                    value=value,
                    samples=state.samples,
                    last_sample_at=state.last_sample_at,
                    stale=stale,
                )
            )
        return result

    def worst_and_best(self, now: Optional[int] = None) -> Optional[tuple]:
        """(worst, best) :class:`BackendEstimate` pair, or None if < 2."""
        estimates = self.snapshot(now)
        if len(estimates) < 2:
            return None
        ranked = sorted(estimates, key=lambda e: e.value)
        return ranked[-1], ranked[0]

    def forget(self, backend: str) -> None:
        """Drop a backend's state (pool churn)."""
        self._backends.pop(backend, None)
        if self._quality is not None:
            self._quality.forget(backend)

    def _metric_value(self, state: _BackendState) -> Optional[float]:
        if self.config.metric == "ewma":
            return state.ewma.value
        if self.config.metric == "p95":
            return state.window.quantile(0.95)
        return state.window.quantile(0.50)
