"""The paper's load-balancing control strategy (§3, "Simple load
balancing strategy").

    "Inspired by gradient-based methods used in traffic engineering, we
    use a simple load-balancing strategy that redistributes a fixed
    fraction α of total traffic from the server with the highest latency
    (as measured by ENSEMBLETIMEOUT) equally over all other servers.  We
    use α = 10%.  The traffic shift may occur every time the LB receives
    a new sample of response latency."

Traffic shares are backend weights (driving the weighted Maglev table).
Beyond the verbatim rule, the controller exposes guard rails the paper's
open questions motivate, all configurable and all defaulting to
paper-faithful or near-inert values:

* ``weight_floor`` — a backend's weight never drops below this, so it
  keeps receiving probe traffic; without residual flow the LB could
  never observe the backend recovering.  (Necessary for any closed-loop
  operation; the paper's 2-server/α=10% setup implicitly had it since
  shifts stop mattering once the slow server still gets *some* flows.)
* ``min_interval`` — minimum time between shifts (0 = per-sample, the
  paper's cadence).
* ``hysteresis_ratio`` — only shift when worst ≥ ratio × best.
  1.0 is the paper-verbatim rule (always shift), but in a closed-loop
  queueing system that rule is unstable: latency noise triggers shifts
  every sample and weights random-walk into the floor.  The default of
  1.2 keeps the controller quiet within noise and still fires orders of
  magnitude below the 1 ms / ~3× inflation of the Fig 3 stimulus.  The
  ABL-HYST bench demonstrates the collapse at 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.estimator import BackendLatencyEstimator
from repro.errors import ConfigError
from repro.lb.backend import BackendPool


@dataclass
class ControllerConfig:
    """α-shift controller tunables (defaults follow the paper)."""

    alpha: float = 0.10
    weight_floor: float = 0.02
    min_interval: int = 0
    hysteresis_ratio: float = 1.2

    def validate(self) -> None:
        """Raise ConfigError on malformed parameters."""
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError("alpha must be in (0, 1), got %r" % self.alpha)
        if not 0.0 <= self.weight_floor < 1.0:
            raise ConfigError("weight_floor must be in [0, 1)")
        if self.min_interval < 0:
            raise ConfigError("min_interval must be >= 0")
        if self.hysteresis_ratio < 1.0:
            raise ConfigError("hysteresis_ratio must be >= 1.0")


@dataclass
class ShiftEvent:
    """Record of one executed traffic shift (for reaction-time benches)."""

    time: int
    from_backend: str
    worst_estimate: float
    best_estimate: float
    weights_after: Dict[str, float] = field(default_factory=dict)
    #: Why the shift fired: ``"hysteresis-pass"`` (the normal rule),
    #: ``"post-fallback-rebalance"`` (first shift after the resilience
    #: ladder left FALLBACK), or ``"mode-change"`` (the ladder's own
    #: uniform relax on FALLBACK entry).
    reason: str = "hysteresis-pass"
    #: The best-ranked backend the decision compared against (None for
    #: mode-change shifts, which do not rank).  Lets causal tracing
    #: recover both sides of the worst-vs-best comparison.
    best_backend: Optional[str] = None


class AlphaShiftController:
    """Moves weight away from the highest-latency backend.

    ``maybe_shift(now)`` is called by the feedback loop whenever a new
    ``T_LB`` sample lands; it consults the estimator and, if a shift is
    warranted, updates the pool's weights (which triggers the Maglev
    rebuild via the pool's change listener).
    """

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[ControllerConfig] = None,
    ):
        self.pool = pool
        self.estimator = estimator
        self.config = config or ControllerConfig()
        self.config.validate()
        self.shifts: List[ShiftEvent] = []
        self._last_shift_at: Optional[int] = None
        #: Set by the resilience ladder: tags the next executed shift.
        self.pending_reason: Optional[str] = None
        #: Shifts refused because a consulted estimate was stale.
        self.stale_holds = 0
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Attach controller instruments (see :mod:`repro.obs.plane`)."""
        self._metrics = metrics

    @property
    def shift_count(self) -> int:
        """Total shifts executed."""
        return len(self.shifts)

    @property
    def updates(self) -> List[ShiftEvent]:
        """Uniform accessor shared with the alternative strategies."""
        return self.shifts

    def maybe_update(self, now: int) -> Optional[ShiftEvent]:
        """Uniform entry point shared with the alternative strategies."""
        return self.maybe_shift(now)

    def record_shift(self, event: ShiftEvent) -> None:
        """Log a shift executed outside the α rule (the ladder's relax)."""
        self.shifts.append(event)
        if self._metrics is not None:
            self._metrics.shifts.labels(reason=event.reason).inc()

    def maybe_shift(self, now: int) -> Optional[ShiftEvent]:
        """Evaluate and possibly execute one α-shift; returns the event."""
        config = self.config
        if (
            self._last_shift_at is not None
            and now - self._last_shift_at < config.min_interval
        ):
            return None

        ranked = self.estimator.worst_and_best(now)
        if ranked is None:
            return None
        worst, best = ranked
        if worst.stale or best.stale:
            # Never shift on a signal you don't trust: a stale estimate
            # may describe a backend that has since drained or died.
            self.stale_holds += 1
            if self._metrics is not None:
                self._metrics.stale_holds.inc()
            return None
        if worst.value < config.hysteresis_ratio * best.value:
            return None
        if worst.value <= best.value:
            return None  # nothing to gain (all equal)

        weights = self.pool.weights()
        if worst.backend not in weights or len(weights) < 2:
            return None

        new_weights = self._shift_weights(weights, worst.backend)
        if new_weights is None:
            return None

        self.pool.set_weights(new_weights)
        reason = self.pending_reason or "hysteresis-pass"
        self.pending_reason = None
        event = ShiftEvent(
            time=now,
            from_backend=worst.backend,
            worst_estimate=worst.value,
            best_estimate=best.value,
            weights_after=dict(new_weights),
            reason=reason,
            best_backend=best.backend,
        )
        self.shifts.append(event)
        self._last_shift_at = now
        if self._metrics is not None:
            self._metrics.shifts.labels(reason=reason).inc()
        return event

    def _shift_weights(
        self, weights: Dict[str, float], worst: str
    ) -> Optional[Dict[str, float]]:
        """α of *total* weight moves off ``worst``, split equally."""
        total = sum(weights.values())
        if total <= 0:
            return None
        shift = self.config.alpha * total
        floor = self.config.weight_floor * total
        available = weights[worst] - floor
        if available <= 0:
            return None  # already at the floor
        shift = min(shift, available)

        others = [name for name in weights if name != worst]
        share = shift / len(others)
        new_weights = dict(weights)
        new_weights[worst] -= shift
        for name in others:
            new_weights[name] += share
        return new_weights
