"""Per-flow measurement state management.

A real LB tracks measurement state for millions of flows in bounded
memory.  :class:`FlowTable` provides that discipline for the simulation:
a dict keyed by :class:`~repro.net.addr.FlowKey` with

* **idle eviction** — state for flows silent longer than
  ``idle_timeout`` is dropped during amortized sweeps;
* **capacity bound** — when full, the least-recently-active flow is
  evicted (the estimator prefers losing a quiet flow's state over
  unbounded growth).

It is generic over the state object (the feedback loop stores one
:class:`~repro.core.ensemble.EnsembleTimeout` plus the flow's backend).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Optional, Tuple, TypeVar

from repro.net.addr import FlowKey
from repro.units import SECONDS

S = TypeVar("S")


@dataclass
class FlowTableStats:
    """Lifetime counters."""

    created: int = 0
    evicted_idle: int = 0
    evicted_capacity: int = 0
    removed: int = 0


class FlowTable(Generic[S]):
    """Bounded, idle-evicting map of flow → measurement state."""

    def __init__(
        self,
        factory: Callable[[FlowKey], S],
        capacity: int = 100_000,
        idle_timeout: int = 10 * SECONDS,
        sweep_every: int = 2048,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if idle_timeout <= 0:
            raise ValueError("idle timeout must be positive")
        self._factory = factory
        self._capacity = capacity
        self._idle_timeout = idle_timeout
        self._sweep_every = max(1, sweep_every)
        # Ordered by recency: oldest-first (move_to_end on touch).
        self._entries: "OrderedDict[FlowKey, Tuple[int, S]]" = OrderedDict()
        self._ops = 0
        self.stats = FlowTableStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow: FlowKey) -> bool:
        return flow in self._entries

    def get_or_create(self, flow: FlowKey, now: int) -> S:
        """State for ``flow``, creating it on first sight."""
        self._ops += 1
        if self._ops % self._sweep_every == 0:
            self._sweep(now)

        entries = self._entries
        entry = entries.get(flow)
        if entry is not None:
            # Entries are mutable [last_seen, state] pairs so a touch is
            # an in-place store plus move_to_end, not a tuple realloc.
            entry[0] = now
            entries.move_to_end(flow)
            return entry[1]

        if len(entries) >= self._capacity:
            entries.popitem(last=False)
            self.stats.evicted_capacity += 1

        state = self._factory(flow)
        entries[flow] = [now, state]
        self.stats.created += 1
        return state

    def peek(self, flow: FlowKey) -> Optional[S]:
        """State for ``flow`` without refreshing recency; None if absent."""
        entry = self._entries.get(flow)
        return entry[1] if entry is not None else None

    def remove(self, flow: FlowKey) -> None:
        """Drop a flow's state (e.g. after FIN)."""
        if self._entries.pop(flow, None) is not None:
            self.stats.removed += 1

    def _sweep(self, now: int) -> None:
        # Entries are recency-ordered; stop at the first live one.
        stale = []
        for flow, (last_seen, _state) in self._entries.items():
            if now - last_seen > self._idle_timeout:
                stale.append(flow)
            else:
                break
        for flow in stale:
            del self._entries[flow]
            self.stats.evicted_idle += 1
