"""Algorithm 2 — ENSEMBLETIMEOUT.

Runs *k* FIXEDTIMEOUT instances with exponentially spaced timeouts
(paper default: δ₁ = 64 µs, δ₂ = 128 µs, …, δ₇ = 4 ms) on every packet
of a flow.  Over each epoch *E* (paper default 64 ms) it counts how many
samples each timeout produced (``N_i``).  At the first packet of a new
epoch it finds the **sample cliff** — the largest drop in sample count
between adjacent timeouts, ``m = argmaxᵢ (Nᵢ / Nᵢ₊₁)`` — and uses δₘ as
the reporting timeout for the next epoch.

Intuition (paper §3): a too-small δ chops true batches apart and floods
low samples; a too-large δ merges batches and produces few, inflated
samples.  The count-vs-δ curve therefore falls off a cliff right past
the ideal timeout, and the cliff's left edge is a good δ.

Implementation notes beyond the pseudocode (documented choices, see
DESIGN.md §5):

* ``Nᵢ₊₁ = 0`` — the ratio uses ``max(Nᵢ₊₁, 1)`` so a zero count does
  not divide by zero; a timeout that produced nothing while its
  neighbour produced plenty is exactly a cliff.
* All-zero epochs (an idle flow) keep the previous δₑ.
* The first epoch has no cliff information yet; the initial reporting
  timeout is the *smallest* δ (configurable) — matching the paper's
  observation that low timeouts at least keep producing samples.

Fused fast path
---------------

``observe`` is called for **every** packet the LB forwards, which makes
it the hottest Python in the reproduction.  The naive implementation
walks all *k* FIXEDTIMEOUT instances per packet, but the ensemble's
structure makes most of that work redundant: the δ ladder is sorted
ascending, so for an inter-packet gap *g*,

    ``g > δᵢ  ⇒  g > δⱼ``  for every *j ≤ i*.

Exactly the instances with ``δᵢ < g`` start a new batch; they form a
prefix of the ladder whose length is one :func:`bisect.bisect_left`
(O(log k)), and only those ``rolled`` instances need their batch state
touched.  A mid-batch packet (``g ≤ δ₁``, the overwhelmingly common
case) is O(1): nothing rolls.  Since every instance shares the same
``time_last_pkt``, the fused path keeps one shared last-packet stamp
plus flat per-instance arrays instead of *k* objects.

The naive per-instance path is preserved behind
``EnsembleTimeout(..., fused=False)`` so differential tests can verify
the two produce byte-identical samples, counts, and cliff choices.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.fixed_timeout import FixedTimeout
from repro.units import MICROSECONDS, MILLISECONDS

try:  # optional acceleration; the pure-python path is always kept
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


def _cliff_python(counts: Sequence[int]) -> int:
    """``argmaxᵢ Nᵢ / max(Nᵢ₊₁, 1)`` — reference implementation."""
    best_index = 0
    best_ratio = -1.0
    for i in range(len(counts) - 1):
        ratio = counts[i] / max(counts[i + 1], 1)
        if ratio > best_ratio:
            best_ratio = ratio
            best_index = i
    return best_index


def _cliff_numpy(counts: Sequence[int]) -> int:
    """Vectorized cliff detection.

    Byte-identical to :func:`_cliff_python`: the division is the same
    IEEE-754 double divide, and ``argmax`` resolves ties to the first
    index exactly like the reference loop's strict ``>`` comparison.
    """
    arr = _np.asarray(counts, dtype=_np.float64)
    ratios = arr[:-1] / _np.maximum(arr[1:], 1.0)
    return int(ratios.argmax())


#: The cliff detector in use: numpy when importable, else pure python.
#: Differential tests call both implementations directly.
detect_cliff_index = _cliff_python if _np is None else _cliff_numpy


def default_timeouts() -> List[int]:
    """The paper's ensemble: 64 µs, 128 µs, …, 4 ms (k = 7)."""
    return [64 * MICROSECONDS * (2 ** i) for i in range(7)]


@dataclass
class EnsembleConfig:
    """ENSEMBLETIMEOUT parameters (paper defaults)."""

    timeouts: Sequence[int] = field(default_factory=default_timeouts)
    epoch: int = 64 * MILLISECONDS
    initial_index: int = 0

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if len(self.timeouts) < 2:
            raise ValueError("ensemble needs at least two timeouts")
        if list(self.timeouts) != sorted(self.timeouts):
            raise ValueError("timeouts must be sorted ascending")
        if len(set(self.timeouts)) != len(self.timeouts):
            raise ValueError("timeouts must be distinct")
        if any(t <= 0 for t in self.timeouts):
            raise ValueError("timeouts must be positive")
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0 <= self.initial_index < len(self.timeouts):
            raise ValueError("initial_index out of range")


class EnsembleTimeout:
    """Per-flow ensemble estimator (one instance per tracked flow).

    ``observe(now)`` is called for every packet of the flow arriving at
    the LB and returns a ``T_LB`` sample when the *currently selected*
    timeout's FIXEDTIMEOUT instance produced one, else None.

    ``fused=True`` (the default) uses the O(log k) prefix-roll fast path
    documented in the module docstring; ``fused=False`` runs the literal
    k FIXEDTIMEOUT instances from the pseudocode.  Both paths produce
    identical samples, :meth:`sample_counts`, and ``cliff_history``.
    """

    __slots__ = (
        "config",
        "fused",
        "_instances",
        "_deltas",
        "_last_batch",
        "_last_pkt",
        "_samples_produced",
        "_epoch_len",
        "_counts",
        "_epoch_start",
        "_current",
        "epochs_completed",
        "cliff_history",
    )

    def __init__(self, config: Optional[EnsembleConfig] = None, fused: bool = True):
        self.config = config or EnsembleConfig()
        self.config.validate()
        self.fused = fused
        self._deltas = list(self.config.timeouts)
        # Cached once: observe() reads the epoch length per packet and
        # the config is immutable after validate().
        self._epoch_len = self.config.epoch
        k = len(self._deltas)
        if fused:
            self._instances = None
            self._last_batch: List[int] = [0] * k
            self._last_pkt: Optional[int] = None
            self._samples_produced = [0] * k
        else:
            self._instances = [FixedTimeout(delta) for delta in self._deltas]
        self._counts = [0] * k
        self._epoch_start: Optional[int] = None
        self._current = self.config.initial_index
        self.epochs_completed = 0
        #: (epoch_end_time, chosen_index) per completed epoch, for Fig 2(b).
        self.cliff_history: List[tuple] = []

    @property
    def current_timeout(self) -> int:
        """The δₑ in use for the current epoch (ns)."""
        return self._deltas[self._current]

    @property
    def current_index(self) -> int:
        """Index of δₑ in the ensemble."""
        return self._current

    @property
    def instances(self) -> List[FixedTimeout]:
        """Per-timeout FIXEDTIMEOUT state (views when fused).

        In naive mode these are the live Algorithm 1 instances; in fused
        mode equivalent snapshots are materialized on demand, so
        introspection and differential tests can compare state without
        slowing the hot path.
        """
        if self._instances is not None:
            return list(self._instances)
        views = []
        for i, delta in enumerate(self._deltas):
            view = FixedTimeout(delta)
            if self._last_pkt is not None:
                view.time_last_batch = self._last_batch[i]
                view.time_last_pkt = self._last_pkt
            view.samples_produced = self._samples_produced[i]
            views.append(view)
        return views

    def sample_counts(self) -> List[int]:
        """This epoch's per-timeout sample counts so far (N_i)."""
        return list(self._counts)

    def observe(self, now: int) -> Optional[int]:
        """Feed one packet arrival; maybe emit a ``T_LB`` sample.

        Epoch boundaries are detected *before* processing the packet, as
        in the pseudocode ("if current packet is the first of a new
        epoch"), so the packet that opens an epoch is measured with the
        freshly chosen timeout.
        """
        epoch_start = self._epoch_start
        if epoch_start is None:
            self._epoch_start = now
        elif now - epoch_start >= self._epoch_len:
            self._end_epoch(now)

        if not self.fused:
            return self._observe_naive(now)

        last_pkt = self._last_pkt
        self._last_pkt = now
        if last_pkt is None:
            # First packet of the flow: start every instance's first batch.
            self._last_batch = [now] * len(self._deltas)
            return None

        gap = now - last_pkt
        deltas = self._deltas
        if gap <= deltas[0]:
            return None  # mid-batch for every δ: the O(1) common case

        # Instances with δᵢ < gap — a prefix of the sorted ladder — roll.
        if gap > deltas[-1]:
            rolled = len(deltas)
        else:
            rolled = bisect_left(deltas, gap)

        current = self._current
        last_batch = self._last_batch
        result = now - last_batch[current] if current < rolled else None
        counts = self._counts
        samples = self._samples_produced
        for i in range(rolled):
            counts[i] += 1
            samples[i] += 1
            last_batch[i] = now
        return result

    def observe_batch(self, times: Sequence[int]) -> List[Tuple[int, int]]:
        """Feed a sorted burst of packet arrivals at once.

        Returns the emitted samples as ``(time, t_lb)`` pairs — exactly
        the non-None results of calling :meth:`observe` per time, in
        order.  The win over the loop-of-calls spelling is that the
        overwhelmingly common case (fused mode, mid-batch packet, no
        epoch boundary) is recognized with hoisted locals and no method
        call; everything else falls through to :meth:`observe`, so the
        two spellings are byte-identical by construction.
        """
        out: List[Tuple[int, int]] = []
        append = out.append
        observe = self.observe
        if self.fused:
            epoch = self._epoch_len
            d0 = self._deltas[0]
            for now in times:
                epoch_start = self._epoch_start
                last_pkt = self._last_pkt
                if (
                    epoch_start is not None
                    and last_pkt is not None
                    and now - epoch_start < epoch
                    and now - last_pkt <= d0
                ):
                    # Mid-batch for every δ, mid-epoch: nothing rolls.
                    self._last_pkt = now
                    continue
                t_lb = observe(now)
                if t_lb is not None:
                    append((now, t_lb))
        else:
            for now in times:
                t_lb = observe(now)
                if t_lb is not None:
                    append((now, t_lb))
        return out

    def _observe_naive(self, now: int) -> Optional[int]:
        """The literal Algorithm 2 inner loop (reference implementation)."""
        result: Optional[int] = None
        for index, instance in enumerate(self._instances):
            t_lb = instance.observe(now)
            if t_lb is not None:
                self._counts[index] += 1
                if index == self._current:
                    result = t_lb
        return result

    def _end_epoch(self, now: int) -> None:
        chosen = self._detect_cliff()
        if chosen is not None:
            self._current = chosen
        self.cliff_history.append((now, self._current))
        self._counts = [0] * len(self._deltas)
        # Advance the epoch window to contain `now` (idle gaps may span
        # several epochs; counters reset either way).
        assert self._epoch_start is not None
        span = now - self._epoch_start
        self._epoch_start += (span // self._epoch_len) * self._epoch_len
        self.epochs_completed += 1

    def _detect_cliff(self) -> Optional[int]:
        """``argmaxᵢ Nᵢ / Nᵢ₊₁`` over adjacent timeout pairs.

        Returns None when no timeout produced any sample (idle epoch).
        """
        if not any(self._counts):
            return None
        return detect_cliff_index(self._counts)
