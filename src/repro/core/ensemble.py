"""Algorithm 2 — ENSEMBLETIMEOUT.

Runs *k* FIXEDTIMEOUT instances with exponentially spaced timeouts
(paper default: δ₁ = 64 µs, δ₂ = 128 µs, …, δ₇ = 4 ms) on every packet
of a flow.  Over each epoch *E* (paper default 64 ms) it counts how many
samples each timeout produced (``N_i``).  At the first packet of a new
epoch it finds the **sample cliff** — the largest drop in sample count
between adjacent timeouts, ``m = argmaxᵢ (Nᵢ / Nᵢ₊₁)`` — and uses δₘ as
the reporting timeout for the next epoch.

Intuition (paper §3): a too-small δ chops true batches apart and floods
low samples; a too-large δ merges batches and produces few, inflated
samples.  The count-vs-δ curve therefore falls off a cliff right past
the ideal timeout, and the cliff's left edge is a good δ.

Implementation notes beyond the pseudocode (documented choices, see
DESIGN.md §5):

* ``Nᵢ₊₁ = 0`` — the ratio uses ``max(Nᵢ₊₁, 1)`` so a zero count does
  not divide by zero; a timeout that produced nothing while its
  neighbour produced plenty is exactly a cliff.
* All-zero epochs (an idle flow) keep the previous δₑ.
* The first epoch has no cliff information yet; the initial reporting
  timeout is the *smallest* δ (configurable) — matching the paper's
  observation that low timeouts at least keep producing samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.fixed_timeout import FixedTimeout
from repro.units import MICROSECONDS, MILLISECONDS


def default_timeouts() -> List[int]:
    """The paper's ensemble: 64 µs, 128 µs, …, 4 ms (k = 7)."""
    return [64 * MICROSECONDS * (2 ** i) for i in range(7)]


@dataclass
class EnsembleConfig:
    """ENSEMBLETIMEOUT parameters (paper defaults)."""

    timeouts: Sequence[int] = field(default_factory=default_timeouts)
    epoch: int = 64 * MILLISECONDS
    initial_index: int = 0

    def validate(self) -> None:
        """Raise ValueError on malformed parameters."""
        if len(self.timeouts) < 2:
            raise ValueError("ensemble needs at least two timeouts")
        if list(self.timeouts) != sorted(self.timeouts):
            raise ValueError("timeouts must be sorted ascending")
        if len(set(self.timeouts)) != len(self.timeouts):
            raise ValueError("timeouts must be distinct")
        if any(t <= 0 for t in self.timeouts):
            raise ValueError("timeouts must be positive")
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0 <= self.initial_index < len(self.timeouts):
            raise ValueError("initial_index out of range")


class EnsembleTimeout:
    """Per-flow ensemble estimator (one instance per tracked flow).

    ``observe(now)`` is called for every packet of the flow arriving at
    the LB and returns a ``T_LB`` sample when the *currently selected*
    timeout's FIXEDTIMEOUT instance produced one, else None.
    """

    __slots__ = (
        "config",
        "_instances",
        "_counts",
        "_epoch_start",
        "_current",
        "epochs_completed",
        "cliff_history",
    )

    def __init__(self, config: Optional[EnsembleConfig] = None):
        self.config = config or EnsembleConfig()
        self.config.validate()
        self._instances = [FixedTimeout(delta) for delta in self.config.timeouts]
        self._counts = [0] * len(self._instances)
        self._epoch_start: Optional[int] = None
        self._current = self.config.initial_index
        self.epochs_completed = 0
        #: (epoch_end_time, chosen_index) per completed epoch, for Fig 2(b).
        self.cliff_history: List[tuple] = []

    @property
    def current_timeout(self) -> int:
        """The δₑ in use for the current epoch (ns)."""
        return self.config.timeouts[self._current]

    @property
    def current_index(self) -> int:
        """Index of δₑ in the ensemble."""
        return self._current

    def sample_counts(self) -> List[int]:
        """This epoch's per-timeout sample counts so far (N_i)."""
        return list(self._counts)

    def observe(self, now: int) -> Optional[int]:
        """Feed one packet arrival; maybe emit a ``T_LB`` sample.

        Epoch boundaries are detected *before* processing the packet, as
        in the pseudocode ("if current packet is the first of a new
        epoch"), so the packet that opens an epoch is measured with the
        freshly chosen timeout.
        """
        if self._epoch_start is None:
            self._epoch_start = now
        elif now - self._epoch_start >= self.config.epoch:
            self._end_epoch(now)

        result: Optional[int] = None
        for index, instance in enumerate(self._instances):
            t_lb = instance.observe(now)
            if t_lb is not None:
                self._counts[index] += 1
                if index == self._current:
                    result = t_lb
        return result

    def _end_epoch(self, now: int) -> None:
        chosen = self._detect_cliff()
        if chosen is not None:
            self._current = chosen
        self.cliff_history.append((now, self._current))
        self._counts = [0] * len(self._instances)
        # Advance the epoch window to contain `now` (idle gaps may span
        # several epochs; counters reset either way).
        assert self._epoch_start is not None
        span = now - self._epoch_start
        self._epoch_start += (span // self.config.epoch) * self.config.epoch
        self.epochs_completed += 1

    def _detect_cliff(self) -> Optional[int]:
        """``argmaxᵢ Nᵢ / Nᵢ₊₁`` over adjacent timeout pairs.

        Returns None when no timeout produced any sample (idle epoch).
        """
        if not any(self._counts):
            return None
        best_index = 0
        best_ratio = -1.0
        for i in range(len(self._counts) - 1):
            ratio = self._counts[i] / max(self._counts[i + 1], 1)
            if ratio > best_ratio:
                best_ratio = ratio
                best_index = i
        return best_index
