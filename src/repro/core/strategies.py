"""Alternative control strategies (open question #4).

The paper's §5 asks for "more sophisticated control loops".  Beyond the
verbatim α-shift rule (:mod:`~repro.core.controller`), this module
provides two classic shapes, both driving the same weighted-Maglev knob
and consuming the same per-backend estimator:

* :class:`ProportionalController` — weights ∝ (1/latency)^p, recomputed
  at a bounded rate.  Smooth, stateless in the control sense, and a
  natural gradient-free baseline: a backend twice as slow gets half the
  traffic (p = 1).
* :class:`AimdController` — multiplicative decrease for backends whose
  latency exceeds a threshold over the pool's best, additive recovery
  otherwise; the TCP-flavoured answer, which trades convergence speed
  for stability.

All controllers expose ``maybe_update(now)`` and a ``updates`` event
list, so the feedback plane and the benches treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.estimator import BackendLatencyEstimator
from repro.errors import ConfigError
from repro.lb.backend import BackendPool
from repro.units import MILLISECONDS


@dataclass
class WeightUpdate:
    """Record of one executed weight recomputation."""

    time: int
    weights_after: Dict[str, float] = field(default_factory=dict)


def _renormalize_with_floor(
    weights: Dict[str, float], total: float, floor: float
) -> Dict[str, float]:
    """Scale ``weights`` to sum to ``total`` with every entry >= floor.

    Floored entries are pinned; the remainder is distributed over the
    others proportionally.  This conserves the pool's total weight
    exactly (no per-step leakage), which keeps long-running controllers
    stable.
    """
    result = {name: max(0.0, value) for name, value in weights.items()}
    if floor * len(result) >= total:
        # Degenerate: the floors alone exhaust the budget; split evenly.
        return {name: total / len(result) for name in result}
    pinned: Dict[str, float] = {}
    for _ in range(len(result)):
        free = {n: v for n, v in result.items() if n not in pinned}
        budget = total - floor * len(pinned)
        free_sum = sum(free.values())
        # Vanishing weights (incl. subnormals) would overflow the scale
        # factor; treat them as zero and split the budget evenly.
        if free_sum <= total * 1e-12:
            share = budget / len(free)
            for name in free:
                result[name] = share
            break
        scale = budget / free_sum
        newly_pinned = False
        for name, value in free.items():
            scaled = value * scale
            if scaled < floor:
                pinned[name] = floor
                result[name] = floor
                newly_pinned = True
            else:
                result[name] = scaled
        if not newly_pinned:
            break
    return result


@dataclass
class ProportionalConfig:
    """Tunables for :class:`ProportionalController`."""

    power: float = 1.0
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if self.power <= 0:
            raise ConfigError("power must be positive")
        if not 0.0 <= self.weight_floor < 1.0 / 2:
            raise ConfigError("weight_floor must be in [0, 0.5)")
        if self.min_interval < 0:
            raise ConfigError("min_interval must be >= 0")


class ProportionalController:
    """Set weights proportional to ``(1/latency)^power``.

    Preserves the pool's total weight; every backend keeps at least the
    floor share so its estimate stays fresh.
    """

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[ProportionalConfig] = None,
    ):
        self.pool = pool
        self.estimator = estimator
        self.config = config or ProportionalConfig()
        self.config.validate()
        self.updates: List[WeightUpdate] = []
        self._last_update: Optional[int] = None

    def maybe_update(self, now: int) -> Optional[WeightUpdate]:
        """Recompute weights if the rate limit allows and data exists."""
        if (
            self._last_update is not None
            and now - self._last_update < self.config.min_interval
        ):
            return None
        estimates = {
            e.backend: e.value for e in self.estimator.snapshot() if e.value > 0
        }
        current = self.pool.weights()
        if len(estimates) < 2 or not set(estimates) <= set(current):
            return None

        total = sum(current.values())
        raw = {name: (1.0 / value) ** self.config.power for name, value in estimates.items()}
        # Backends without an estimate keep their current share.
        without = {n: w for n, w in current.items() if n not in raw}
        budget = total - sum(without.values())
        raw_total = sum(raw.values())
        new_weights = dict(without)
        for name, share in raw.items():
            new_weights[name] = budget * share / raw_total
        new_weights = _renormalize_with_floor(
            new_weights, total, self.config.weight_floor * total
        )
        self.pool.set_weights(new_weights)
        update = WeightUpdate(time=now, weights_after=dict(new_weights))
        self.updates.append(update)
        self._last_update = now
        return update


@dataclass
class AimdConfig:
    """Tunables for :class:`AimdController`."""

    decrease: float = 0.7
    increase: float = 0.05
    threshold: float = 1.3
    weight_floor: float = 0.02
    min_interval: int = 5 * MILLISECONDS

    def validate(self) -> None:
        """Raise ConfigError on malformed values."""
        if not 0.0 < self.decrease < 1.0:
            raise ConfigError("decrease must be in (0, 1)")
        if self.increase <= 0:
            raise ConfigError("increase must be positive")
        if self.threshold < 1.0:
            raise ConfigError("threshold must be >= 1")
        if not 0.0 <= self.weight_floor < 0.5:
            raise ConfigError("weight_floor must be in [0, 0.5)")
        if self.min_interval < 0:
            raise ConfigError("min_interval must be >= 0")


class AimdController:
    """Multiplicative decrease on slow backends, additive recovery.

    A backend whose estimate exceeds ``threshold ×`` the pool's best
    loses ``(1 − decrease)`` of its weight; all others gain an additive
    ``increase`` share.  Weights are renormalized to conserve the total.
    """

    def __init__(
        self,
        pool: BackendPool,
        estimator: BackendLatencyEstimator,
        config: Optional[AimdConfig] = None,
    ):
        self.pool = pool
        self.estimator = estimator
        self.config = config or AimdConfig()
        self.config.validate()
        self.updates: List[WeightUpdate] = []
        self._last_update: Optional[int] = None

    def maybe_update(self, now: int) -> Optional[WeightUpdate]:
        """Apply one AIMD step if the rate limit allows and data exists."""
        config = self.config
        if (
            self._last_update is not None
            and now - self._last_update < config.min_interval
        ):
            return None
        estimates = {e.backend: e.value for e in self.estimator.snapshot()}
        current = self.pool.weights()
        if len(estimates) < 2:
            return None
        best = min(estimates.values())
        if best <= 0:
            return None

        total = sum(current.values())
        new_weights = dict(current)
        changed = False
        for name, value in estimates.items():
            if name not in new_weights:
                continue
            if value > config.threshold * best:
                new_weights[name] *= config.decrease
                changed = True
            else:
                new_weights[name] += config.increase * total / len(current)
                changed = True
        if not changed:
            return None

        new_weights = _renormalize_with_floor(
            new_weights, total, config.weight_floor * total
        )
        self.pool.set_weights(new_weights)
        update = WeightUpdate(time=now, weights_after=dict(new_weights))
        self.updates.append(update)
        self._last_update = now
        return update
