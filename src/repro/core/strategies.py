"""Deprecated alias for the controller zoo.

.. deprecated::
    The alternative control laws moved to :mod:`repro.controllers`
    (``repro.controllers.proportional`` / ``repro.controllers.aimd``),
    where they share the formal ``Controller`` protocol and the
    name-keyed registry with the paper's α-shift rule and the newer
    laws.  This module re-exports the old names with a
    ``DeprecationWarning`` so existing imports keep working; new code
    should import from :mod:`repro.controllers`.
"""

from __future__ import annotations

import warnings

_MOVED = {
    "AimdConfig": "repro.controllers.aimd",
    "AimdController": "repro.controllers.aimd",
    "ProportionalConfig": "repro.controllers.proportional",
    "ProportionalController": "repro.controllers.proportional",
    "WeightUpdate": "repro.controllers.base",
    "_renormalize_with_floor": "repro.controllers.base",
}

#: Old private helper name → new public name.
_RENAMED = {"_renormalize_with_floor": "renormalize_with_floor"}


def __getattr__(name: str):
    module_name = _MOVED.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    warnings.warn(
        "repro.core.strategies.%s moved to %s.%s; "
        "import it from repro.controllers instead"
        % (name, module_name, _RENAMED.get(name, name)),
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, _RENAMED.get(name, name))


def __dir__():
    return sorted(_MOVED)
