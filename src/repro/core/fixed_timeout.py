"""Algorithm 1 — FIXEDTIMEOUT.

Verbatim from the paper: executed upon each packet of flow *f* arriving
at the LB, with a fixed inter-batch timeout δ.

.. code-block:: none

    T_LB = undef
    if now − f.time_last_pkt > δ:
        T_LB = now − f.time_last_batch       # new batch: record latency
        f.time_last_batch = now
    f.time_last_pkt = now
    return T_LB

The very first packet of a flow initializes both state variables and
produces no sample (there is no previous batch to measure from).

One :class:`FixedTimeout` instance holds the state for **one flow and
one δ**; the ensemble (Algorithm 2) runs *k* of these per flow, and the
LB keeps them in a :class:`~repro.core.flowtable.FlowTable`.
"""

from __future__ import annotations

from typing import Optional


class FixedTimeout:
    """Per-flow batch tracker with a fixed inter-batch timeout δ."""

    __slots__ = ("delta", "time_last_batch", "time_last_pkt", "samples_produced")

    def __init__(self, delta: int):
        if delta <= 0:
            raise ValueError("timeout delta must be positive, got %r" % delta)
        self.delta = delta
        self.time_last_batch: Optional[int] = None
        self.time_last_pkt: Optional[int] = None
        self.samples_produced = 0

    def observe(self, now: int) -> Optional[int]:
        """Process one packet arrival; returns a ``T_LB`` sample or None.

        ``now`` must be non-decreasing across calls for one flow (packet
        arrivals at the LB are naturally ordered).
        """
        if self.time_last_pkt is None:
            # First packet of the flow: start the first batch.
            self.time_last_batch = now
            self.time_last_pkt = now
            return None

        t_lb: Optional[int] = None
        if now - self.time_last_pkt > self.delta:
            # New batch: the gap between batch heads is the estimate.
            assert self.time_last_batch is not None
            t_lb = now - self.time_last_batch
            self.time_last_batch = now
            self.samples_produced += 1
        self.time_last_pkt = now
        return t_lb

    def __repr__(self) -> str:
        return "FixedTimeout(delta=%d, samples=%d)" % (
            self.delta,
            self.samples_produced,
        )
