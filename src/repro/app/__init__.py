"""Application layer: a memcached-like service and a memtier-like client.

The paper's evaluation drives a two-pod memcached cluster with
memtier_benchmark (50-50 GET/SET, pipelined connections that close and
reopen periodically).  This package reproduces that workload:

* :mod:`~repro.app.protocol` — GET/SET request/response messages and
  their wire sizes.
* :mod:`~repro.app.kvstore` — the in-memory store (with LRU eviction).
* :mod:`~repro.app.servicetime` — service-time distributions.
* :mod:`~repro.app.variability` — the §2.2 latency-variability injectors
  (step inflation, GC pauses, preemption bursts).
* :mod:`~repro.app.server` — the server application (request queue,
  limited worker concurrency, response sizing).
* :mod:`~repro.app.client` — closed-loop clients: the memtier-like
  request generator and a backlogged bulk sender for Fig 2.
* :mod:`~repro.app.workload` — key popularity, op mix, value sizes.
"""

from repro.app.protocol import Op, Request, Response
from repro.app.kvstore import KeyValueStore
from repro.app.servicetime import (
    Bimodal,
    Deterministic,
    Exponential,
    LogNormal,
    PerOp,
    ServiceTimeModel,
)
from repro.app.variability import (
    CompositeInjector,
    GcPauseInjector,
    LatencyInjector,
    NullInjector,
    PreemptionInjector,
    StepInjector,
)
from repro.app.server import ServerApp, ServerConfig, SinkApp
from repro.app.client import (
    BacklogClient,
    MemtierClient,
    MemtierConfig,
    RequestRecord,
)
from repro.app.workload import KeyGenerator, OpMixer, ValueSizer, WorkloadModel

__all__ = [
    "Op",
    "Request",
    "Response",
    "KeyValueStore",
    "ServiceTimeModel",
    "Deterministic",
    "Exponential",
    "LogNormal",
    "Bimodal",
    "PerOp",
    "LatencyInjector",
    "NullInjector",
    "StepInjector",
    "GcPauseInjector",
    "PreemptionInjector",
    "CompositeInjector",
    "ServerApp",
    "ServerConfig",
    "SinkApp",
    "MemtierClient",
    "MemtierConfig",
    "BacklogClient",
    "RequestRecord",
    "KeyGenerator",
    "OpMixer",
    "ValueSizer",
    "WorkloadModel",
]
