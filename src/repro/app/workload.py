"""Workload composition: keys, operation mix, value sizes.

memtier_benchmark's knobs, reproduced: a key space with uniform or
Zipfian popularity, a GET/SET ratio (the paper uses 50-50), and a value
size distribution.  A :class:`WorkloadModel` stitches them into a
request factory.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

from repro.app.protocol import Op, Request


class KeyGenerator:
    """Draws keys from ``key-0 … key-(n-1)``.

    ``zipf_s > 0`` gives Zipfian popularity with exponent ``s`` (rank-1
    most popular); 0 gives uniform.  The Zipf CDF is precomputed once
    and inverted by bisection per draw.
    """

    def __init__(self, n_keys: int, zipf_s: float = 0.0, prefix: str = "key"):
        if n_keys <= 0:
            raise ValueError("need at least one key")
        if zipf_s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self._n_keys = n_keys
        self._prefix = prefix
        self._cdf: Optional[List[float]] = None
        if zipf_s > 0:
            weights = [1.0 / (rank ** zipf_s) for rank in range(1, n_keys + 1)]
            total = sum(weights)
            cumulative = 0.0
            self._cdf = []
            for weight in weights:
                cumulative += weight / total
                self._cdf.append(cumulative)

    @property
    def n_keys(self) -> int:
        """Size of the key space."""
        return self._n_keys

    def draw(self, rng: random.Random) -> str:
        """Sample one key name."""
        if self._cdf is None:
            index = rng.randrange(self._n_keys)
        else:
            index = bisect.bisect_left(self._cdf, rng.random())
            index = min(index, self._n_keys - 1)
        return "%s-%d" % (self._prefix, index)


class OpMixer:
    """Chooses GET vs SET with a configured GET ratio."""

    def __init__(self, get_ratio: float = 0.5):
        if not 0.0 <= get_ratio <= 1.0:
            raise ValueError("get_ratio must be in [0, 1]")
        self._get_ratio = get_ratio

    @property
    def get_ratio(self) -> float:
        """Probability a request is a GET."""
        return self._get_ratio

    def draw(self, rng: random.Random) -> Op:
        """Sample an operation."""
        return Op.GET if rng.random() < self._get_ratio else Op.SET


class ValueSizer:
    """Value sizes: fixed, or uniform over a range."""

    def __init__(self, fixed: Optional[int] = 1024, low: int = 0, high: int = 0):
        if fixed is not None:
            if fixed <= 0:
                raise ValueError("fixed size must be positive")
        elif not 0 < low <= high:
            raise ValueError("need 0 < low <= high for ranged sizes")
        self._fixed = fixed
        self._low = low
        self._high = high

    def draw(self, rng: random.Random) -> int:
        """Sample a value size in bytes."""
        if self._fixed is not None:
            return self._fixed
        return rng.randint(self._low, self._high)


class WorkloadModel:
    """Factory of :class:`~repro.app.protocol.Request` objects."""

    def __init__(
        self,
        keys: Optional[KeyGenerator] = None,
        ops: Optional[OpMixer] = None,
        values: Optional[ValueSizer] = None,
    ):
        self.keys = keys or KeyGenerator(n_keys=1000)
        self.ops = ops or OpMixer(get_ratio=0.5)
        self.values = values or ValueSizer(fixed=1024)

    def make_request(self, rng: random.Random) -> Request:
        """Draw one request from the configured distributions."""
        op = self.ops.draw(rng)
        key = self.keys.draw(rng)
        if op is Op.SET:
            return Request(op=op, key=key, value_size=self.values.draw(rng))
        return Request(op=op, key=key)
