"""Two-tier servers: frontends that call a downstream dependency.

Open question #3 of the paper: *"How should an LB recognize that a
server appears to be slow not because it is slow but one of its
downstream dependencies is slow?"*  To study that question at all, the
substrate needs multi-tier request processing — this module provides it.

A :class:`TieredServerApp` behaves like a
:class:`~repro.app.server.ServerApp` toward its clients, but completing
a request requires a synchronous sub-request to a dependency service
(itself an ordinary ``ServerApp``) over a persistent connection pool.
The response returns to the client only after the dependency replies, so
dependency latency is fully reflected in the end-to-end latency the LB's
proxy measurement sees — for *every* frontend that shares the
dependency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.app.protocol import Op, Request, Response
from repro.app.servicetime import Deterministic, ServiceTimeModel
from repro.net.addr import Endpoint
from repro.transport.connection import Connection, TransportConfig
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS


@dataclass
class TieredServerConfig:
    """Frontend tunables."""

    port: int = 11211
    #: Local processing before the dependency call.
    local_service: ServiceTimeModel = field(
        default_factory=lambda: Deterministic(20 * MICROSECONDS)
    )
    #: Where the downstream dependency listens.
    dependency: Endpoint = Endpoint("dep0", 12000)
    #: Parallel connections to the dependency.
    dependency_connections: int = 2
    #: Bytes of the sub-request sent downstream.
    sub_request_size: int = 64
    transport: Optional[TransportConfig] = None


@dataclass
class TieredStats:
    """Frontend counters."""

    requests: int = 0
    responses: int = 0
    dependency_calls: int = 0
    dependency_latencies: List[int] = field(default_factory=list)


class TieredServerApp:
    """A frontend whose request path includes a dependency round trip."""

    def __init__(
        self,
        host: Host,
        config: TieredServerConfig,
        rng: random.Random,
        service_endpoint: Optional[Endpoint] = None,
    ):
        self.host = host
        self.config = config
        self.rng = rng
        self.stats = TieredStats()
        self.endpoint = service_endpoint or Endpoint(host.name, config.port)
        # request_id of the sub-request -> (client conn, client response).
        self._pending: Dict[int, tuple] = {}
        self._dep_conns: List[Connection] = []
        self._next_dep = 0
        host.listen(config.port, self._on_connection, config.transport)
        for _ in range(max(1, config.dependency_connections)):
            conn = host.connect(config.dependency, config.transport)
            conn.on_message = self._on_dependency_response
            self._dep_conns.append(conn)

    # ------------------------------------------------------------------

    def _on_connection(self, conn: Connection) -> None:
        conn.on_message = self._on_request
        conn.on_peer_close = lambda c: c.close()

    def _on_request(self, conn: Connection, request: Any) -> None:
        if not isinstance(request, Request):
            return
        self.stats.requests += 1
        local = self.config.local_service.sample(self.rng, request)

        def call_dependency() -> None:
            sub = Request(op=Op.GET, key="dep:%s" % request.key)
            response = Response(
                request_id=request.request_id,
                op=request.op,
                hit=True,
                value_size=256 if request.op is Op.GET else 0,
                server=self.host.name,
            )
            self._pending[sub.request_id] = (conn, response, self.host.sim.now)
            self.stats.dependency_calls += 1
            dep_conn = self._dep_conns[self._next_dep % len(self._dep_conns)]
            self._next_dep += 1
            dep_conn.send_message(sub, self.config.sub_request_size)

        self.host.sim.schedule_fire(local, call_dependency)

    def _on_dependency_response(self, conn: Connection, message: Any) -> None:
        if not isinstance(message, Response):
            return
        entry = self._pending.pop(message.request_id, None)
        if entry is None:
            return
        client_conn, response, started = entry
        self.stats.dependency_latencies.append(self.host.sim.now - started)
        if client_conn.state.value != "closed":
            self.stats.responses += 1
            client_conn.send_message(response, response.wire_size)
