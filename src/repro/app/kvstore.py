"""In-memory key-value store with LRU eviction.

Values are modelled by their size only — the LB and the latency
measurements never look inside them.  Capacity is in value bytes; when a
SET would exceed it, least-recently-used keys are evicted (memcached's
slab LRU, simplified).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class StoreStats:
    """Hit/miss/eviction counters."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    evictions: int = 0


class KeyValueStore:
    """Size-tracked LRU store.

    >>> store = KeyValueStore(capacity_bytes=100)
    >>> store.set("a", 60)
    >>> store.set("b", 60)   # evicts "a"
    >>> store.get("a") is None
    True
    """

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity must be positive or None")
        self._capacity = capacity_bytes
        self._values: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._values)

    @property
    def used_bytes(self) -> int:
        """Total bytes of stored values."""
        return self._used

    def get(self, key: str) -> Optional[int]:
        """Return the value size for ``key`` or None on miss."""
        self.stats.gets += 1
        size = self._values.get(key)
        if size is None:
            self.stats.misses += 1
            return None
        self._values.move_to_end(key)
        self.stats.hits += 1
        return size

    def set(self, key: str, value_size: int) -> None:
        """Store ``key`` with a value of ``value_size`` bytes."""
        if value_size <= 0:
            raise ValueError("value size must be positive, got %r" % value_size)
        self.stats.sets += 1
        old = self._values.pop(key, None)
        if old is not None:
            self._used -= old
        self._values[key] = value_size
        self._used += value_size
        if self._capacity is not None:
            while self._used > self._capacity and len(self._values) > 1:
                evicted_key, evicted_size = self._values.popitem(last=False)
                if evicted_key == key:  # never evict what we just stored
                    self._values[key] = value_size
                    break
                self._used -= evicted_size
                self.stats.evictions += 1

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        size = self._values.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True
