"""Timeout-based request duplication ("hedging") — the §2.2 baseline.

The paper argues hedged requests are a poor answer to 100 µs–1 ms
variability: when compute and network delays are comparable, the
duplicate arrives a full timeout + RTT late, effectively doubling the
response latency of every request that needed it.  This client
implements the technique so benches can measure exactly that trade
against feedback routing.

Each logical stream owns a *primary* and a *backup* connection (distinct
4-tuples, so a hashing LB may route them to different servers).  A
request goes out on the primary; if no response arrives within
``hedge_timeout``, a duplicate goes out on the backup; the first
response wins and the loser is ignored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.app.client import RequestRecord
from repro.app.protocol import Request, Response
from repro.app.workload import WorkloadModel
from repro.net.addr import Endpoint
from repro.sim.engine import Timer
from repro.transport.connection import Connection, TransportConfig
from repro.transport.endpoint import Host
from repro.units import MILLISECONDS


@dataclass
class HedgingConfig:
    """Hedging-client tunables."""

    streams: int = 2
    requests_per_stream: int = 10_000
    hedge_timeout: int = 1 * MILLISECONDS
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    transport: Optional[TransportConfig] = None

    def validate(self) -> None:
        """Raise ValueError on malformed values."""
        if self.streams <= 0:
            raise ValueError("need at least one stream")
        if self.requests_per_stream <= 0:
            raise ValueError("requests_per_stream must be positive")
        if self.hedge_timeout <= 0:
            raise ValueError("hedge timeout must be positive")


@dataclass
class HedgingStats:
    """Aggregate hedging behaviour."""

    issued: int = 0
    hedged: int = 0
    primary_wins: int = 0
    backup_wins: int = 0
    wasted_responses: int = 0


class HedgingClient:
    """Closed-loop client that duplicates slow requests."""

    def __init__(
        self,
        host: Host,
        service: Endpoint,
        config: HedgingConfig,
        rng: random.Random,
    ):
        config.validate()
        self.host = host
        self.service = service
        self.config = config
        self.rng = rng
        self.records: List[RequestRecord] = []
        self.stats = HedgingStats()
        self._streams: List[_HedgeStream] = []
        self._running = False

    def start(self) -> None:
        """Open all streams and begin issuing requests."""
        if self._running:
            return
        self._running = True
        for _ in range(self.config.streams):
            self._streams.append(_HedgeStream(self))

    def stop(self) -> None:
        """Stop issuing new requests."""
        self._running = False

    def latencies(self) -> List[int]:
        """All recorded latencies (ns)."""
        return [r.latency for r in self.records]

    @property
    def hedge_rate(self) -> float:
        """Fraction of logical requests that fired a duplicate."""
        if self.stats.issued == 0:
            return 0.0
        return self.stats.hedged / self.stats.issued


class _HedgeStream:
    """One logical request stream over a primary/backup connection pair."""

    def __init__(self, client: HedgingClient):
        self.client = client
        self.sent = 0
        self.primary = client.host.connect(client.service, client.config.transport)
        self.backup = client.host.connect(client.service, client.config.transport)
        self.primary.on_message = self._on_response
        self.backup.on_message = self._on_response
        self.primary.on_established = lambda conn: self._send_next()
        self._timer = Timer(client.host.sim, self._fire_hedge)
        # Copy request_id -> logical entry; one entry may own two copies.
        self._by_copy: Dict[int, dict] = {}
        self._active: Optional[dict] = None

    def _send_next(self) -> None:
        client = self.client
        if not client._running or self.sent >= client.config.requests_per_stream:
            return
        request = client.config.workload.make_request(client.rng)
        now = client.host.sim.now
        entry = {
            "request": request,
            "started": now,
            "done": False,
            "hedged": False,
            "copies": {request.request_id: "primary"},
        }
        self._active = entry
        self._by_copy[request.request_id] = entry
        self.sent += 1
        client.stats.issued += 1
        self.primary.send_message(request, request.wire_size)
        self._timer.start(client.config.hedge_timeout)

    def _fire_hedge(self) -> None:
        entry = self._active
        if entry is None or entry["done"]:
            return
        original: Request = entry["request"]
        duplicate = Request(
            op=original.op, key=original.key, value_size=original.value_size
        )
        entry["hedged"] = True
        entry["copies"][duplicate.request_id] = "backup"
        self._by_copy[duplicate.request_id] = entry
        self.client.stats.hedged += 1
        # Queues before establishment too; the transport flushes on open.
        self.backup.send_message(duplicate, duplicate.wire_size)

    def _on_response(self, conn: Connection, message: Any) -> None:
        if not isinstance(message, Response):
            return
        entry = self._by_copy.pop(message.request_id, None)
        if entry is None:
            return
        role = entry["copies"].get(message.request_id, "primary")
        if entry["done"]:
            self.client.stats.wasted_responses += 1
            return
        entry["done"] = True
        self._timer.stop()
        now = self.client.host.sim.now
        if role == "primary":
            self.client.stats.primary_wins += 1
        else:
            self.client.stats.backup_wins += 1
        self.client.records.append(
            RequestRecord(
                request_id=entry["request"].request_id,
                op=entry["request"].op,
                sent_at=entry["started"],
                completed_at=now,
                latency=now - entry["started"],
                server=message.server,
                local_port=conn.local.port,
            )
        )
        self._active = None
        self._send_next()
