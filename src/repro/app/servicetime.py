"""Service-time distributions for the server's request processing.

§2.2 of the paper argues that granular compute makes request-processing
time volatile; these models provide the *baseline* processing time on
top of which :mod:`~repro.app.variability` injects time-correlated
disturbances.  All models return integer nanoseconds and draw from an
explicitly passed RNG so runs stay deterministic.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

from repro.app.protocol import Op, Request


class ServiceTimeModel(Protocol):
    """Samples per-request processing time in nanoseconds."""

    def sample(self, rng: random.Random, request: Request) -> int:
        """Draw a processing time for ``request``."""
        ...


class Deterministic:
    """Constant service time."""

    def __init__(self, time_ns: int):
        if time_ns < 0:
            raise ValueError("service time must be >= 0")
        self._time_ns = time_ns

    def sample(self, rng: random.Random, request: Request) -> int:
        return self._time_ns


class Exponential:
    """Memoryless service time with the given mean."""

    def __init__(self, mean_ns: int):
        if mean_ns <= 0:
            raise ValueError("mean must be positive")
        self._mean_ns = mean_ns

    def sample(self, rng: random.Random, request: Request) -> int:
        return max(0, round(rng.expovariate(1.0 / self._mean_ns)))


class LogNormal:
    """Log-normal service time, parameterized by median and sigma.

    Heavy right tail — the shape measured for real RPC service times.
    """

    def __init__(self, median_ns: int, sigma: float = 0.5):
        if median_ns <= 0:
            raise ValueError("median must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self._mu = math.log(median_ns)
        self._sigma = sigma

    def sample(self, rng: random.Random, request: Request) -> int:
        return max(0, round(rng.lognormvariate(self._mu, self._sigma)))


class Bimodal:
    """Mostly-fast service with an occasional slow mode.

    Models requests that trip a slow path (cold cache, lock contention):
    with probability ``slow_prob`` the request takes ``slow_ns``.
    """

    def __init__(self, fast_ns: int, slow_ns: int, slow_prob: float):
        if not 0.0 <= slow_prob <= 1.0:
            raise ValueError("slow_prob must be in [0, 1]")
        if fast_ns < 0 or slow_ns < 0:
            raise ValueError("times must be >= 0")
        self._fast_ns = fast_ns
        self._slow_ns = slow_ns
        self._slow_prob = slow_prob

    def sample(self, rng: random.Random, request: Request) -> int:
        if rng.random() < self._slow_prob:
            return self._slow_ns
        return self._fast_ns


class PerOp:
    """Different models for GETs and SETs (SETs are typically slower)."""

    def __init__(self, get_model: ServiceTimeModel, set_model: ServiceTimeModel):
        self._get_model = get_model
        self._set_model = set_model

    def sample(self, rng: random.Random, request: Request) -> int:
        model = self._get_model if request.op is Op.GET else self._set_model
        return model.sample(rng, request)
