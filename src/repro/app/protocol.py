"""memcached-flavoured request/response messages.

We model the text protocol's framing sizes without simulating bytes:
a GET request is roughly ``get <key>\\r\\n``; a SET carries the value.
Responses carry the value (GET hit), ``END`` (miss), or ``STORED``.
Sizes feed the transport, which charges them against windows and links.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError

_request_ids = itertools.count(1)

#: Fixed framing overhead for a request line / response header.
REQUEST_OVERHEAD = 16
RESPONSE_OVERHEAD = 24
MISS_RESPONSE_SIZE = 8
STORED_RESPONSE_SIZE = 8


class Op(enum.Enum):
    """Supported operations (the paper's workload is a 50-50 GET/SET mix)."""

    GET = "get"
    SET = "set"


@dataclass
class Request:
    """One client operation.

    ``sent_at`` is stamped by the client when the request enters the
    transport; the client computes ground-truth latency (``T_client``)
    from it when the response returns.  The LB never reads it.
    """

    op: Op
    key: str
    value_size: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    sent_at: int = 0

    def __post_init__(self) -> None:
        if not self.key:
            raise ProtocolError("empty key")
        if self.op is Op.SET and self.value_size <= 0:
            raise ProtocolError("SET requires a positive value size")
        if self.op is Op.GET and self.value_size != 0:
            raise ProtocolError("GET carries no value")

    @property
    def wire_size(self) -> int:
        """Bytes this request occupies on the wire (excl. TCP header)."""
        size = REQUEST_OVERHEAD + len(self.key)
        if self.op is Op.SET:
            size += self.value_size
        return size


@dataclass
class Response:
    """Server's reply, matched to the request by ``request_id``."""

    request_id: int
    op: Op
    hit: bool
    value_size: int = 0
    server: Optional[str] = None
    queue_delay: int = 0
    service_time: int = 0

    @property
    def wire_size(self) -> int:
        """Bytes of the response on the wire (excl. TCP header)."""
        if self.op is Op.GET:
            if self.hit:
                return RESPONSE_OVERHEAD + self.value_size
            return MISS_RESPONSE_SIZE
        return STORED_RESPONSE_SIZE
