"""The memcached-like server application.

A :class:`ServerApp` listens on its host's service port and, per
request, charges: queueing behind earlier requests (limited worker
concurrency), the base service-time model, and any variability-injector
delay.  Responses travel back over the same connection — which, in the
DSR topology, routes *directly* to the client, bypassing the LB.

The server keeps ground-truth telemetry (service times, queue delays,
busy fraction) that experiments use to validate what the LB inferred
from one-directional traffic.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.app.kvstore import KeyValueStore
from repro.app.protocol import Op, Request, Response
from repro.app.servicetime import Deterministic, ServiceTimeModel
from repro.app.variability import LatencyInjector, NullInjector
from repro.net.addr import Endpoint
from repro.transport.connection import (
    Connection,
    ConnectionState,
    TransportConfig,
)
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS


@dataclass
class ServerConfig:
    """Server tunables.

    ``workers`` bounds concurrent request processing; with 1 worker the
    server is a FIFO queue and load directly translates into queueing
    delay — the coupling the feedback controller exploits when it sheds
    traffic from a slow server.
    """

    port: int = 11211
    workers: int = 1
    service_model: ServiceTimeModel = field(
        default_factory=lambda: Deterministic(50 * MICROSECONDS)
    )
    injector: LatencyInjector = field(default_factory=NullInjector)
    store_capacity: Optional[int] = None
    transport: Optional[TransportConfig] = None


@dataclass
class ServerStats:
    """Ground-truth counters for validation and reports."""

    requests: int = 0
    responses: int = 0
    #: Requests discarded because the process was crashed at arrival.
    dropped_while_crashed: int = 0
    busy_ns: int = 0
    queue_delays: List[int] = field(default_factory=list)
    service_times: List[int] = field(default_factory=list)


class ServerApp:
    """Request-processing application bound to a :class:`Host`.

    Parameters
    ----------
    host:
        The transport host to listen on.
    config:
        Server tunables.
    rng:
        RNG for service-time draws (a dedicated stream per server).
    service_endpoint:
        The endpoint clients address — in a DSR deployment this is the
        VIP, so the server can source responses from it.
    """

    def __init__(
        self,
        host: Host,
        config: ServerConfig,
        rng: random.Random,
        service_endpoint: Optional[Endpoint] = None,
    ):
        self.host = host
        self.config = config
        self.rng = rng
        # Prebound: _on_request/_process run once per request.
        self._sim = host.sim
        self.store = KeyValueStore(config.store_capacity)
        self.stats = ServerStats()
        self.endpoint = service_endpoint or Endpoint(host.name, config.port)
        # Worker pool as a min-heap of times at which each worker frees up.
        self._worker_free: List[int] = [0] * max(1, config.workers)
        heapq.heapify(self._worker_free)
        # Chaos-plane seams: a runtime service-time multiplier (server
        # slowdown faults) and a pause gate (GC-style stop-the-world).
        self._service_multiplier = 1.0
        self._paused = False
        self._paused_requests: List[tuple] = []
        self._crashed = False
        host.listen(config.port, self._on_connection, config.transport)

    # ------------------------------------------------------------------
    # Chaos-plane seams
    # ------------------------------------------------------------------

    @property
    def service_multiplier(self) -> float:
        """Current runtime multiplier applied to per-request work."""
        return self._service_multiplier

    def set_service_multiplier(self, multiplier: float) -> None:
        """Scale every request's service time (1.0 restores normal)."""
        if multiplier <= 0:
            raise ValueError(
                "service multiplier must be positive, got %r" % multiplier
            )
        self._service_multiplier = multiplier

    @property
    def paused(self) -> bool:
        """Whether the server is currently stalled by a pause fault."""
        return self._paused

    def pause(self) -> None:
        """Stop processing: requests arriving while paused are held."""
        self._paused = True

    def resume(self) -> None:
        """Resume processing; held requests run in arrival order."""
        if not self._paused:
            return
        self._paused = False
        pending, self._paused_requests = self._paused_requests, []
        for conn, request, arrived_at in pending:
            self._process(conn, request, arrived_at)

    @property
    def crashed(self) -> bool:
        """Whether the process is currently down (crash fault)."""
        return self._crashed

    def crash(self) -> None:
        """Kill the process: stop listening, discard held work.

        Unlike :meth:`pause` (the process stalls but the kernel still
        completes handshakes) a crash takes the listener down — new SYNs
        go unanswered — and in-flight requests are lost, not queued.
        Established connections are *not* reset: their clients discover
        the death by silence, exactly the failure mode deadlines and
        signal-staleness tracking exist for.
        """
        if self._crashed:
            return
        self._crashed = True
        self.host.stop_listening(self.config.port)
        self._paused_requests.clear()

    def restart(self) -> None:
        """Bring the process back up (fresh listener, same store)."""
        if not self._crashed:
            return
        self._crashed = False
        self.host.listen(
            self.config.port, self._on_connection, self.config.transport
        )

    # ------------------------------------------------------------------

    def _on_connection(self, conn: Connection) -> None:
        conn.on_message = self._on_request
        conn.on_peer_close = lambda c: c.close()

    def _on_request(self, conn: Connection, request: Request) -> None:
        if not isinstance(request, Request):
            return  # stray message type: ignore rather than crash the run
        now = self._sim._now
        if self._crashed:
            # A dead process answers nothing: requests already in the
            # kernel's buffers when it died just vanish.
            self.stats.dropped_while_crashed += 1
            return
        self.stats.requests += 1
        if self._paused:
            self._paused_requests.append((conn, request, now))
            return
        self._process(conn, request, now)

    def _process(self, conn: Connection, request: Request, arrived_at: int) -> None:
        now = self._sim._now
        start = max(now, heapq.heappop(self._worker_free))
        queue_delay = start - arrived_at
        extra = self.config.injector.extra_delay(start)
        service = self.config.service_model.sample(self.rng, request)
        work = extra + service
        if self._service_multiplier != 1.0:
            work = max(0, round(work * self._service_multiplier))
        completion = start + work
        heapq.heappush(self._worker_free, completion)

        self.stats.queue_delays.append(queue_delay)
        self.stats.service_times.append(work)
        self.stats.busy_ns += work

        response = self._execute(request)
        response.queue_delay = queue_delay
        response.service_time = work

        def respond() -> None:
            if conn.state is not ConnectionState.CLOSED:
                self.stats.responses += 1
                conn.send_message(response, response.wire_size)

        # One-shot, never cancelled: skip the EventHandle allocation.
        self._sim.schedule_fire_at(completion, respond)

    def _execute(self, request: Request) -> Response:
        if request.op is Op.GET:
            size = self.store.get(request.key)
            return Response(
                request_id=request.request_id,
                op=Op.GET,
                hit=size is not None,
                value_size=size or 0,
                server=self.host.name,
            )
        self.store.set(request.key, request.value_size)
        return Response(
            request_id=request.request_id,
            op=Op.SET,
            hit=True,
            server=self.host.name,
        )

    # ------------------------------------------------------------------

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of one worker-equivalent spent processing."""
        if elapsed_ns <= 0:
            return 0.0
        return self.stats.busy_ns / (elapsed_ns * max(1, self.config.workers))


class SinkApp:
    """Accepts connections and discards whatever arrives.

    The peer for bulk flows (Fig 2's backlogged sender): its transport
    still generates the ACKs that clock the sender's windows; the
    application itself never replies.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        transport: Optional[TransportConfig] = None,
    ):
        self.host = host
        self.port = port
        self.messages_received = 0
        host.listen(port, self._on_connection, transport)

    def _on_connection(self, conn: Connection) -> None:
        conn.on_message = self._on_message
        conn.on_peer_close = lambda c: c.close()

    def _on_message(self, conn: Connection, message: object) -> None:
        self.messages_received += 1
