"""Time-correlated server latency disturbances (§2.2 of the paper).

The paper motivates in-band control with *system and software
variability at 100 µs–1 ms time scales*: scheduler preemptions, garbage
collection, compaction.  Injectors model these as extra delay that
depends on (virtual) time.  The server queries ``extra_delay(now)`` when
it starts processing a request.

The Fig 3 stimulus — 1 ms added to an LB→server *path* — is a network
injection (``Pipe.set_extra_delay``), but the same experiment can be run
with a server-side :class:`StepInjector` instead; both inflate the
response latency the LB's proxy measurement sees.
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, Sequence


class LatencyInjector(Protocol):
    """Extra processing delay as a function of time."""

    def extra_delay(self, now: int) -> int:
        """Additional ns of delay for a request starting at ``now``."""
        ...


class NullInjector:
    """No disturbance."""

    def extra_delay(self, now: int) -> int:
        return 0


class StepInjector:
    """Constant extra delay inside a time window.

    ``end=None`` means the inflation persists to the end of the run —
    the shape of the paper's Fig 3 injection.
    """

    def __init__(self, extra: int, start: int, end: Optional[int] = None):
        if extra < 0:
            raise ValueError("extra delay must be >= 0")
        if end is not None and end < start:
            raise ValueError("end before start")
        self._extra = extra
        self._start = start
        self._end = end

    def extra_delay(self, now: int) -> int:
        if now < self._start:
            return 0
        if self._end is not None and now >= self._end:
            return 0
        return self._extra


class GcPauseInjector:
    """Periodic stop-the-world pauses.

    Every ``period`` ns the server stalls for ``duration`` ns; a request
    starting inside a pause waits for the pause to end.  Models GC /
    compaction background work ([2, 60, 90] in the paper).
    """

    def __init__(self, period: int, duration: int, phase: int = 0):
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= duration < period:
            raise ValueError("duration must be in [0, period)")
        if phase < 0:
            raise ValueError("phase must be >= 0")
        self._period = period
        self._duration = duration
        self._phase = phase

    def extra_delay(self, now: int) -> int:
        offset = (now - self._phase) % self._period
        if offset < self._duration:
            return self._duration - offset
        return 0


class PreemptionInjector:
    """Random scheduler preemption bursts.

    Burst starts form a Poisson process of the given rate; each burst
    stalls the server for a random duration in
    ``[min_duration, max_duration]``.  Recovering from a preemption takes
    hundreds of µs to ms on Linux ([54, 58, 74, 82]); those are sensible
    duration choices.

    The injector lazily materializes bursts in time order, so it must be
    queried with non-decreasing ``now`` values (the simulator guarantees
    this within one server).
    """

    def __init__(
        self,
        rng: random.Random,
        rate_hz: float,
        min_duration: int,
        max_duration: int,
    ):
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not 0 <= min_duration <= max_duration:
            raise ValueError("need 0 <= min_duration <= max_duration")
        self._rng = rng
        self._rate_hz = rate_hz
        self._min_duration = min_duration
        self._max_duration = max_duration
        self._burst_start = self._next_gap(0)
        self._burst_end = self._burst_start + self._duration()

    def extra_delay(self, now: int) -> int:
        # Advance past bursts that ended before `now`.
        while now >= self._burst_end:
            self._burst_start = self._burst_end + self._next_gap(self._burst_end)
            self._burst_end = self._burst_start + self._duration()
        if now >= self._burst_start:
            return self._burst_end - now
        return 0

    def _next_gap(self, _from: int) -> int:
        gap_s = self._rng.expovariate(self._rate_hz)
        return max(1, round(gap_s * 1_000_000_000))

    def _duration(self) -> int:
        return self._rng.randint(self._min_duration, self._max_duration)


class CompositeInjector:
    """Sum of several injectors."""

    def __init__(self, injectors: Sequence[LatencyInjector]):
        self._injectors: List[LatencyInjector] = list(injectors)

    def extra_delay(self, now: int) -> int:
        return sum(injector.extra_delay(now) for injector in self._injectors)
