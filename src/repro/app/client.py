"""Client applications.

:class:`MemtierClient` reproduces the paper's workload generator
(memtier_benchmark): several concurrent TCP connections, each pipelining
up to ``pipeline`` outstanding requests (the application-level flow
control that produces causally-triggered transmissions), closing and
reopening after a fixed number of requests so the LB can re-route fresh
connections with what it has learned.

:class:`BacklogClient` reproduces Fig 2's stimulus: one long-lived
flow-controlled bulk transfer whose transmission batches are windows;
its transport RTT samples are the ground truth ``T_client``.

With a :class:`~repro.resilience.retry.RetryConfig`,
:class:`MemtierClient` grows the client half of the resilience plane:
per-request deadlines (an unanswered request aborts its connection,
memtier-style), exponential backoff with jitter before re-sends, and a
token-bucket retry budget that arithmetically bounds total retries.
Without one, behaviour is unchanged — no timers, no extra RNG draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.app.protocol import Op, Request, Response
from repro.app.workload import WorkloadModel
from repro.net.addr import Endpoint
from repro.resilience.retry import (
    RetryBudget,
    RetryConfig,
    RetryStats,
    backoff_delay,
)
from repro.sim.engine import Timer
from repro.transport.connection import Connection, ConnectionState, TransportConfig
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS


@dataclass
class RequestRecord:
    """Ground-truth log entry for one completed request."""

    __slots__ = (
        "request_id",
        "op",
        "sent_at",
        "completed_at",
        "latency",
        "server",
        "local_port",
    )

    request_id: int
    op: Op
    sent_at: int
    completed_at: int
    latency: int
    server: Optional[str]
    local_port: int


@dataclass
class MemtierConfig:
    """memtier_benchmark-shaped knobs."""

    connections: int = 4
    pipeline: int = 4
    requests_per_connection: int = 200
    reconnect_delay: int = 100 * MICROSECONDS
    #: Delay between receiving a response and issuing the next request.
    #: Non-zero think time models application-limited clients — it adds
    #: directly to ``T_trigger``, the dominant error term of the proxy
    #: measurement (paper §3 and open question #2).
    think_time: int = 0
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    transport: Optional[TransportConfig] = None

    def validate(self) -> None:
        """Raise on nonsensical values."""
        if self.connections <= 0:
            raise ValueError("need at least one connection")
        if self.pipeline <= 0:
            raise ValueError("pipeline depth must be positive")
        if self.requests_per_connection <= 0:
            raise ValueError("requests_per_connection must be positive")
        if self.reconnect_delay < 0:
            raise ValueError("reconnect delay must be >= 0")
        if self.think_time < 0:
            raise ValueError("think time must be >= 0")


class MemtierClient:
    """Closed-loop, pipelined, reconnecting request generator.

    Each response both records ground-truth latency and *triggers* the
    next request on that connection — the application-level causal
    transmission chain the paper's measurement technique detects.
    """

    def __init__(
        self,
        host: Host,
        service: Endpoint,
        config: MemtierConfig,
        rng: random.Random,
        retry: Optional[RetryConfig] = None,
        retry_rng: Optional[random.Random] = None,
    ):
        config.validate()
        self.host = host
        self.service = service
        self.config = config
        self.rng = rng
        self.records: List[RequestRecord] = []
        self.on_record: Optional[Callable[[RequestRecord], None]] = None
        #: Observability hooks: fired per issued request
        #: ``(request, local_port, is_retry)`` and per completed request
        #: ``(record, response)``.  Both purely observational.
        self.on_send: Optional[Callable[[Request, int, bool], None]] = None
        self.on_response: Optional[Callable[[RequestRecord, Response], None]] = None
        self._running = False
        self._conn_state: Dict[int, _ConnLoop] = {}
        #: Retry plane (inert when ``retry`` is None).
        self.retry = retry
        self.retry_stats = RetryStats()
        self.retry_budget: Optional[RetryBudget] = None
        self._retry_rng: Optional[random.Random] = None
        self._retry_queue: List[Request] = []
        self._attempts: Dict[int, int] = {}
        if retry is not None:
            retry.validate()
            self.retry_budget = RetryBudget(retry)
            # Dedicated stream: jitter draws must not perturb the
            # workload's RNG sequence.
            self._retry_rng = retry_rng if retry_rng is not None else random.Random(0)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Open all connections and begin issuing requests."""
        if self._running:
            return
        self._running = True
        for index in range(self.config.connections):
            self._open_connection(index)

    def stop(self) -> None:
        """Stop issuing requests; outstanding ones complete naturally."""
        self._running = False

    @property
    def completed_requests(self) -> int:
        """Requests with a recorded response so far."""
        return len(self.records)

    def latencies(self, op: Optional[Op] = None) -> List[int]:
        """All recorded latencies (ns), optionally one operation only."""
        if op is None:
            return [r.latency for r in self.records]
        return [r.latency for r in self.records if r.op is op]

    # ------------------------------------------------------------------

    def _open_connection(self, index: int) -> None:
        if not self._running:
            return
        conn = self.host.connect(self.service, self.config.transport)
        loop = _ConnLoop(self, index, conn)
        self._conn_state[index] = loop

    def _reopen_later(self, index: int) -> None:
        if not self._running:
            self._conn_state.pop(index, None)
            return
        self.host.sim.schedule_fire(
            self.config.reconnect_delay, lambda: self._open_connection(index)
        )

    # ------------------------------------------------------------------
    # Retry plane
    # ------------------------------------------------------------------

    def _maybe_retry(self, request: Request) -> None:
        """Decide a failed request's fate: retry (budget allowing) or drop."""
        attempts = self._attempts.get(request.request_id, 1)
        if attempts >= self.retry.max_attempts:
            self.retry_stats.attempts_exhausted += 1
            self._attempts.pop(request.request_id, None)
            return
        if not self.retry_budget.withdraw():
            self.retry_stats.budget_denied += 1
            self._attempts.pop(request.request_id, None)
            return
        self.retry_stats.retries += 1
        self._attempts[request.request_id] = attempts + 1
        delay = backoff_delay(self.retry, attempts, self._retry_rng)
        self.host.sim.schedule_fire(delay, lambda: self._enqueue_retry(request))

    def _enqueue_retry(self, request: Request) -> None:
        if not self._running:
            return
        self._retry_queue.append(request)
        for loop in list(self._conn_state.values()):
            if not self._retry_queue:
                break
            loop.try_pump()

    def _take_retry(self) -> Optional[Request]:
        if self._retry_queue:
            return self._retry_queue.pop(0)
        return None


class _ConnLoop:
    """Drives one connection through its request budget, then recycles."""

    def __init__(self, client: MemtierClient, index: int, conn: Connection):
        self.client = client
        self.index = index
        self.conn = conn
        # Prebound: the send/response paths run per request and the
        # host.sim property chain is pure overhead there.
        self._sim = client.host.sim
        self.sent = 0
        self.outstanding: Dict[int, Request] = {}
        self._deadlines: Dict[int, Timer] = {}
        conn.on_established = self._on_established
        conn.on_message = self._on_response
        conn.on_closed = self._on_closed

    def _on_established(self, conn: Connection) -> None:
        for _ in range(self.client.config.pipeline):
            if not self._send_one():
                break

    def try_pump(self) -> None:
        """Offer a free pipeline slot to the client's retry queue."""
        if (
            self.conn.state is ConnectionState.ESTABLISHED
            and len(self.outstanding) < self.client.config.pipeline
        ):
            self._send_one()

    def _send_one(self) -> bool:
        client = self.client
        config = client.config
        if not client._running:
            return False
        retry = client._take_retry()
        if retry is not None:
            # Re-sends bypass the per-connection budget: the request was
            # already admitted once, this is its recovery attempt.
            retry.sent_at = self._sim._now
            self.outstanding[retry.request_id] = retry
            self.conn.send_message(retry, retry.wire_size)
            self._arm_deadline(retry.request_id)
            if client.on_send is not None:
                client.on_send(retry, self.conn.local.port, True)
            return True
        if self.sent >= config.requests_per_connection:
            return False
        request = config.workload.make_request(client.rng)
        request.sent_at = self._sim._now
        self.outstanding[request.request_id] = request
        self.sent += 1
        if client.retry is not None:
            client.retry_budget.deposit()
            client.retry_stats.first_attempts += 1
            client._attempts[request.request_id] = 1
        self.conn.send_message(request, request.wire_size)
        self._arm_deadline(request.request_id)
        if client.on_send is not None:
            client.on_send(request, self.conn.local.port, False)
        return True

    def _arm_deadline(self, request_id: int) -> None:
        if self.client.retry is None:
            return
        timer = Timer(self._sim, lambda: self._on_deadline(request_id))
        timer.start(self.client.retry.deadline)
        self._deadlines[request_id] = timer

    def _on_deadline(self, request_id: int) -> None:
        self._deadlines.pop(request_id, None)
        request = self.outstanding.pop(request_id, None)
        if request is None:
            return
        client = self.client
        client.retry_stats.deadline_expiries += 1
        client._maybe_retry(request)
        # The connection is wedged behind an unresponsive backend; tear
        # it down (memtier aborts on request timeout) so the remaining
        # pipelined requests fail fast and the replacement connection
        # gets re-routed by the LB.
        client.retry_stats.aborted_connections += 1
        self.conn.abort()  # fires _on_closed, failing the rest

    def _fail_outstanding(self) -> None:
        for request_id, request in list(self.outstanding.items()):
            timer = self._deadlines.pop(request_id, None)
            if timer is not None:
                timer.stop()
            self.client._maybe_retry(request)
        self.outstanding.clear()

    def _on_response(self, conn: Connection, response: Any) -> None:
        if not isinstance(response, Response):
            return
        request = self.outstanding.pop(response.request_id, None)
        if request is None:
            return
        client = self.client
        timer = self._deadlines.pop(response.request_id, None)
        if timer is not None:
            timer.stop()
        client._attempts.pop(response.request_id, None)
        now = self._sim._now
        record = RequestRecord(
            request_id=request.request_id,
            op=request.op,
            sent_at=request.sent_at,
            completed_at=now,
            latency=now - request.sent_at,
            server=response.server,
            local_port=conn.local.port,
        )
        client.records.append(record)
        if client.on_record is not None:
            client.on_record(record)
        if client.on_response is not None:
            client.on_response(record, response)

        think = client.config.think_time
        if think > 0:
            # Per-request think-time events are never cancelled: fast path.
            self._sim.schedule_fire(think, self._continue)
        else:
            self._continue()

    def _continue(self) -> None:
        if not self._send_one() and not self.outstanding:
            # Budget exhausted and pipeline drained: recycle the
            # connection so the LB can route a fresh one.
            if self.conn.state is not ConnectionState.CLOSED:
                self.conn.close()

    def _on_closed(self, conn: Connection) -> None:
        if self.client.retry is not None:
            self._fail_outstanding()
        self.client._reopen_later(self.index)


class BacklogClient:
    """A single long-lived window-limited bulk flow (Fig 2's stimulus).

    Keeps the transport's send buffer topped up so the connection is
    permanently flow-control limited: each window of packets goes out as
    a burst, then the sender stalls until ACKs return.  Transport RTT
    samples (``on_rtt_sample``) provide ground truth ``T_client``.
    """

    def __init__(
        self,
        host: Host,
        service: Endpoint,
        chunk_bytes: int = 1024,
        transport: Optional[TransportConfig] = None,
    ):
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        self.host = host
        self.service = service
        self.chunk_bytes = chunk_bytes
        self.rtt_samples: List[tuple] = []  # (time_ns, rtt_ns)
        self.on_rtt: Optional[Callable[[int, int], None]] = None
        self._stopped = False
        self._chunk_counter = 0
        self.conn = host.connect(service, transport)
        self.conn.on_established = lambda conn: self._refill()
        self.conn.on_rtt_sample = self._on_rtt_sample
        self._refill()

    def _refill(self) -> None:
        if self._stopped:
            return
        # Keep at least two windows of unsent data buffered so the sender
        # is always window-limited, never application-limited.
        target = 2 * self.conn.config.window
        while self.conn.unsent_bytes < target:
            self._chunk_counter += 1
            self.conn.send_message(("chunk", self._chunk_counter), self.chunk_bytes)

    def _on_rtt_sample(self, conn: Connection, rtt: int) -> None:
        now = self.host.sim.now
        self.rtt_samples.append((now, rtt))
        if self.on_rtt is not None:
            self.on_rtt(now, rtt)
        if conn.state is ConnectionState.ESTABLISHED:
            self._refill()

    def stop(self) -> None:
        """Stop refilling and close the flow (queued data drains first)."""
        self._stopped = True
        self.conn.close()
