"""Campaign orchestration: generate, run, judge, shrink, persist.

A campaign is ``runs`` scenario executions, each with its own seeded
fault schedule (:mod:`repro.campaign.generator`), cycled round-robin
across the selected control laws, optionally arming the fleet plane
every Nth run so membership churn meets random weather.  Every run is
a :class:`CampaignPoint` — a pure-data payload executed by the
module-level :func:`campaign_point` through the cached sweep executor,
so campaigns inherit the executor's contract: content-addressed
caching, crash recovery, and ``--jobs N`` rows byte-identical to
``--jobs 1``.

After the sweep, violating points are minimized by the shrinker and
persisted as replayable reproducer artifacts
(:mod:`repro.campaign.artifact`); :func:`replay_artifact` is the other
half of that round trip.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.artifact import load_artifact, write_artifact
from repro.campaign.config import CampaignConfig
from repro.campaign.generator import generate_schedule
from repro.campaign.shrink import shrink_point
from repro.errors import ConfigError, InvariantViolation
from repro.faults.model import fault_from_dict, fault_to_dict
from repro.harness.report import format_table
from repro.sim.random import derive_seed
from repro.sweep.executor import Outcome, SweepReport, run_tasks, task
from repro.sweep.store import ResultStore


@dataclass
class CampaignPoint:
    """One run's complete identity — pure JSON-native data.

    This is both the executor payload (its canonical hash is the cache
    key) and the reproducer-artifact payload, so everything in here
    must survive a JSON round trip unchanged: ints, strings, bools,
    ``None``, and fault *dicts* (:func:`~repro.faults.model.fault_to_dict`
    trees), never live spec objects.
    """

    run: int
    seed: int
    duration: int
    n_servers: int
    n_clients: int
    strategy: str
    #: Fault dicts (``fault_from_dict`` rebuilds and validates them).
    faults: List[dict]
    #: Invariant names to evaluate (None = all registered).
    invariants: Optional[List[str]] = None
    recovery_bound: int = 0
    #: Arm the fleet plane (scheduled scale-out + scale-in mid-run).
    fleet: bool = False
    resilience: bool = True
    #: Arm the insight plane (timeline recorded into the row).
    insight: bool = False


def build_point_config(point: CampaignPoint):
    """The :class:`ScenarioConfig` a point describes."""
    from repro.harness.config import PolicyName, ScenarioConfig
    from repro.resilience.config import ResilienceConfig

    config = ScenarioConfig(
        seed=point.seed,
        duration=point.duration,
        n_clients=point.n_clients,
        n_servers=point.n_servers,
        policy=PolicyName.FEEDBACK,
        faults=[fault_from_dict(tree) for tree in point.faults],
        resilience=ResilienceConfig(
            enabled=point.resilience, health_checks=point.resilience
        ),
        warmup=point.duration // 10,
    )
    if point.insight:
        from repro.insight.config import InsightConfig

        config.insight = InsightConfig(enabled=True)
    config.feedback.strategy = point.strategy
    if point.fleet:
        from repro.fleet import FleetConfig, ScheduledAction

        peak = max(8, 2 * point.n_servers)
        config.fleet = FleetConfig(
            enabled=True,
            max_backends=peak,
            min_in_service=point.n_servers,
            schedule=[
                ScheduledAction(at=point.duration // 3, desired=peak),
                ScheduledAction(
                    at=5 * point.duration // 6, desired=point.n_servers
                ),
            ],
        )
    return config


def campaign_point(point: CampaignPoint) -> Dict[str, object]:
    """Run one campaign point and judge it; returns a flat sweep row."""
    from repro.campaign.audit import CampaignAudit
    from repro.campaign.invariants import CampaignContext, evaluate
    from repro.harness.runner import run_scenario
    from repro.harness.scenario import build_scenario

    config = build_point_config(point)
    scenario = build_scenario(config)
    audit = CampaignAudit(scenario)
    result = run_scenario(config, scenario=scenario)
    verdicts = evaluate(
        CampaignContext(
            result=result, audit=audit, recovery_bound=point.recovery_bound
        ),
        names=point.invariants,
    )
    row: Dict[str, object] = {
        "run": point.run,
        "strategy": point.strategy,
        "fleet": point.fleet,
        "seed": point.seed,
        "faults": [f.describe() for f in config.faults],
        "requests": len(result.records),
        "checks": len(verdicts),
        "violations": sum(len(v.violations) for v in verdicts),
        "violated": [v.name for v in verdicts if not v.passed],
        "details": {
            v.name: list(v.violations) for v in verdicts if not v.passed
        },
    }
    if scenario.insight is not None:
        # JSONL string keeps the row flat JSON-native (cacheable);
        # run_campaign writes it to a file when timeline_dir is set.
        row["timeline"] = scenario.insight.dumps()
    return row


def campaign_points(config: CampaignConfig) -> List[CampaignPoint]:
    """Expand a campaign config into its deterministic point list."""
    config.validate()
    points: List[CampaignPoint] = []
    for run in range(config.runs):
        fleet = config.fleet_every > 0 and (run + 1) % config.fleet_every == 0
        faults = generate_schedule(
            config.generator,
            config.duration,
            config.n_servers,
            seed=derive_seed("campaign.run", config.seed, run),
            fleet=fleet,
        )
        points.append(
            CampaignPoint(
                run=run,
                seed=config.seed + run,
                duration=config.duration,
                n_servers=config.n_servers,
                n_clients=config.n_clients,
                strategy=config.controllers[run % len(config.controllers)],
                faults=[fault_to_dict(f) for f in faults],
                invariants=(
                    list(config.invariants)
                    if config.invariants is not None
                    else None
                ),
                recovery_bound=config.recovery_bound,
                fleet=fleet,
                resilience=config.resilience,
                insight=config.insight,
            )
        )
    return points


@dataclass
class CampaignReport:
    """Everything one campaign produced, plus the renderers."""

    config: CampaignConfig
    points: List[CampaignPoint]
    report: SweepReport
    #: Reproducer-artifact paths, one per shrunk violating point.
    artifacts: List[str] = field(default_factory=list)
    #: Timeline-artifact paths (insight-armed runs, timeline_dir set).
    timelines: List[str] = field(default_factory=list)

    @property
    def rows(self) -> List[Dict[str, object]]:
        return self.report.rows

    def violating(self) -> List[Tuple[CampaignPoint, Dict[str, object]]]:
        """Points whose runs violated at least one invariant."""
        return [
            (point, row)
            for point, row in zip(self.points, self.rows)
            if row["violations"]
        ]

    def table(self) -> str:
        """One row per run: what ran, what was checked, what broke."""
        rows = []
        for point, row in zip(self.points, self.rows):
            rows.append(
                (
                    point.run,
                    point.strategy,
                    "yes" if point.fleet else "-",
                    len(point.faults),
                    "+".join(sorted({f["kind"] for f in point.faults})),
                    row["checks"],
                    row["violations"],
                    ",".join(row["violated"]) or "-",
                    row["requests"],
                )
            )
        return format_table(
            (
                "run",
                "controller",
                "fleet",
                "faults",
                "kinds",
                "checks",
                "violations",
                "violated",
                "requests",
            ),
            rows,
        )

    def summary(self) -> str:
        """Two accounting lines (both grepped by the CI chaos smoke)."""
        checks = sum(row["checks"] for row in self.rows)
        violations = sum(row["violations"] for row in self.rows)
        line = (
            "campaign: %d runs, %d controllers, %d invariant checks, "
            "%d violations, %d reproducers"
            % (
                len(self.points),
                len({p.strategy for p in self.points}),
                checks,
                violations,
                len(self.artifacts),
            )
        )
        return line + "\n" + self.report.summary("campaign")

    def raise_if_violated(self) -> None:
        """Raise :class:`InvariantViolation` if any run broke a rule."""
        violating = self.violating()
        if not violating:
            return
        names = sorted({n for _p, row in violating for n in row["violated"]})
        raise InvariantViolation(
            "%d of %d campaign runs violated invariant(s): %s"
            % (len(violating), len(self.points), ", ".join(names)),
            artifact=self.artifacts[0] if self.artifacts else None,
        )


def run_campaign(
    config: CampaignConfig,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    progress: Optional[Callable[[Outcome, int, int], None]] = None,
    artifact_dir: Optional[str] = None,
    max_artifacts: int = 3,
    timeline_dir: Optional[str] = None,
) -> CampaignReport:
    """Run a full campaign; shrink and persist violating runs.

    With ``artifact_dir`` set, up to ``max_artifacts`` violating points
    are minimized by the shrinker and written as reproducer artifacts
    (shrinking reuses ``store``, so its candidate runs are cached too).
    With ``timeline_dir`` set (and ``config.insight``), each run's
    recorded timeline is written as ``run%02d.jsonl``.
    """
    from repro.controllers import available as available_controllers

    registered = available_controllers()
    for name in config.controllers:
        if name not in registered:
            raise ConfigError(
                "unknown control strategy %r (registered: %s)"
                % (name, ", ".join(registered))
            )
    points = campaign_points(config)
    tasks = [
        task(
            campaign_point,
            point,
            label="run%02d/%s%s"
            % (point.run, point.strategy, "+fleet" if point.fleet else ""),
        )
        for point in points
    ]
    report = run_tasks(
        tasks, jobs=jobs, store=store, use_cache=use_cache, progress=progress
    )
    campaign = CampaignReport(config=config, points=points, report=report)
    if timeline_dir is not None:
        os.makedirs(timeline_dir, exist_ok=True)
        for point, outcome in zip(points, report.outcomes):
            text = outcome.row.get("timeline")
            if not text:
                continue
            path = os.path.join(timeline_dir, "run%02d.jsonl" % point.run)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            campaign.timelines.append(path)
    if artifact_dir is not None:
        for point, row in campaign.violating()[:max_artifacts]:
            shrunk, stats = shrink_point(
                point, row["violated"], store=store, use_cache=use_cache
            )
            shrunk_row = run_tasks(
                [task(campaign_point, shrunk, label="shrunk")],
                jobs=1,
                store=store,
                use_cache=use_cache,
            ).rows[0]
            path = write_artifact(
                os.path.join(
                    artifact_dir, "reproducer-run%02d.json" % point.run
                ),
                shrunk,
                violations=dict(shrunk_row["details"]),
                shrink=stats.as_dict(),
            )
            campaign.artifacts.append(path)
    return campaign


def replay_artifact(
    path: str,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> Tuple[CampaignPoint, Dict[str, object]]:
    """Re-run a reproducer artifact through the cached executor."""
    point = load_artifact(path)
    report = run_tasks(
        [task(campaign_point, point, label="replay")],
        jobs=1,
        store=store,
        use_cache=use_cache,
    )
    return point, report.rows[0]
