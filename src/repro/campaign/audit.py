"""In-flight audit taps: what invariants need that results don't keep.

Most invariants judge a finished :class:`ScenarioResult` — weight
update logs, ladder transitions, conntrack counters all survive the
run.  Two do not: *which backend each packet was routed to, and what
state that backend was in at that instant*.  :class:`CampaignAudit`
installs LB taps before the run starts (taps see every routed packet)
and distills the stream into exactly the evidence the invariant checks
read afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Set

from repro.harness.churn import AffinityWatch
from repro.net.addr import FlowKey
from repro.units import to_millis

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.harness.scenario import Scenario


@dataclass(frozen=True)
class ViolationEvent:
    """One structured invariant violation (time-addressable, unlike the
    rendered strings, so trace attribution can window over them)."""

    time: int
    invariant: str
    message: str


class RoutingAudit:
    """LB tap: no *new* flow may land on a dark backend.

    A backend is dark when it is unhealthy (crashed, breaker-style
    ejection) or when the fleet plane has it DRAINING/TERMINATED.
    Established flows legitimately keep hitting such backends — that is
    conntrack affinity doing its job during a drain — so the audit only
    judges each flow's *first* packet, the one the routing policy chose
    a backend for.
    """

    def __init__(self, scenario: "Scenario"):
        self._pool = scenario.pool
        self._fleet = scenario.fleet
        self._seen: Set[FlowKey] = set()
        #: First packets audited (new flows observed).
        self.checked = 0
        self.violations: List[str] = []
        #: Structured twins of ``violations`` for time-window queries.
        self.events: List[ViolationEvent] = []
        scenario.lb.add_tap(self._tap)

    def _tap(self, now: int, flow: FlowKey, backend: str, packet) -> None:
        if flow in self._seen:
            return
        self._seen.add(flow)
        self.checked += 1
        if backend not in self._pool:
            self._violate(now, flow, backend, "not in the pool")
            return
        if not self._pool.get(backend).healthy:
            self._violate(now, flow, backend, "unhealthy")
        if self._fleet is not None:
            from repro.fleet.lifecycle import BackendState

            state = self._fleet.lifecycle.state(backend)
            if state in (BackendState.DRAINING, BackendState.TERMINATED):
                self._violate(now, flow, backend, state.value.upper())

    def _violate(self, now: int, flow: FlowKey, backend: str, why: str) -> None:
        message = "t=%.3fms new flow %s routed to %s (%s)" % (
            to_millis(now),
            flow,
            backend,
            why,
        )
        self.violations.append(message)
        self.events.append(
            ViolationEvent(time=now, invariant="no-dark-routing", message=message)
        )


class CampaignAudit:
    """Both taps plus the pre-run weight snapshot, bundled per run.

    Install by constructing with a *built but not yet run* scenario
    (``build_scenario`` → ``CampaignAudit`` → ``run_scenario``), the
    same seam the compare harness uses for its affinity column.
    """

    def __init__(self, scenario: "Scenario"):
        self.affinity = AffinityWatch(scenario.lb)
        self.routing = RoutingAudit(scenario)
        #: Pool weights before the first packet (the conserved total).
        self.initial_weights = dict(scenario.pool.weights())
