"""Campaign configuration: how many runs, how mean the faults get.

Two dataclasses: :class:`GeneratorConfig` bounds the randomized fault
schedules (how many faults, how intense, which kinds, where in the run
they may land), and :class:`CampaignConfig` shapes the campaign itself
(runs, controllers, topology, which invariants to evaluate).  Both are
pure data with ``validate()`` hooks, matching the harness convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.units import MILLISECONDS, SECONDS

#: Every fault kind the generator knows how to sample.
ALL_KINDS: Tuple[str, ...] = (
    "delay",
    "jitter",
    "loss",
    "throttle",
    "slowdown",
    "pause",
    "crash",
    "partition",
)

#: Kinds that take a backend out of the dataplane (dark or dead).  On
#: fleet-armed runs the generator drops these: the autoscaler owns pool
#: membership there, and racing its drains against chaos-plane crashes
#: makes "known-good" ambiguous.
HARD_KINDS: Tuple[str, ...] = ("pause", "crash", "partition")


@dataclass
class GeneratorConfig:
    """Bounds on one run's randomized fault schedule.

    The generator samples fault compositions until it has between
    ``min_faults`` and ``max_faults`` specs whose summed intensity (see
    :func:`~repro.campaign.generator.fault_intensity`) stays within
    ``intensity_budget``.  Windows land inside
    ``[onset_min, onset_max] × duration`` and last
    ``[window_min, window_max] × duration`` — the defaults leave the
    final ~30% of every run fault-free so the recovery-bound invariant
    has runway to judge.
    """

    min_faults: int = 1
    max_faults: int = 4
    #: Summed :func:`fault_intensity` cap per schedule.
    intensity_budget: float = 4.0
    kinds: Tuple[str, ...] = ALL_KINDS
    #: Earliest/latest fault onset, as fractions of the run.
    onset_min: float = 0.20
    onset_max: float = 0.50
    #: Shortest/longest activation window, as fractions of the run.
    window_min: float = 0.05
    window_max: float = 0.20

    def validate(self) -> None:
        """Raise :class:`ConfigError` on malformed values."""
        if not 0 < self.min_faults <= self.max_faults:
            raise ConfigError(
                "need 0 < min_faults <= max_faults, got %d..%d"
                % (self.min_faults, self.max_faults)
            )
        if self.intensity_budget <= 0:
            raise ConfigError("intensity_budget must be positive")
        if not self.kinds:
            raise ConfigError("generator needs at least one fault kind")
        unknown = sorted(set(self.kinds) - set(ALL_KINDS))
        if unknown:
            raise ConfigError(
                "unknown fault kind(s) %s (known: %s)"
                % (", ".join(unknown), ", ".join(ALL_KINDS))
            )
        if not 0 <= self.onset_min <= self.onset_max < 1:
            raise ConfigError("need 0 <= onset_min <= onset_max < 1")
        if not 0 < self.window_min <= self.window_max < 1:
            raise ConfigError("need 0 < window_min <= window_max < 1")
        if self.onset_max + self.window_max >= 1:
            raise ConfigError(
                "onset_max + window_max must stay below 1 (every fault "
                "window must end before the run does)"
            )


@dataclass
class CampaignConfig:
    """Shape of one chaos campaign."""

    seed: int = 1
    #: Scenario runs in the campaign; run ``r`` gets scenario seed
    #: ``seed + r`` and its own generated fault schedule.
    runs: int = 10
    duration: int = 2 * SECONDS
    n_servers: int = 3
    n_clients: int = 1
    #: Control laws cycled round-robin across runs (registry names).
    controllers: Tuple[str, ...] = ("alpha",)
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: Invariants to evaluate (None = every registered invariant).
    invariants: Optional[Tuple[str, ...]] = None
    #: Liveness bound: the tail must re-enter the pre-fault band within
    #: this long of the last fault window closing.
    recovery_bound: int = 500 * MILLISECONDS
    #: Every Nth run additionally arms the fleet plane (scale-out then
    #: scale-in mid-run) so membership churn meets random faults; 0
    #: disables fleet-armed runs.
    fleet_every: int = 4
    #: Arm the resilience plane (ladder, breakers, health checks).
    resilience: bool = True
    #: Arm the insight plane on every run (timelines in the rows;
    #: ``run_campaign(timeline_dir=...)`` writes them out).
    insight: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigError` on malformed values."""
        if self.runs <= 0:
            raise ConfigError("campaign needs at least one run")
        if self.duration <= 0:
            raise ConfigError("campaign duration must be positive")
        if self.n_servers < 2:
            raise ConfigError(
                "campaign needs >= 2 servers (shifting load away from a "
                "faulted backend requires somewhere to shift it)"
            )
        if self.n_clients <= 0:
            raise ConfigError("campaign needs at least one client")
        if not self.controllers:
            raise ConfigError("campaign needs at least one controller")
        if self.recovery_bound <= 0:
            raise ConfigError("recovery_bound must be positive")
        if self.fleet_every < 0:
            raise ConfigError("fleet_every must be >= 0")
        self.generator.validate()
