"""The name-keyed invariant registry.

Invariants register a *check* under a short name, exactly the way
control laws register factories in :mod:`repro.controllers.registry` —
the campaign runner (and the CLI, and the chaos smoke in CI) evaluate
invariants by name without enumerating them.  A check takes the
:class:`~repro.campaign.invariants.CampaignContext` of one finished
run and returns a list of violation messages (empty = the invariant
held).

Registering is declarative::

    @register(
        "weight-conservation",
        summary="controller updates conserve total weight, respect floor",
        kind="safety",
    )
    def _check(ctx):
        return [...violation strings...]

Unknown names raise :class:`~repro.errors.ConfigError` listing every
registered name, so a typo in ``--invariants`` is a one-line fix
instead of a hunt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.invariants import CampaignContext


#: (context) -> violation messages (empty list = invariant held)
Check = Callable[["CampaignContext"], List[str]]

#: The two invariant classes chaos campaigns care about: a *safety*
#: invariant must hold at every instant of every run ("nothing bad
#: happens"); a *liveness* invariant must hold eventually ("something
#: good happens" — e.g. the tail recovers after the last fault lifts).
KINDS = ("safety", "liveness")


@dataclass(frozen=True)
class InvariantSpec:
    """One registered invariant: identity, check, classification."""

    name: str
    check: Check
    #: One-line description for docs and reports.
    summary: str = ""
    #: ``"safety"`` or ``"liveness"``.
    kind: str = "safety"


_REGISTRY: Dict[str, InvariantSpec] = {}


def register(
    name: str, summary: str = "", kind: str = "safety"
) -> Callable[[Check], Check]:
    """Decorator: register ``check`` under ``name``."""
    if kind not in KINDS:
        raise ConfigError(
            "invariant kind must be one of %s, got %r" % (", ".join(KINDS), kind)
        )

    def decorate(check: Check) -> Check:
        if name in _REGISTRY:
            raise ConfigError("invariant %r registered twice" % name)
        _REGISTRY[name] = InvariantSpec(
            name=name, check=check, summary=summary, kind=kind
        )
        return check

    return decorate


def available() -> List[str]:
    """All registered invariant names, sorted."""
    return sorted(_REGISTRY)


def specs() -> List[InvariantSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_spec(name: str) -> InvariantSpec:
    """The spec registered under ``name``; ConfigError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            "unknown invariant %r (registered: %s)"
            % (name, ", ".join(available()))
        ) from None
