"""Seeded fault-schedule generation under an intensity budget.

One campaign run's schedule is a random *composition* sampled from the
full chaos vocabulary (:data:`~repro.faults.model.FAULT_KINDS`):
overlapping windows of delay, jitter, loss, throttle, slowdown, pause,
crash, and partition faults, each with a randomized target, onset,
window, and magnitude.  Three properties make the samples useful as a
campaign rather than noise:

* **Determinism** — the schedule is a pure function of ``(generator
  config, duration, n_servers, seed)``; the RNG is a private
  ``random.Random`` seeded via :func:`~repro.sim.random.derive_seed`,
  so campaigns replay byte-identically and shrunk reproducers stay
  valid forever.
* **Intensity budget** — each fault kind carries a cost
  (:func:`fault_intensity`, scaled by magnitude) and a schedule's
  summed cost stays within ``intensity_budget``.  The budget is the
  knob between "background weather" and "everything fails at once".
* **A protected server** — one randomly chosen backend is never hit by
  a *hard* fault (pause/crash/partition), so every scenario keeps at
  least one viable backend and the invariants judge the control plane,
  not a lost-cause topology.

Generated faults are always one-shot (``period=None``): the recovery
bound invariant needs a well-defined "last fault window" to measure
from, and flapping composites are representable as several one-shot
windows anyway.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.campaign.config import HARD_KINDS, GeneratorConfig
from repro.faults.model import (
    FaultSpec,
    LB_TO_SERVER,
    SERVER_TO_CLIENT,
    fault_from_dict,
)
from repro.sim.random import derive_seed
from repro.units import MICROSECONDS, MILLISECONDS

#: Window times snap to this grid: artifacts stay human-readable and
#: halving a window during shrinking cannot create sub-grid noise.
TIME_GRID = 100 * MICROSECONDS

#: Base intensity per fault kind.  Hard faults (a backend going dark or
#: dead) cost the most; magnitude scaling is added on top by
#: :func:`fault_intensity`.
BASE_INTENSITY = {
    "delay": 0.5,
    "jitter": 0.3,
    "loss": 0.5,
    "throttle": 1.0,
    "slowdown": 0.5,
    "pause": 1.5,
    "crash": 2.0,
    "partition": 2.0,
}


def fault_intensity(fault: FaultSpec) -> float:
    """How mean one fault spec is (unitless; budgets sum these).

    Base cost per kind plus a magnitude term: +0.5 per extra ms of
    delay, per ms of jitter amplitude, per 2.5% loss; slowdowns add
    ``factor / 8``.  Pause/crash/partition and throttle are flat — their
    damage is the window, not a magnitude.
    """
    kind = fault.kind
    cost = BASE_INTENSITY[kind]
    if kind == "delay":
        cost += 0.5 * fault.extra / MILLISECONDS
    elif kind == "jitter":
        cost += 0.5 * fault.amplitude / MILLISECONDS
    elif kind == "loss":
        cost += 20.0 * fault.prob
    elif kind == "slowdown":
        cost += fault.factor / 8.0
    return cost


def schedule_intensity(faults: Sequence[FaultSpec]) -> float:
    """Summed :func:`fault_intensity` of a schedule."""
    return sum(fault_intensity(f) for f in faults)


def generate_schedule(
    generator: GeneratorConfig,
    duration: int,
    n_servers: int,
    seed: int,
    fleet: bool = False,
) -> List[FaultSpec]:
    """Sample one run's fault schedule; deterministic per ``seed``.

    ``fleet=True`` drops the hard kinds (pause/crash/partition): on
    fleet-armed runs the autoscaler owns pool membership, and the
    campaign judges its drains against *network/server* weather only.
    """
    generator.validate()
    rng = random.Random(derive_seed("campaign.schedule", seed))
    kinds = tuple(
        k for k in generator.kinds if not (fleet and k in HARD_KINDS)
    ) or ("delay",)
    #: Never hard-fault this backend: the scenario stays viable.
    protected = rng.randrange(n_servers)

    target = rng.randint(generator.min_faults, generator.max_faults)
    faults: List[FaultSpec] = []
    spent = 0.0
    attempts = 0
    while len(faults) < target and attempts < 8 * target:
        attempts += 1
        fault = _sample_fault(
            rng, rng.choice(kinds), generator, duration, n_servers, protected
        )
        cost = fault_intensity(fault)
        if faults and spent + cost > generator.intensity_budget:
            continue  # over budget: re-roll (first fault always lands)
        spent += cost
        faults.append(fault)

    # Stable presentation order (generation order is already
    # deterministic; sorting keeps artifacts diff-friendly).
    faults.sort(key=lambda f: (f.start, f.kind, f.node))
    return faults


def _sample_fault(
    rng: random.Random,
    kind: str,
    generator: GeneratorConfig,
    duration: int,
    n_servers: int,
    protected: int,
) -> FaultSpec:
    """One randomized fault spec of ``kind`` (validated on build)."""
    start = _grid(
        int(duration * rng.uniform(generator.onset_min, generator.onset_max))
    )
    window = max(
        TIME_GRID,
        _grid(
            int(
                duration
                * rng.uniform(generator.window_min, generator.window_max)
            )
        ),
    )
    if kind in HARD_KINDS:
        # Dodge the protected backend so the pool never loses its last
        # viable member to a hard fault.
        index = rng.randrange(n_servers - 1)
        if index >= protected:
            index += 1
    else:
        index = rng.randrange(n_servers)
    params = {
        "node": "server%d" % index,
        "start": start,
        "duration": window,
    }
    if kind in ("delay", "jitter", "loss", "throttle"):
        # Forward path 3:1 over the return path — the paper's stimulus
        # is LB→server, but return-path weather must compose too.
        params["direction"] = (
            LB_TO_SERVER if rng.random() < 0.75 else SERVER_TO_CLIENT
        )
    if kind == "delay":
        params["extra"] = rng.randrange(2, 21) * 100 * MICROSECONDS
    elif kind == "jitter":
        params["amplitude"] = rng.randrange(1, 6) * 100 * MICROSECONDS
    elif kind == "loss":
        params["prob"] = rng.randrange(1, 8) / 100.0
    elif kind == "throttle":
        params["bandwidth_bps"] = rng.randrange(1, 6) * 100_000_000
    elif kind == "slowdown":
        params["factor"] = float(rng.randrange(2, 9))
    return fault_from_dict(dict(params, kind=kind))


def _grid(value: int) -> int:
    return (value // TIME_GRID) * TIME_GRID
