"""The builtin invariant roster: what must hold on *every* run.

Each invariant is a pure check over a finished run — the
:class:`CampaignContext` bundles the :class:`ScenarioResult`, the
in-flight :class:`~repro.campaign.audit.CampaignAudit`, and the
campaign's liveness bound.  Checks return violation *messages*: a
campaign verdict is actionable only if it says which flow, backend, or
transition broke the rule and when.

Safety invariants (must hold at every instant):

* ``weight-conservation`` — controller updates conserve the pool's
  total weight and respect the configured floor (fixed-membership runs).
* ``no-dark-routing`` — no *new* flow lands on an unhealthy, DRAINING,
  or TERMINATED backend.
* ``conntrack-consistent`` — the amortized per-backend flow counts
  agree with a fresh table scan (no orphaned entries, no count drift).
* ``ladder-legal`` — mode transitions chain correctly from the initial
  HOLD and upgrades wait out ``reentry_hold``.
* ``breaker-legal`` — per-backend breaker transitions follow the legal
  CLOSED→OPEN→HALF_OPEN edges.
* ``hold-freeze`` — no controller-driven weight update fires while the
  ladder holds the loop in HOLD or FALLBACK (stale signal must actually
  freeze actuation).
* ``affinity-preserved`` — no established flow is ever re-routed, under
  weight shifts, faults, and scale events alike.

Liveness:

* ``recovery-bound`` — tail latency re-enters the pre-fault band within
  ``recovery_bound`` of the last fault window closing (judged only when
  the run leaves enough fault-free runway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.app.protocol import Op
from repro.campaign.registry import available, get_spec, register
from repro.harness.recovery import fault_window, time_to_recovery
from repro.resilience.ladder import ControllerMode
from repro.units import to_millis

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.audit import CampaignAudit
    from repro.harness.runner import ScenarioResult

#: Messages kept per invariant; the rest collapse into a "+N more".
MAX_MESSAGES = 8

#: Mode severity (mirrors the ladder's ordering): an *upgrade* moves
#: toward FEEDBACK and must wait out ``reentry_hold``.
_SEVERITY = {
    ControllerMode.FEEDBACK: 0,
    ControllerMode.HOLD: 1,
    ControllerMode.FALLBACK: 2,
}

#: Breaker edges the state machine may take (see resilience/breaker.py).
_LEGAL_BREAKER_EDGES = {
    ("CLOSED", "OPEN"),
    ("OPEN", "HALF_OPEN"),
    ("HALF_OPEN", "CLOSED"),
    ("HALF_OPEN", "OPEN"),
}


@dataclass
class CampaignContext:
    """Everything one invariant check may look at."""

    result: "ScenarioResult"
    audit: "CampaignAudit"
    #: Liveness bound for ``recovery-bound`` (ns after last fault end).
    recovery_bound: int

    @property
    def config(self):
        return self.result.config

    @property
    def scenario(self):
        return self.result.scenario

    def controller_updates(self) -> List[object]:
        """The run's controller-driven weight update log (may be [])."""
        feedback = self.scenario.feedback
        if feedback is None or feedback.controller is None:
            return []
        return list(feedback.controller.updates)


@dataclass
class InvariantVerdict:
    """One invariant's outcome on one run."""

    name: str
    kind: str
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


def evaluate(
    context: CampaignContext, names: Optional[Sequence[str]] = None
) -> List[InvariantVerdict]:
    """Run the selected invariants (default: all) over one finished run.

    Verdicts are stored into ``scenario.extras["invariants"]`` so the
    runner report can render them, and — when the run's obs plane is on
    — counted into ``repro_invariant_checks_total`` /
    ``repro_invariant_violations_total`` (labelled by invariant name).
    """
    roster = [get_spec(n) for n in (names if names is not None else available())]
    verdicts = [
        InvariantVerdict(
            name=spec.name, kind=spec.kind, violations=_cap(spec.check(context))
        )
        for spec in roster
    ]
    scenario = context.scenario
    scenario.extras["invariants"] = verdicts
    obs = scenario.obs
    if obs is not None and obs.registry is not None:
        checks = obs.registry.counter(
            "repro_invariant_checks_total",
            "Invariant evaluations, by invariant name.",
            labels=("invariant",),
        )
        violations = obs.registry.counter(
            "repro_invariant_violations_total",
            "Invariant violations found, by invariant name.",
            labels=("invariant",),
        )
        for verdict in verdicts:
            checks.labels(invariant=verdict.name).inc()
            if verdict.violations:
                violations.labels(invariant=verdict.name).inc(
                    len(verdict.violations)
                )
    return verdicts


def _cap(messages: List[str]) -> List[str]:
    if len(messages) <= MAX_MESSAGES:
        return messages
    extra = len(messages) - MAX_MESSAGES
    return messages[:MAX_MESSAGES] + ["... +%d more" % extra]


# ----------------------------------------------------------------------
# Safety invariants
# ----------------------------------------------------------------------


@register(
    "weight-conservation",
    summary="controller updates conserve total weight and respect the floor",
)
def _weight_conservation(ctx: CampaignContext) -> List[str]:
    """Every control law redistributes — it must not mint or destroy
    weight, and no backend may be starved below the configured floor.

    Judged only on fixed-membership runs: with the fleet plane armed,
    pool adds/drains legitimately change the total between updates.
    """
    updates = ctx.controller_updates()
    if not updates:
        return []
    total = sum(ctx.audit.initial_weights.values())
    floor = _weight_floor(ctx.config) * total
    fixed_membership = ctx.scenario.fleet is None
    out: List[str] = []
    for update in updates:
        weights = update.weights_after
        for name, weight in sorted(weights.items()):
            if weight < -1e-9:
                out.append(
                    "t=%.3fms %s weight went negative (%g)"
                    % (to_millis(update.time), name, weight)
                )
            elif fixed_membership and weight < floor - 1e-9:
                out.append(
                    "t=%.3fms %s weight %g below floor %g"
                    % (to_millis(update.time), name, weight, floor)
                )
        if fixed_membership:
            got = sum(weights.values())
            if abs(got - total) > 1e-6 * max(1.0, total):
                out.append(
                    "t=%.3fms total weight %g != initial %g"
                    % (to_millis(update.time), got, total)
                )
    return out


@register(
    "no-dark-routing",
    summary="no new flow is routed to an unhealthy/DRAINING/TERMINATED backend",
)
def _no_dark_routing(ctx: CampaignContext) -> List[str]:
    """Established flows may drain into a dark backend (that is affinity
    working); the *first* packet of a flow must never land on one."""
    return list(ctx.audit.routing.violations)


@register(
    "conntrack-consistent",
    summary="amortized conntrack flow counts match a fresh table scan",
)
def _conntrack_consistent(ctx: CampaignContext) -> List[str]:
    """The per-backend count cache is maintained incrementally on every
    insert/expire; any drift from a fresh recount means an orphaned or
    double-counted entry (the PR 7 bug class)."""
    conntrack = ctx.scenario.lb.conntrack
    fresh = conntrack.recount()
    cached = conntrack.counted()
    if fresh == cached:
        return []
    out = []
    for backend in sorted(set(fresh) | set(cached)):
        have, want = cached.get(backend, 0), fresh.get(backend, 0)
        if have != want:
            out.append(
                "%s: cached count %d, table holds %d" % (backend, have, want)
            )
    return out


@register(
    "ladder-legal",
    summary="mode transitions chain from HOLD and upgrades wait out reentry_hold",
)
def _ladder_legal(ctx: CampaignContext) -> List[str]:
    transitions = ctx.result.mode_transitions()
    if not transitions:
        return []
    reentry_hold = ctx.config.resilience.ladder.reentry_hold
    out: List[str] = []
    previous = None
    for t in transitions:
        if t.from_mode is t.to_mode:
            out.append(
                "t=%.3fms self-loop transition %s -> %s"
                % (to_millis(t.time), t.from_mode.name, t.to_mode.name)
            )
        expected = ControllerMode.HOLD if previous is None else previous.to_mode
        if t.from_mode is not expected:
            out.append(
                "t=%.3fms transition from %s but ladder was in %s"
                % (to_millis(t.time), t.from_mode.name, expected.name)
            )
        if _SEVERITY[t.to_mode] < _SEVERITY[t.from_mode]:
            # Upgrade: the candidate timer resets on every transition,
            # so at least reentry_hold must separate this from the
            # previous transition (or from t=0 for the first).
            since = t.time - (previous.time if previous is not None else 0)
            if since < reentry_hold:
                out.append(
                    "t=%.3fms upgrade %s -> %s only %.3fms after previous "
                    "transition (reentry_hold %.3fms)"
                    % (
                        to_millis(t.time),
                        t.from_mode.name,
                        t.to_mode.name,
                        to_millis(since),
                        to_millis(reentry_hold),
                    )
                )
        previous = t
    return out


@register(
    "breaker-legal",
    summary="per-backend breaker transitions follow the legal state edges",
)
def _breaker_legal(ctx: CampaignContext) -> List[str]:
    transitions = ctx.result.breaker_transitions()
    if not transitions:
        return []
    fleet = ctx.scenario.fleet is not None
    out: List[str] = []
    last: dict = {}
    for t in transitions:
        edge = (t.from_state.name, t.to_state.name)
        if edge not in _LEGAL_BREAKER_EDGES:
            out.append(
                "t=%.3fms %s illegal edge %s -> %s"
                % (to_millis(t.time), t.backend, edge[0], edge[1])
            )
        previous = last.get(t.backend)
        if previous is None:
            if t.from_state.name != "CLOSED":
                out.append(
                    "t=%.3fms %s first transition leaves %s, not CLOSED"
                    % (to_millis(t.time), t.backend, t.from_state.name)
                )
        elif t.from_state is not previous.to_state:
            # A fresh CLOSED chain is legal when the fleet relaunches a
            # terminated name (BreakerBoard.reset drops the breaker).
            if not (fleet and t.from_state.name == "CLOSED"):
                out.append(
                    "t=%.3fms %s transition from %s but breaker was %s"
                    % (
                        to_millis(t.time),
                        t.backend,
                        t.from_state.name,
                        previous.to_state.name,
                    )
                )
        last[t.backend] = t
    return out


@register(
    "hold-freeze",
    summary="no controller-driven weight update fires in HOLD/FALLBACK",
)
def _hold_freeze(ctx: CampaignContext) -> List[str]:
    """Stale-signal holds must actually hold: while the ladder is off
    FEEDBACK, the only legal weight change is the ladder's own
    mode-change relax.  Updates at a transition's exact timestamp are
    allowed — a shift and a downgrade can legally share an instant."""
    feedback = ctx.scenario.feedback
    if feedback is None or feedback.ladder is None:
        return []
    transitions = ctx.result.mode_transitions()
    updates = ctx.controller_updates()
    out: List[str] = []
    for update in updates:
        if getattr(update, "reason", "") == "mode-change":
            continue  # the ladder's own relax-to-uniform
        t = update.time
        mode = ControllerMode.HOLD
        boundary = False
        for transition in transitions:
            if transition.time < t:
                mode = transition.to_mode
            elif transition.time == t:
                boundary = True
        if mode is not ControllerMode.FEEDBACK and not boundary:
            out.append(
                "t=%.3fms controller update (%s) while ladder in %s"
                % (
                    to_millis(t),
                    getattr(update, "reason", "recompute"),
                    mode.name,
                )
            )
    return out


@register(
    "affinity-preserved",
    summary="no established flow is re-routed across shifts or scale events",
)
def _affinity_preserved(ctx: CampaignContext) -> List[str]:
    return [
        "flow %s moved %s -> %s" % (flow, previous, backend)
        for flow, previous, backend in ctx.audit.affinity.violations
    ]


# ----------------------------------------------------------------------
# Liveness invariants
# ----------------------------------------------------------------------


@register(
    "recovery-bound",
    summary="tail latency re-enters the pre-fault band soon after the last fault",
    kind="liveness",
)
def _recovery_bound(ctx: CampaignContext) -> List[str]:
    """Judged only when judgeable: the schedule must be finite and
    one-shot, the run must leave at least ``recovery_bound`` of
    fault-free runway, and there must be pre-fault baseline traffic."""
    config = ctx.config
    window = fault_window(config)
    if window is None:
        return []
    onset, end = window
    if end is None or any(f.period is not None for f in config.all_faults()):
        return []  # open-ended or recurring: no well-defined "last fault"
    runway = config.duration - end
    if runway < ctx.recovery_bound:
        return []
    baseline = ctx.result.latencies(
        op=Op.GET, start=config.warmup or None, end=onset
    )
    if not baseline:
        return []
    recovery = time_to_recovery(ctx.result, window)
    bound = ctx.recovery_bound
    if recovery is None:
        return [
            "tail latency degraded and never re-entered the pre-fault band "
            "(last fault ended t=%.3fms, bound %.3fms, run end t=%.3fms)"
            % (to_millis(end), to_millis(bound), to_millis(config.duration))
        ]
    recovered_at = onset + recovery
    if recovered_at > end + bound:
        return [
            "tail latency recovered t=%.3fms, %.3fms after the last fault "
            "ended (bound %.3fms)"
            % (
                to_millis(recovered_at),
                to_millis(recovered_at - end),
                to_millis(bound),
            )
        ]
    return []


def _weight_floor(config) -> float:
    """The active law's weight-floor fraction (alpha keeps its tunables
    in the ``controller`` sub-config, the zoo laws in their own)."""
    sub = getattr(config.feedback, config.feedback.strategy, None)
    floor = getattr(sub, "weight_floor", None) if sub is not None else None
    if floor is None:
        floor = config.feedback.controller.weight_floor
    return floor
