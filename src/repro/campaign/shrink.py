"""Delta-debugging shrinker: minimize a violating schedule.

A campaign finds a six-fault composition that breaks an invariant;
what a human needs is the *two*-fault core that still breaks it.  The
shrinker runs ddmin-style reduction passes over the point's fault
dicts, re-running the candidate after every edit and keeping it only
if some originally-violated invariant still fires:

1. **drop** — remove one fault at a time, to fixpoint;
2. **narrow** — halve each surviving fault's window, to fixpoint;
3. **soften** — halve each fault's magnitude (delay extra, jitter
   amplitude, loss probability, slowdown factor; throttles *double*
   their cap — weaker is larger), to fixpoint.

Every candidate evaluation goes through the cached sweep executor, so
a shrink is deterministic, resumable, and free wherever the campaign
(or an earlier shrink) already ran the same point.  The total number
of evaluations is bounded by ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.faults.model import fault_from_dict
from repro.units import MICROSECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import CampaignPoint

#: Shrunk windows and delays never go below this (sub-grid faults are
#: noise, and zero-length windows are invalid anyway).
FLOOR_NS = 100 * MICROSECONDS

#: kind -> (magnitude field, softener, "is it still meaningful?").
_SOFTEN = {
    "delay": ("extra", lambda v: v // 2, lambda v: v >= FLOOR_NS),
    "jitter": ("amplitude", lambda v: v // 2, lambda v: v >= FLOOR_NS),
    "loss": ("prob", lambda v: v / 2.0, lambda v: v >= 0.005),
    "slowdown": (
        "factor",
        lambda v: 1.0 + (v - 1.0) / 2.0,
        lambda v: v >= 1.25,
    ),
    "throttle": (
        "bandwidth_bps",
        lambda v: v * 2,
        lambda v: v <= 4_000_000_000,
    ),
}


@dataclass
class ShrinkStats:
    """Accounting for one shrink: how hard it worked, how far it got."""

    attempts: int = 0
    accepted: int = 0
    from_faults: int = 0
    to_faults: int = 0

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "accepted": self.accepted,
            "from_faults": self.from_faults,
            "to_faults": self.to_faults,
        }


def shrink_point(
    point: "CampaignPoint",
    violated: Sequence[str],
    store=None,
    use_cache: bool = True,
    max_attempts: int = 64,
):
    """Minimize ``point`` while some invariant in ``violated`` still
    fires; returns ``(smaller point, ShrinkStats)``.

    ``violated`` must name at least one invariant the original point
    breaks — the predicate is "any of these still fires", the standard
    ddmin guard against shrinking onto a *different* bug.
    """
    if not violated:
        raise ConfigError("shrink needs at least one violated invariant")
    violated_set = set(violated)
    stats = ShrinkStats(from_faults=len(point.faults))

    def still_fails(candidate: "CampaignPoint") -> bool:
        if stats.attempts >= max_attempts:
            return False
        stats.attempts += 1
        row = _run(candidate, store=store, use_cache=use_cache)
        return bool(violated_set & set(row["violated"]))

    current = point
    for reduce_pass in (_drop_pass, _narrow_pass, _soften_pass):
        current = _to_fixpoint(reduce_pass, current, still_fails, stats)
        if stats.attempts >= max_attempts:
            break
    stats.to_faults = len(current.faults)
    return current, stats


def _run(point: "CampaignPoint", store, use_cache) -> dict:
    from repro.campaign.runner import campaign_point
    from repro.sweep.executor import run_tasks, task

    report = run_tasks(
        [task(campaign_point, point, label="shrink")],
        jobs=1,
        store=store,
        use_cache=use_cache,
    )
    return report.rows[0]


def _to_fixpoint(reduce_pass, point, still_fails, stats) -> "CampaignPoint":
    while True:
        smaller = reduce_pass(point, still_fails)
        if smaller is None:
            return point
        stats.accepted += 1
        point = smaller


def _drop_pass(
    point: "CampaignPoint", still_fails: Callable
) -> Optional["CampaignPoint"]:
    """First single-fault removal that still violates, else None."""
    if len(point.faults) <= 1:
        return None
    for index in range(len(point.faults)):
        faults = [f for i, f in enumerate(point.faults) if i != index]
        candidate = replace(point, faults=faults)
        if still_fails(candidate):
            return candidate
    return None


def _narrow_pass(
    point: "CampaignPoint", still_fails: Callable
) -> Optional["CampaignPoint"]:
    """First window-halving that still violates, else None."""
    for index, fault in enumerate(point.faults):
        duration = fault.get("duration")
        if duration is None:
            continue
        half = _grid(duration // 2)
        if half < FLOOR_NS:
            continue
        candidate = _edit(point, index, duration=half)
        if candidate is not None and still_fails(candidate):
            return candidate
    return None


def _soften_pass(
    point: "CampaignPoint", still_fails: Callable
) -> Optional["CampaignPoint"]:
    """First magnitude-halving that still violates, else None."""
    for index, fault in enumerate(point.faults):
        soften = _SOFTEN.get(fault["kind"])
        if soften is None:
            continue  # pause/crash/partition have no magnitude
        field, halve, meaningful = soften
        softer = halve(fault[field])
        if not meaningful(softer):
            continue
        candidate = _edit(point, index, **{field: softer})
        if candidate is not None and still_fails(candidate):
            return candidate
    return None


def _edit(point: "CampaignPoint", index: int, **changes) -> Optional["CampaignPoint"]:
    """Copy of ``point`` with one fault dict edited (None if invalid)."""
    faults = [dict(f) for f in point.faults]
    faults[index].update(changes)
    try:
        fault_from_dict(faults[index])
    except ConfigError:
        return None
    return replace(point, faults=faults)


def _grid(value: int) -> int:
    return (value // FLOOR_NS) * FLOOR_NS
