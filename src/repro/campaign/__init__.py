"""``repro.campaign`` — chaos campaigns with judged invariants.

The campaign plane closes the loop the chaos plane opened: instead of
hand-picked fault presets judged by eyeball, a campaign *generates*
randomized fault schedules under an intensity budget
(:mod:`~repro.campaign.generator`), runs them across the controller
zoo through the cached sweep executor
(:mod:`~repro.campaign.runner`), judges every run against a registry
of safety and liveness invariants
(:mod:`~repro.campaign.registry` / :mod:`~repro.campaign.invariants`),
and — when something breaks — delta-debugs the schedule down to a
minimal, replayable reproducer artifact
(:mod:`~repro.campaign.shrink` / :mod:`~repro.campaign.artifact`).

Everything is deterministic per seed: the same campaign config yields
byte-identical schedules, verdicts, and shrunk reproducers at any
``--jobs`` level.
"""

from repro.campaign.artifact import (
    ARTIFACT_FORMAT,
    load_artifact,
    load_violations,
    write_artifact,
)
from repro.campaign.config import ALL_KINDS, CampaignConfig, GeneratorConfig
from repro.campaign.generator import (
    fault_intensity,
    generate_schedule,
    schedule_intensity,
)
from repro.campaign.invariants import (
    CampaignContext,
    InvariantVerdict,
    evaluate,
)
from repro.campaign.registry import (
    InvariantSpec,
    available,
    get_spec,
    register,
    specs,
)
from repro.campaign.runner import (
    CampaignPoint,
    CampaignReport,
    build_point_config,
    campaign_point,
    campaign_points,
    replay_artifact,
    run_campaign,
)
from repro.campaign.shrink import ShrinkStats, shrink_point

__all__ = [
    "ALL_KINDS",
    "ARTIFACT_FORMAT",
    "CampaignConfig",
    "CampaignContext",
    "CampaignPoint",
    "CampaignReport",
    "GeneratorConfig",
    "InvariantSpec",
    "InvariantVerdict",
    "ShrinkStats",
    "available",
    "build_point_config",
    "campaign_point",
    "campaign_points",
    "evaluate",
    "fault_intensity",
    "generate_schedule",
    "get_spec",
    "load_artifact",
    "load_violations",
    "register",
    "replay_artifact",
    "run_campaign",
    "schedule_intensity",
    "shrink_point",
    "specs",
    "write_artifact",
]
