"""Replayable reproducer artifacts: a violation you can hold.

When a campaign run violates an invariant, the shrinker minimizes its
fault schedule and the result is persisted as a small JSON artifact:
the complete :class:`~repro.campaign.runner.CampaignPoint` (seed,
topology, controller, fault dicts), the violations it produced, and
the shrink accounting.  ``repro chaos replay <artifact>`` rebuilds the
point and re-runs it through the cached executor — byte-identically,
today or after a ``git bisect`` — so a chaos finding travels like a
failing test, not like a war story.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError
from repro.faults.model import fault_from_dict

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import CampaignPoint

#: Format tag written into (and required of) every artifact.
ARTIFACT_FORMAT = "repro.campaign/reproducer-v1"


def write_artifact(
    path: str,
    point: "CampaignPoint",
    violations: Dict[str, List[str]],
    shrink: Optional[dict] = None,
) -> str:
    """Persist one reproducer; returns the path written."""
    tree = {
        "format": ARTIFACT_FORMAT,
        "point": asdict(point),
        "violations": violations,
    }
    if shrink is not None:
        tree["shrink"] = shrink
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(tree, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_artifact(path: str) -> "CampaignPoint":
    """Rebuild (and re-validate) the point a reproducer describes."""
    from repro.campaign.runner import CampaignPoint

    try:
        with open(path, "r", encoding="utf-8") as handle:
            tree = json.load(handle)
    except OSError as exc:
        raise ConfigError("cannot read artifact %s: %s" % (path, exc)) from None
    except ValueError as exc:
        raise ConfigError("artifact %s is not JSON: %s" % (path, exc)) from None
    if not isinstance(tree, dict) or tree.get("format") != ARTIFACT_FORMAT:
        raise ConfigError(
            "artifact %s is not a %r file" % (path, ARTIFACT_FORMAT)
        )
    payload = tree.get("point")
    if not isinstance(payload, dict):
        raise ConfigError("artifact %s has no point payload" % path)
    try:
        point = CampaignPoint(**payload)
    except TypeError as exc:
        raise ConfigError("artifact %s point is malformed: %s" % (path, exc)) from None
    for fault in point.faults:
        fault_from_dict(fault)  # validates kinds, fields, magnitudes
    return point


def load_violations(path: str) -> Dict[str, List[str]]:
    """The violations recorded in an artifact (for replay comparison)."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = json.load(handle)
    return tree.get("violations", {})
