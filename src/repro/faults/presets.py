"""Canned chaos scenarios, parameterized only by the run duration.

Each preset is a function ``duration_ns -> List[FaultSpec]`` registered
in :data:`PRESETS`, so the CLI (``--fault <name>``), benchmarks, and
tests share one vocabulary.  Times scale with the run so a preset makes
sense at any duration: onsets sit after warmup, and recurring faults get
several full periods.

=================== ====================================================
``fig3``            the paper's stimulus: 1 ms on LB→server0 at midpoint
``flapping_server`` server0 repeatedly slows 8× and recovers (flapping)
``lossy_path``      2% random loss on the LB→server0 path
``slow_ramp``       staircase of compounding slowdowns on server0
``correlated_burst`` delay+jitter+loss hit *every* LB→server path at once
``crash``           server0 dies for the middle third, then restarts
``elastic``         correlated burst timed to land during a scale-out
``gray_failure``    server0 slows 12× but health probes still pass
``partition``       server0 is cut off the network for the middle third
=================== ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.faults.model import (
    CrashRestartFault,
    DelayFault,
    FaultSpec,
    JitterFault,
    LossFault,
    PartitionFault,
    ServerSlowdownFault,
)
from repro.units import MILLISECONDS


def fig3(
    duration: int,
    node: str = "server0",
    extra: int = 1 * MILLISECONDS,
) -> List[FaultSpec]:
    """The paper's Fig 3 stimulus in the chaos vocabulary.

    One :class:`DelayFault`: ``extra`` ns added to the LB→``node`` pipe
    at the midpoint, until the run ends.
    """
    return [DelayFault(start=duration // 2, extra=extra, node=node)]


def flapping_server(duration: int, node: str = "server0") -> List[FaultSpec]:
    """``node`` flaps between healthy and 8× slow (KnapsackLB's regime).

    Starting at a quarter of the run, the server slows down for half of
    every period, four periods total — fast enough that a control loop
    must keep re-converging, slow enough that it can.
    """
    period = max(2, duration // 6)
    return [
        ServerSlowdownFault(
            start=duration // 4,
            duration=period // 2,
            period=period,
            factor=8.0,
            node=node,
        )
    ]


def lossy_path(
    duration: int, node: str = "server0", prob: float = 0.02
) -> List[FaultSpec]:
    """Random loss on the LB→``node`` path from a quarter of the run on.

    Loss perturbs exactly what the measurement plane consumes — packet
    gaps at the LB — and retransmissions inflate the true latency.
    """
    return [LossFault(start=duration // 4, prob=prob, node=node)]


def slow_ramp(duration: int, node: str = "server0") -> List[FaultSpec]:
    """``node`` degrades in compounding steps: 1.5×, 2.25×, ~3.4×, ~5×.

    Four overlapping open-ended slowdowns, one every eighth of the run
    from the midpoint's first quarter — the multiplicative composition
    law turns the staircase into an accelerating ramp, modelling gradual
    resource exhaustion rather than a step fault.
    """
    step = max(1, duration // 8)
    return [
        ServerSlowdownFault(start=duration // 4 + k * step, factor=1.5, node=node)
        for k in range(4)
    ]


def crash(duration: int, node: str = "server0") -> List[FaultSpec]:
    """``node`` crashes for the middle third of the run, then restarts.

    The canonical resilience stimulus: the process dies (listener down,
    in-flight requests lost, pool marks it unhealthy), stays dead long
    enough for its feedback signal to invalidate, then comes back —
    exercising staleness detection, the degradation ladder's FALLBACK
    entry, and recovery re-entry into FEEDBACK.
    """
    return [
        CrashRestartFault(
            start=duration // 3, duration=duration // 3, node=node
        )
    ]


def elastic(duration: int) -> List[FaultSpec]:
    """A correlated burst timed to land *during* a scale-out.

    The fleet plane's elastic scenario schedules its guaranteed ramp to
    peak capacity at the midpoint of the run; this preset drops extra
    delay, jitter, and loss on every LB→server path starting slightly
    after that, so the burst hits while new backends are still warming
    and the controller is digesting hundreds of cold signals.  The
    nastiest failure mode it hunts: a controller that conflates
    "backend is new and unmeasured" with "backend is slow" and starts
    oscillating the fleet's weights during the burst.
    """
    start = duration // 2 + duration // 16
    burst = max(1, duration // 8)
    return [
        DelayFault(start=start, duration=burst, extra=500_000, node="*"),
        JitterFault(start=start, duration=burst, amplitude=200_000, node="*"),
        LossFault(start=start, duration=burst, prob=0.01, node="*"),
    ]


def gray_failure(
    duration: int, node: str = "server0", factor: float = 12.0
) -> List[FaultSpec]:
    """``node`` degrades hard but stays *up*: the slow-but-alive case.

    A gray failure is the regime out-of-band health checking is blind
    to: the server answers probes (it is alive, the listener works, the
    probe RTT is tiny next to the probe timeout) while real requests
    crawl through a ``factor``× service-time inflation.  Health-gated
    Maglev therefore keeps sending it a full share; only a controller
    reading the in-band signal — which measures what *requests*
    experience, not what probes experience — can route around it.  The
    fault holds for the middle half of the run and then lifts, so the
    run also measures recovery.
    """
    return [
        ServerSlowdownFault(
            start=duration // 4,
            duration=duration // 2,
            factor=factor,
            node=node,
        )
    ]


def partition(duration: int, node: str = "server0") -> List[FaultSpec]:
    """``node`` drops off the network for the middle third of the run.

    Unlike ``crash`` the process never dies and the pool is never told:
    packets to and from the node simply vanish, probes time out, and the
    in-band signal goes silent — the fail-silent complement of
    ``gray_failure``'s fail-slow.
    """
    return [
        PartitionFault(start=duration // 3, duration=duration // 3, node=node)
    ]


def correlated_burst(duration: int) -> List[FaultSpec]:
    """Every LB→server path degrades at once for an eighth of the run.

    Extra delay, jitter, and loss land together on *all* backends
    (node glob ``*``) — the transient-interference shape Morpheus
    targets.  No routing decision helps here; a good controller should
    recognize the symmetry and hold still.
    """
    start = duration // 2
    burst = max(1, duration // 8)
    return [
        DelayFault(start=start, duration=burst, extra=500_000, node="*"),
        JitterFault(start=start, duration=burst, amplitude=200_000, node="*"),
        LossFault(start=start, duration=burst, prob=0.01, node="*"),
    ]


#: name → preset builder (duration_ns -> fault list).
PRESETS: Dict[str, Callable[[int], List[FaultSpec]]] = {
    "fig3": fig3,
    "flapping_server": flapping_server,
    "lossy_path": lossy_path,
    "slow_ramp": slow_ramp,
    "correlated_burst": correlated_burst,
    "crash": crash,
    "elastic": elastic,
    "gray_failure": gray_failure,
    "partition": partition,
}


def preset(name: str, duration: int) -> List[FaultSpec]:
    """Instantiate a named preset for a run of ``duration`` ns."""
    try:
        builder = PRESETS[name]
    except KeyError:
        raise ConfigError(
            "unknown fault preset %r (available: %s)"
            % (name, ", ".join(sorted(PRESETS)))
        ) from None
    return builder(duration)
