"""Textual fault specs for the CLI and config files.

Two forms are accepted:

* a preset name — ``flapping_server`` — expanded for the run duration;
* an inline spec — ``kind:key=value,key=value,...`` — e.g.::

      delay:node=server0,start=1s,extra=1ms
      loss:node=server*,start=0.5s,prob=0.02
      slowdown:node=server1,start=250ms,dur=100ms,period=400ms,factor=6
      throttle:node=server0,start=1s,bw=200m
      crash:node=server2,start=1s,dur=500ms

Durations/times take a unit suffix (``ns``/``us``/``ms``/``s``); a bare
number means seconds.  Bandwidth takes ``k``/``m``/``g`` suffixes
(bits/s).  Unknown kinds, keys, or malformed values raise
:class:`~repro.errors.ConfigError` — a typo should fail the run, not
silently do nothing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.faults.model import FAULT_KINDS, DIRECTIONS, FaultSpec
from repro.faults.presets import PRESETS, preset

#: spec key → fault dataclass field, shared across kinds.
_COMMON_KEYS = {
    "node": "node",
    "dir": "direction",
    "start": "start",
    "dur": "duration",
    "duration": "duration",
    "period": "period",
}

#: kind → magnitude spec keys (→ field name).
_MAGNITUDE_KEYS: Dict[str, Dict[str, str]] = {
    "delay": {"extra": "extra"},
    "jitter": {"amp": "amplitude", "amplitude": "amplitude"},
    "loss": {"prob": "prob"},
    "throttle": {"bw": "bandwidth_bps", "bandwidth": "bandwidth_bps"},
    "slowdown": {"factor": "factor"},
    "pause": {},
    "crash": {},
    "partition": {},
}

_TIME_FIELDS = {"start", "duration", "period", "extra", "amplitude"}

_TIME_SUFFIXES = (
    ("ns", 1),
    ("us", 1_000),
    ("ms", 1_000_000),
    ("s", 1_000_000_000),
)

_BW_SUFFIXES = (("k", 1_000), ("m", 1_000_000), ("g", 1_000_000_000))


def parse_faults(text: str, duration: int) -> List[FaultSpec]:
    """Parse one ``--fault`` argument into fault specs.

    ``duration`` is the run length, used to expand preset names.
    """
    text = text.strip()
    if not text:
        raise ConfigError("empty fault spec")
    if ":" not in text:
        if text in PRESETS:
            return preset(text, duration)
        if text in FAULT_KINDS:
            raise ConfigError(
                "fault spec %r has no parameters; write e.g. %r"
                % (text, "%s:node=server0,start=1s" % text)
            )
        raise ConfigError(
            "unknown fault preset %r (available: %s)"
            % (text, ", ".join(sorted(PRESETS)))
        )
    kind, _, body = text.partition(":")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise ConfigError(
            "unknown fault kind %r (expected one of %s)"
            % (kind, ", ".join(sorted(FAULT_KINDS)))
        )
    keymap = dict(_COMMON_KEYS)
    keymap.update(_MAGNITUDE_KEYS[kind])
    values: Dict[str, object] = {}
    for item in filter(None, (part.strip() for part in body.split(","))):
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep:
            raise ConfigError("fault spec item %r is not key=value" % item)
        if key not in keymap:
            raise ConfigError(
                "unknown key %r for %s fault (expected %s)"
                % (key, kind, ", ".join(sorted(keymap)))
            )
        field = keymap[key]
        values[field] = _parse_value(field, raw.strip())
    fault = FAULT_KINDS[kind](**values)
    fault.validate()
    return [fault]


def _parse_value(field: str, raw: str) -> object:
    if not raw:
        raise ConfigError("empty value for %r" % field)
    if field in _TIME_FIELDS:
        return _parse_time(raw)
    if field == "bandwidth_bps":
        return _parse_bandwidth(raw)
    if field in ("prob", "factor"):
        try:
            return float(raw)
        except ValueError:
            raise ConfigError("bad number %r for %r" % (raw, field)) from None
    if field == "direction":
        if raw not in DIRECTIONS:
            raise ConfigError(
                "unknown direction %r (expected one of %s)"
                % (raw, ", ".join(DIRECTIONS))
            )
        return raw
    return raw  # node glob


def _parse_time(raw: str) -> int:
    """``"1ms"`` → 1_000_000; a bare number means seconds."""
    lowered = raw.lower()
    for suffix, scale in _TIME_SUFFIXES:
        if lowered.endswith(suffix):
            number = lowered[: -len(suffix)]
            break
    else:
        number, scale = lowered, 1_000_000_000
    try:
        return round(float(number) * scale)
    except ValueError:
        raise ConfigError("bad time value %r" % raw) from None


def _parse_bandwidth(raw: str) -> int:
    """``"200m"`` → 200_000_000 bits/s; bare numbers are bits/s."""
    lowered = raw.lower().rstrip("bps").rstrip("bit")
    for suffix, scale in _BW_SUFFIXES:
        if lowered.endswith(suffix):
            number = lowered[: -len(suffix)]
            break
    else:
        number, scale = lowered, 1
    try:
        return round(float(number) * scale)
    except ValueError:
        raise ConfigError("bad bandwidth value %r" % raw) from None
