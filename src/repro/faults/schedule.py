"""Fault timetabling: specs → validated, ordered activation windows.

A :class:`FaultSchedule` owns a list of fault specs, validates them as a
set, and expands recurrences into concrete :class:`FaultWindow` s up to
a horizon (the scenario duration).  Windows are sorted by
``(start, declaration order)``, which makes activation deterministic
even when several faults fire at the same instant.

Composition of overlapping windows is *defined* here and *implemented*
by the injector, per knob:

* delays add;
* jitters draw independently and add;
* loss probabilities compose as independent segments, ``1 − ∏(1 − pᵢ)``;
* throttles take the tightest cap;
* server slowdowns multiply;
* pauses/crashes are reference-counted (the last revert releases).

Every activation reverts deterministically at its window end: the knob
returns to exactly the value it had before the chaos plane touched it
(the *baseline*), regardless of the order overlapping windows expire in.
A recurring fault whose next window starts at or past the horizon simply
never activates — scenarios that end mid-period cancel cleanly because
pending events beyond the horizon never fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.faults.model import FaultSpec
from repro.units import format_ns


@dataclass(frozen=True)
class FaultWindow:
    """One concrete activation of a fault: ``[start, end)``.

    ``end=None`` means the fault stays active until the run ends (no
    revert is ever scheduled).
    """

    fault: FaultSpec
    start: int
    end: Optional[int]

    @property
    def duration(self) -> Optional[int]:
        """Window length (ns), or None for until-end-of-run."""
        if self.end is None:
            return None
        return self.end - self.start

    def covers(self, time: int) -> bool:
        """Whether ``time`` falls inside this window."""
        if time < self.start:
            return False
        return self.end is None or time < self.end

    def describe(self) -> str:
        """Compact rendering: ``delay(+1.000ms) server0 @2.000s..3.000s``."""
        end = "end" if self.end is None else format_ns(self.end)
        return "%s @%s..%s" % (self.fault.describe(), format_ns(self.start), end)


class FaultSchedule:
    """A validated, composable set of fault specs."""

    def __init__(self, faults: Sequence[FaultSpec]):
        self.faults: List[FaultSpec] = list(faults)
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigError(
                    "fault schedule entries must be FaultSpec instances, "
                    "got %r" % (fault,)
                )
            fault.validate()

    def __len__(self) -> int:
        return len(self.faults)

    def windows(self, horizon: int) -> List[FaultWindow]:
        """Expand recurrences into sorted windows starting before ``horizon``.

        One-shot faults yield a single window; recurring faults yield
        one window per period until the horizon.  Windows starting at or
        after the horizon are dropped (they could never fire); window
        *ends* may exceed the horizon — their reverts never fire, which
        is exactly the until-run-end semantics.
        """
        if horizon <= 0:
            raise ConfigError("fault horizon must be positive")
        keyed = []
        for index, fault in enumerate(self.faults):
            if fault.start >= horizon:
                raise ConfigError(
                    "fault %s starts at %s, at/after the run end (%s)"
                    % (fault.describe(), format_ns(fault.start), format_ns(horizon))
                )
            if fault.period is None:
                end = (
                    None if fault.duration is None
                    else fault.start + fault.duration
                )
                keyed.append((fault.start, index, FaultWindow(fault, fault.start, end)))
            else:
                start = fault.start
                while start < horizon:
                    keyed.append(
                        (start, index, FaultWindow(fault, start, start + fault.duration))
                    )
                    start += fault.period
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        return [window for _start, _index, window in keyed]
