"""Declarative fault injection — the chaos plane.

The repo started with exactly one fault knob (the Fig 3 delay
injection); this package generalizes it into a subsystem: typed fault
specs (:mod:`~repro.faults.model`), a validating/compiling timetable
(:mod:`~repro.faults.schedule`), an injector that binds schedules to a
built topology with deterministic revert-on-expiry
(:mod:`~repro.faults.injector`), a preset library
(:mod:`~repro.faults.presets`), and a textual spec parser for the CLI
(:mod:`~repro.faults.parse`).

Quick start::

    from repro.faults import DelayFault, LossFault
    from repro.harness import PolicyName, ScenarioConfig, run_scenario
    from repro.units import MILLISECONDS, seconds

    config = ScenarioConfig(
        duration=seconds(2),
        policy=PolicyName.FEEDBACK,
        faults=[
            DelayFault(start=seconds(1), extra=1 * MILLISECONDS, node="server0"),
            LossFault(start=seconds(1), prob=0.02, node="server*"),
        ],
    )
    result = run_scenario(config)
    print(result.report())        # latency timeline annotated with fault windows
"""

from repro.faults.injector import ArmedWindow, FaultEvent, Injector
from repro.faults.model import (
    CLIENT_TO_LB,
    DIRECTIONS,
    FAULT_KINDS,
    LB_TO_SERVER,
    PIPE_FAULTS,
    SERVER_FAULTS,
    SERVER_TO_CLIENT,
    TOPOLOGY_FAULTS,
    CrashRestartFault,
    DelayFault,
    FaultSpec,
    JitterFault,
    LossFault,
    PartitionFault,
    ServerPauseFault,
    ServerSlowdownFault,
    ThrottleFault,
    fault_from_dict,
    fault_to_dict,
)
from repro.faults.parse import parse_faults
from repro.faults.presets import PRESETS, preset
from repro.faults.schedule import FaultSchedule, FaultWindow

__all__ = [
    "ArmedWindow",
    "FaultEvent",
    "Injector",
    "FaultSpec",
    "DelayFault",
    "JitterFault",
    "LossFault",
    "ThrottleFault",
    "ServerSlowdownFault",
    "ServerPauseFault",
    "CrashRestartFault",
    "PartitionFault",
    "fault_to_dict",
    "fault_from_dict",
    "FaultSchedule",
    "FaultWindow",
    "PRESETS",
    "preset",
    "parse_faults",
    "FAULT_KINDS",
    "PIPE_FAULTS",
    "SERVER_FAULTS",
    "TOPOLOGY_FAULTS",
    "DIRECTIONS",
    "LB_TO_SERVER",
    "CLIENT_TO_LB",
    "SERVER_TO_CLIENT",
]
