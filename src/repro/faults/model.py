"""Typed fault specifications — the chaos plane's vocabulary.

A fault is *what* goes wrong (the subclass and its magnitude), *where*
(a target selector: a pipe direction plus a node-name glob), and *when*
(a start time plus an optional duration and recurrence).  Fault specs
are pure data: they do nothing until a
:class:`~repro.faults.schedule.FaultSchedule` expands them into concrete
activation windows and an :class:`~repro.faults.injector.Injector` binds
those windows to a built topology.

The vocabulary covers the disturbance classes the related work cares
about — delay spikes and RTT shifts (Fig 3 here; Morpheus's transient
interference), loss and throttled paths, heterogeneous/dynamic server
performance (KnapsackLB), GC-style pauses (§2.2), and crash/recover
churn (§2.5):

============================  =========================================
:class:`DelayFault`           extra one-way delay on matched pipes
:class:`JitterFault`          uniform per-packet jitter on matched pipes
:class:`LossFault`            random packet loss on matched pipes
:class:`ThrottleFault`        bandwidth cap on matched pipes
:class:`ServerSlowdownFault`  service-time multiplier on matched servers
:class:`ServerPauseFault`     stop-the-world pause on matched servers
:class:`CrashRestartFault`    backend leaves the pool, then returns
:class:`PartitionFault`       every pipe touching matched nodes goes dark
============================  =========================================

Recurrence: ``period=None`` is one-shot; a period repeats the fault's
active window every ``period`` ns until the run ends — ``duration <
period`` gives a flapping fault.  Overlapping instances compose (see the
schedule module for the per-knob composition law).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.units import MILLISECONDS, format_ns

#: Pipe directions a target selector can name.
LB_TO_SERVER = "lb->server"
CLIENT_TO_LB = "client->lb"
SERVER_TO_CLIENT = "server->client"
DIRECTIONS = (LB_TO_SERVER, CLIENT_TO_LB, SERVER_TO_CLIENT)


@dataclass
class FaultSpec:
    """Base fault: target selector + time window + recurrence.

    Parameters
    ----------
    start:
        Onset of the first activation (ns).
    duration:
        Length of each activation (ns); ``None`` keeps the fault active
        until the run ends.  Zero or negative durations are rejected —
        a fault that never does anything is a config bug.
    period:
        If set, the fault re-activates every ``period`` ns (requires a
        ``duration`` no longer than the period).
    node:
        Glob matched against node names (``fnmatch``): the server end
        for ``lb->server`` / ``server->client`` pipes, the client end
        for ``client->lb``, the server itself for server faults.
    direction:
        Which pipe set the selector addresses; ignored by server faults.
    """

    kind = "fault"

    start: int = 0
    duration: Optional[int] = None
    period: Optional[int] = None
    node: str = "*"
    direction: str = LB_TO_SERVER

    def validate(self) -> None:
        """Raise :class:`ConfigError` on malformed values."""
        if self.start < 0:
            raise ConfigError("%s fault start must be >= 0" % self.kind)
        if self.duration is not None and self.duration <= 0:
            raise ConfigError(
                "%s fault duration must be positive (got %r); use None "
                "for until-end-of-run" % (self.kind, self.duration)
            )
        if self.period is not None:
            if self.period <= 0:
                raise ConfigError("%s fault period must be positive" % self.kind)
            if self.duration is None:
                raise ConfigError(
                    "recurring %s fault needs a finite duration" % self.kind
                )
            if self.duration > self.period:
                raise ConfigError(
                    "%s fault duration exceeds its period" % self.kind
                )
        if not self.node:
            raise ConfigError("%s fault needs a node glob" % self.kind)
        if self.direction not in DIRECTIONS:
            raise ConfigError(
                "unknown direction %r (expected one of %s)"
                % (self.direction, ", ".join(DIRECTIONS))
            )
        self._validate_magnitude()

    def _validate_magnitude(self) -> None:
        """Subclass hook for magnitude-field checks."""

    def matches(self, name: str) -> bool:
        """Whether ``name`` satisfies the node glob."""
        return fnmatch.fnmatchcase(name, self.node)

    def describe(self) -> str:
        """Compact one-line rendering for reports and traces."""
        parts = ["%s(%s)" % (self.kind, self._describe_magnitude())]
        parts.append(self.node)
        if self.period is not None:
            parts.append("every %s" % format_ns(self.period))
        return " ".join(parts)

    def _describe_magnitude(self) -> str:
        return ""


@dataclass
class DelayFault(FaultSpec):
    """Extra one-way delay on matched pipes (additive when overlapping).

    The paper's Fig 3 stimulus is ``DelayFault(start=midpoint,
    extra=1 * MILLISECONDS, node="server0")``.
    """

    kind = "delay"

    extra: int = 1 * MILLISECONDS

    def _validate_magnitude(self) -> None:
        if self.extra < 0:
            raise ConfigError("delay fault extra must be >= 0")

    def _describe_magnitude(self) -> str:
        return "+%s" % format_ns(self.extra)


@dataclass
class JitterFault(FaultSpec):
    """Uniform random per-packet jitter in ``[0, amplitude)`` ns.

    Overlapping jitter faults draw independently and add.
    """

    kind = "jitter"

    amplitude: int = 100_000

    def _validate_magnitude(self) -> None:
        if self.amplitude <= 0:
            raise ConfigError("jitter fault amplitude must be positive")

    def _describe_magnitude(self) -> str:
        return "±%s" % format_ns(self.amplitude)


@dataclass
class LossFault(FaultSpec):
    """Random packet loss on matched pipes.

    Overlapping loss faults compose like independent lossy segments:
    ``1 - ∏(1 - pᵢ)``.
    """

    kind = "loss"

    prob: float = 0.01

    def _validate_magnitude(self) -> None:
        if not 0.0 < self.prob <= 1.0:
            raise ConfigError("loss fault prob must be in (0, 1]")

    def _describe_magnitude(self) -> str:
        return "p=%g" % self.prob


@dataclass
class ThrottleFault(FaultSpec):
    """Cap matched pipes' bandwidth (overlaps take the tightest cap).

    The throttle never speeds a link up: the effective wire speed is
    ``min(configured, cap)``.
    """

    kind = "throttle"

    bandwidth_bps: int = 1_000_000_000

    def _validate_magnitude(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError("throttle fault bandwidth must be positive")

    def _describe_magnitude(self) -> str:
        return "%.0fMbps" % (self.bandwidth_bps / 1e6)


@dataclass
class ServerSlowdownFault(FaultSpec):
    """Multiply matched servers' service time (overlaps multiply).

    Models heterogeneous / dynamically degrading server performance
    (KnapsackLB's motivating regime) without touching the network.
    """

    kind = "slowdown"

    factor: float = 4.0

    def _validate_magnitude(self) -> None:
        if self.factor <= 0:
            raise ConfigError("slowdown fault factor must be positive")

    def _describe_magnitude(self) -> str:
        return "x%g" % self.factor


@dataclass
class ServerPauseFault(FaultSpec):
    """Stop-the-world pause: matched servers hold requests, then drain.

    The in-flight work already admitted keeps completing; requests that
    arrive during the pause are processed (in order) at resume — the
    shape of a GC or compaction stall (§2.2) at whole-server scale.
    """

    kind = "pause"

    def _describe_magnitude(self) -> str:
        return "stall"


@dataclass
class PartitionFault(FaultSpec):
    """Network partition: every pipe touching a matched node goes dark.

    The node glob is matched against *both endpoints* of every pipe in
    the fabric, so partitioning ``server0`` cuts the LB→server0 path,
    server0's direct return paths to every client, and any prober pipes
    — both directions, which is what distinguishes a partition from a
    lossy or throttled path.  The process itself keeps running: requests
    already admitted complete into a void, health probes time out, and
    the in-band signal goes silent rather than degraded — the
    fail-silent half of the gray-failure space.

    ``direction`` is ignored (a partition has no direction).
    """

    kind = "partition"

    def _describe_magnitude(self) -> str:
        return "cut"


@dataclass
class CrashRestartFault(FaultSpec):
    """Backend crash: matched backends leave the pool, then return.

    Rides the same machinery churn and health checking drive
    (``BackendPool.set_healthy``), so the Maglev table rebuilds and
    established flows keep their affinity exactly as they would for a
    failed health probe.  Crashing an already-unhealthy backend is a
    no-op, and such a window never "revives" a backend some other
    subsystem took down.
    """

    kind = "crash"

    def _describe_magnitude(self) -> str:
        return "down"


#: Fault classes that target pipes (selector direction is meaningful).
PIPE_FAULTS: Tuple[type, ...] = (DelayFault, JitterFault, LossFault, ThrottleFault)
#: Fault classes that target servers/backends (direction is ignored).
SERVER_FAULTS: Tuple[type, ...] = (
    ServerSlowdownFault,
    ServerPauseFault,
    CrashRestartFault,
)

#: Fault classes that cut whole nodes out of the fabric (direction and
#: pipe/server distinction are both ignored; the node glob is matched
#: against every pipe endpoint).
TOPOLOGY_FAULTS: Tuple[type, ...] = (PartitionFault,)

#: kind string → fault class, for parsers and presets.
FAULT_KINDS = {
    cls.kind: cls for cls in PIPE_FAULTS + SERVER_FAULTS + TOPOLOGY_FAULTS
}


def replace_window(fault: FaultSpec, start: int, duration: Optional[int]) -> FaultSpec:
    """Copy ``fault`` with a different one-shot window (drops recurrence)."""
    values = {f.name: getattr(fault, f.name) for f in fields(fault)}
    values.update(start=start, duration=duration, period=None)
    return type(fault)(**values)


def replace_fields(fault: FaultSpec, **overrides: object) -> FaultSpec:
    """Copy ``fault`` with some dataclass fields replaced."""
    values = {f.name: getattr(fault, f.name) for f in fields(fault)}
    values.update(overrides)
    return type(fault)(**values)


def fault_to_dict(fault: FaultSpec) -> dict:
    """Serialize a fault spec to a plain JSON-ready dict (keyed by kind).

    The inverse of :func:`fault_from_dict`; campaign reproducer
    artifacts persist schedules this way so a violation found today can
    be replayed byte-identically tomorrow.
    """
    tree = {"kind": fault.kind}
    for f in fields(fault):
        tree[f.name] = getattr(fault, f.name)
    return tree


def fault_from_dict(tree: dict) -> FaultSpec:
    """Rebuild a fault spec from :func:`fault_to_dict` output."""
    if not isinstance(tree, dict) or "kind" not in tree:
        raise ConfigError("fault dict needs a 'kind' key, got %r" % (tree,))
    kind = tree["kind"]
    try:
        cls = FAULT_KINDS[kind]
    except KeyError:
        raise ConfigError(
            "unknown fault kind %r (expected one of %s)"
            % (kind, ", ".join(sorted(FAULT_KINDS)))
        ) from None
    names = {f.name for f in fields(cls)}
    unknown = sorted(set(tree) - names - {"kind"})
    if unknown:
        raise ConfigError(
            "unknown field(s) %s for %s fault" % (", ".join(unknown), kind)
        )
    fault = cls(**{k: v for k, v in tree.items() if k in names})
    fault.validate()
    return fault
