"""Binding fault schedules to a built topology.

An :class:`Injector` resolves each fault window's target selector
against concrete pipes / servers / pool backends, then schedules
apply/revert callbacks on the simulator.  All composition state lives
here: the injector tracks every active contribution per knob and writes
the *composed* value (baseline + contributions) on each transition, so
overlapping windows revert to the exact pre-fault baseline no matter
which order they expire in.

Every transition is recorded as a :class:`FaultEvent`; runners surface
these (and the armed windows) so reports can annotate latency timelines
with fault windows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.faults.model import (
    CLIENT_TO_LB,
    LB_TO_SERVER,
    SERVER_TO_CLIENT,
    CrashRestartFault,
    DelayFault,
    FaultSpec,
    JitterFault,
    LossFault,
    PartitionFault,
    ServerPauseFault,
    ServerSlowdownFault,
    ThrottleFault,
)
from repro.faults.schedule import FaultSchedule, FaultWindow
from repro.net.network import Network
from repro.net.pipe import Pipe
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness → faults)
    from repro.app.server import ServerApp
    from repro.harness.scenario import Scenario
    from repro.lb.backend import BackendPool


@dataclass(frozen=True)
class FaultEvent:
    """One apply/revert transition the injector executed."""

    time: int
    action: str           # "apply" | "revert"
    kind: str             # fault kind ("delay", "loss", ...)
    target: str           # pipe name or server name
    fault: FaultSpec

    def describe(self) -> str:
        """One-line rendering for traces and reports."""
        return "%12d %-6s %s on %s" % (
            self.time, self.action, self.fault.describe(), self.target
        )


@dataclass(frozen=True)
class ArmedWindow:
    """A fault window bound to its resolved targets (for reports)."""

    window: FaultWindow
    targets: Tuple[str, ...]


class Injector:
    """Applies a :class:`FaultSchedule` to a built deployment.

    Parameters
    ----------
    sim, network:
        The engine to schedule transitions on and the fabric whose pipes
        the pipe faults target.
    server_names / client_names / lb_name:
        The topology roles target selectors resolve against.
    pool:
        Backend pool, required for :class:`CrashRestartFault`.
    servers:
        name → server application, required for slowdown/pause faults.
        Any object with ``set_service_multiplier`` / ``pause`` /
        ``resume`` works.
    loss_rng / jitter_rng:
        Dedicated seeded streams for loss draws and injected jitter,
        required when the schedule contains those fault kinds.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        server_names: Sequence[str],
        client_names: Sequence[str] = (),
        lb_name: str = "lb",
        pool: Optional["BackendPool"] = None,
        servers: Optional[Dict[str, "ServerApp"]] = None,
        loss_rng: Optional[random.Random] = None,
        jitter_rng: Optional[random.Random] = None,
    ):
        self._sim = sim
        self._network = network
        self._server_names = list(server_names)
        self._client_names = list(client_names)
        self._lb_name = lb_name
        self._pool = pool
        self._servers = servers or {}
        self._loss_rng = loss_rng
        self._jitter_rng = jitter_rng

        #: Transitions executed so far, in simulation order.
        self.events: List[FaultEvent] = []
        #: Windows bound at arm time, in activation order.
        self.armed_windows: List[ArmedWindow] = []

        # Composition state: active contributions per knob, plus the
        # baseline captured when the chaos plane first touches a knob.
        self._pipe_delays: Dict[Pipe, List[int]] = {}
        self._pipe_delay_base: Dict[Pipe, int] = {}
        self._pipe_jitters: Dict[Pipe, List[int]] = {}
        self._pipe_losses: Dict[Pipe, List[float]] = {}
        self._pipe_caps: Dict[Pipe, List[int]] = {}
        self._partition_depth: Dict[Pipe, int] = {}
        self._server_factors: Dict[str, List[float]] = {}
        self._pause_depth: Dict[str, int] = {}
        self._crash_depth: Dict[str, int] = {}
        self._crash_owned: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_scenario(cls, scenario: "Scenario") -> "Injector":
        """Bind to a :func:`~repro.harness.scenario.build_scenario` result."""
        config = scenario.config
        return cls(
            scenario.sim,
            scenario.network,
            server_names=[
                config.server_name(i) for i in range(config.n_servers)
            ],
            client_names=[
                config.client_name(i) for i in range(config.n_clients)
            ],
            lb_name="lb",
            pool=scenario.pool,
            servers={app.host.name: app for app in scenario.servers},
            loss_rng=scenario.streams.get("faults.loss"),
            jitter_rng=scenario.streams.get("faults.jitter"),
        )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self, schedule: FaultSchedule, horizon: int) -> None:
        """Resolve targets and schedule every window's transitions.

        Raises :class:`ConfigError` when a fault matches nothing (a
        selector typo should fail the build, not silently do nothing).
        """
        for window in schedule.windows(horizon):
            targets = self._resolve(window.fault)
            names = tuple(self._target_name(t) for t in targets)
            self.armed_windows.append(ArmedWindow(window, names))
            self._sim.schedule_fire_at(
                window.start,
                lambda w=window, t=targets: self._transition(w, t, apply=True),
            )
            if window.end is not None:
                self._sim.schedule_fire_at(
                    window.end,
                    lambda w=window, t=targets: self._transition(w, t, apply=False),
                )

    def _resolve(self, fault: FaultSpec) -> List[object]:
        if isinstance(fault, (ServerSlowdownFault, ServerPauseFault)):
            names = [n for n in self._server_names if fault.matches(n)]
            missing = [n for n in names if n not in self._servers]
            if missing:
                raise ConfigError(
                    "%s fault targets servers with no bound application: %s"
                    % (fault.kind, ", ".join(missing))
                )
            if not names:
                raise ConfigError(
                    "%s fault matches no server (glob %r)" % (fault.kind, fault.node)
                )
            return [self._servers[n] for n in names]
        if isinstance(fault, CrashRestartFault):
            if self._pool is None:
                raise ConfigError("crash fault needs a backend pool")
            names = [n for n in self._server_names if fault.matches(n)]
            if not names:
                raise ConfigError(
                    "crash fault matches no backend (glob %r)" % fault.node
                )
            return names
        if isinstance(fault, PartitionFault):
            # A partition has no direction: every pipe with a matched
            # endpoint goes dark, both ways (including prober pipes).
            pipes = [
                pipe
                for (src, dst), pipe in sorted(self._network.pipes().items())
                if fault.matches(src) or fault.matches(dst)
            ]
            if not pipes:
                raise ConfigError(
                    "partition fault matches no pipe endpoint (glob %r)"
                    % fault.node
                )
            return pipes
        # Pipe faults.
        if isinstance(fault, LossFault) and self._loss_rng is None:
            raise ConfigError("loss fault needs a loss RNG stream")
        if isinstance(fault, JitterFault) and self._jitter_rng is None:
            raise ConfigError("jitter fault needs a jitter RNG stream")
        if fault.direction == LB_TO_SERVER:
            keys = [
                (self._lb_name, s)
                for s in self._server_names
                if fault.matches(s)
            ]
        elif fault.direction == CLIENT_TO_LB:
            keys = [
                (c, self._lb_name)
                for c in self._client_names
                if fault.matches(c)
            ]
        elif fault.direction == SERVER_TO_CLIENT:
            keys = [
                (s, c)
                for s in self._server_names
                if fault.matches(s)
                for c in self._client_names
            ]
        else:  # pragma: no cover - validate() rejects unknown directions
            raise ConfigError("unknown direction %r" % fault.direction)
        pipes = [
            self._network.pipe(src, dst)
            for src, dst in keys
            if self._network.has_pipe(src, dst)
        ]
        if not pipes:
            raise ConfigError(
                "%s fault matches no %s pipe (glob %r)"
                % (fault.kind, fault.direction, fault.node)
            )
        return pipes

    @staticmethod
    def _target_name(target: object) -> str:
        if isinstance(target, Pipe):
            return target.name
        if isinstance(target, str):
            return target
        return target.host.name  # a server application

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def _transition(
        self, window: FaultWindow, targets: List[object], apply: bool
    ) -> None:
        fault = window.fault
        for target in targets:
            if isinstance(fault, DelayFault):
                self._shift_delay(target, fault.extra, apply)
            elif isinstance(fault, JitterFault):
                self._shift_jitter(target, fault.amplitude, apply)
            elif isinstance(fault, LossFault):
                self._shift_loss(target, fault.prob, apply)
            elif isinstance(fault, ThrottleFault):
                self._shift_cap(target, fault.bandwidth_bps, apply)
            elif isinstance(fault, PartitionFault):
                self._shift_partition(target, apply)
            elif isinstance(fault, ServerSlowdownFault):
                self._shift_factor(target, fault.factor, apply)
            elif isinstance(fault, ServerPauseFault):
                self._shift_pause(target, apply)
            elif isinstance(fault, CrashRestartFault):
                self._shift_crash(target, apply)
            else:  # pragma: no cover - schedule validates entry types
                raise ConfigError("unhandled fault type %r" % type(fault))
            self.events.append(
                FaultEvent(
                    time=self._sim.now,
                    action="apply" if apply else "revert",
                    kind=fault.kind,
                    target=self._target_name(target),
                    fault=fault,
                )
            )

    def _shift_delay(self, pipe: Pipe, extra: int, apply: bool) -> None:
        active = self._pipe_delays.setdefault(pipe, [])
        if not active and apply:
            self._pipe_delay_base[pipe] = pipe.extra_delay
        if apply:
            active.append(extra)
        else:
            active.remove(extra)
        pipe.set_extra_delay(self._pipe_delay_base[pipe] + sum(active))

    def _shift_jitter(self, pipe: Pipe, amplitude: int, apply: bool) -> None:
        active = self._pipe_jitters.setdefault(pipe, [])
        if apply:
            active.append(amplitude)
        else:
            active.remove(amplitude)
        if active:
            rng = self._jitter_rng
            amps = tuple(active)
            pipe.set_extra_jitter(
                lambda: sum(rng.randrange(amp) for amp in amps)
            )
        else:
            pipe.set_extra_jitter(None)

    def _shift_loss(self, pipe: Pipe, prob: float, apply: bool) -> None:
        active = self._pipe_losses.setdefault(pipe, [])
        if apply:
            active.append(prob)
        else:
            active.remove(prob)
        passthrough = 1.0
        for p in active:
            passthrough *= 1.0 - p
        pipe.set_drop_prob(1.0 - passthrough, self._loss_rng)

    def _shift_cap(self, pipe: Pipe, cap: int, apply: bool) -> None:
        active = self._pipe_caps.setdefault(pipe, [])
        if apply:
            active.append(cap)
        else:
            active.remove(cap)
        pipe.set_bandwidth_override(min(active) if active else None)

    def _shift_partition(self, pipe: Pipe, apply: bool) -> None:
        depth = self._partition_depth.get(pipe, 0)
        depth += 1 if apply else -1
        self._partition_depth[pipe] = depth
        pipe.set_partitioned(depth > 0)

    def _shift_factor(self, server: "ServerApp", factor: float, apply: bool) -> None:
        name = server.host.name
        active = self._server_factors.setdefault(name, [])
        if apply:
            active.append(factor)
        else:
            active.remove(factor)
        product = 1.0
        for f in active:
            product *= f
        server.set_service_multiplier(product)

    def _shift_pause(self, server: "ServerApp", apply: bool) -> None:
        name = server.host.name
        depth = self._pause_depth.get(name, 0)
        if apply:
            if depth == 0:
                server.pause()
            self._pause_depth[name] = depth + 1
        else:
            self._pause_depth[name] = depth - 1
            if self._pause_depth[name] == 0:
                server.resume()

    def _shift_crash(self, name: str, apply: bool) -> None:
        assert self._pool is not None
        depth = self._crash_depth.get(name, 0)
        app = self._servers.get(name)
        if apply:
            if depth == 0:
                # A crash on an already-down backend is a no-op — and the
                # matching restart must not revive what it didn't kill.
                backend = self._pool.get(name) if name in self._pool else None
                owned = backend is not None and backend.healthy
                self._crash_owned[name] = owned
                if owned:
                    self._pool.set_healthy(name, False)
                if owned and app is not None and hasattr(app, "crash"):
                    # Kill the process too: the listener goes dark and
                    # in-flight requests vanish, so clients and health
                    # probes see real silence, not just a pool flag.
                    app.crash()
            self._crash_depth[name] = depth + 1
        else:
            self._crash_depth[name] = depth - 1
            if self._crash_depth[name] == 0 and self._crash_owned.get(name):
                self._crash_owned[name] = False
                if app is not None and hasattr(app, "restart"):
                    app.restart()
                if name in self._pool:
                    self._pool.set_healthy(name, True)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def active_at(self, time: int) -> List[ArmedWindow]:
        """Armed windows covering ``time`` (for timeline annotation)."""
        return [a for a in self.armed_windows if a.window.covers(time)]

    def timeline(self) -> str:
        """Multi-line rendering of every executed transition."""
        return "\n".join(event.describe() for event in self.events)
