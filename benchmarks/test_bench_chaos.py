"""CHAOS — Maglev vs in-band feedback under the chaos-plane presets.

The paper's Fig 3 stimulus is a single step fault; the chaos plane asks
the same question under richer disturbances.  Each preset runs twice
(same seed, same fault schedule) differing only in the LB policy:

* ``flapping_server`` — server0 repeatedly slows 8× and recovers; the
  control loop must keep re-converging (and releasing) as the fault
  flaps.
* ``lossy_path`` — 2% random loss on LB→server0; retransmission delays
  inflate that path's true latency and the measurement plane's packet
  gaps.
* ``correlated_burst`` — delay+jitter+loss on *every* path at once; no
  routing decision helps, so both arms should degrade comparably (the
  symmetric-fault control case).

Together the presets exercise four distinct fault kinds (slowdown,
loss, delay, jitter) end-to-end.  The report lands in
``benchmarks/reports/chaos.txt``.
"""

from conftest import scrub_wallclock, write_report

from repro.faults import preset
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.telemetry.quantiles import exact_quantile
from repro.units import SECONDS, to_millis

DURATION = 3 * SECONDS
SEED = 21


def _run(preset_name, policy):
    config = ScenarioConfig(
        seed=SEED,
        duration=DURATION,
        n_servers=2,
        policy=policy,
        faults=preset(preset_name, DURATION),
        warmup=DURATION // 10,
    )
    return run_scenario(config)


def _faulted_quantile(result, q):
    """Latency quantile from the first fault onset (plus settle) to run end."""
    onset = min(start for _k, _t, start, _e in result.fault_windows())
    values = result.latencies(start=onset + DURATION // 8)
    return exact_quantile(values, q) if values else None


def _fmt(value):
    return "-" if value is None else "%.3f" % to_millis(value)


def test_chaos_presets(benchmark):
    def run_all():
        out = {}
        for name in ("flapping_server", "lossy_path", "correlated_burst"):
            out[name] = {
                policy.value: _run(name, policy)
                for policy in (PolicyName.MAGLEV, PolicyName.FEEDBACK)
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    tails = {}
    for name, arms in results.items():
        tails[name] = {
            policy: (
                _faulted_quantile(result, 0.95),
                _faulted_quantile(result, 0.99),
            )
            for policy, result in arms.items()
        }
        kinds = sorted(
            {k for k, _t, _s, _e in arms["maglev"].fault_windows()}
        )
        rows.append(
            (
                name,
                "+".join(kinds),
                _fmt(tails[name]["maglev"][0]),
                _fmt(tails[name]["feedback"][0]),
                _fmt(tails[name]["maglev"][1]),
                _fmt(tails[name]["feedback"][1]),
                len(arms["feedback"].shift_times()),
            )
        )
    table = format_table(
        (
            "preset",
            "fault kinds",
            "maglev p95",
            "feedback p95",
            "maglev p99",
            "feedback p99",
            "fb shifts",
        ),
        rows,
    )
    detail = "\n\n".join(
        "--- %s / %s ---\n%s" % (name, policy, result.report(deterministic=True))
        for name, arms in results.items()
        for policy, result in arms.items()
    )
    text = scrub_wallclock(table + "\n\n" + detail)
    # Regeneration cleanliness: nothing host-dependent may survive into
    # the persisted report, so a re-run on any machine is byte-identical.
    assert "wall-clock" not in text
    write_report("chaos", text)

    # Asymmetric faults: the feedback LB routes around the bad backend.
    # A flapping 8x slowdown hits half the requests (moves p95); 2% loss
    # hits only retransmitting requests (moves p99).
    assert tails["flapping_server"]["feedback"][0] < tails["flapping_server"]["maglev"][0]
    assert tails["lossy_path"]["feedback"][1] < tails["lossy_path"]["maglev"][1]

    # The chaos benchmark exercises >= 4 distinct fault kinds.
    exercised = {
        kind
        for arms in results.values()
        for kind, _t, _s, _e in arms["maglev"].fault_windows()
    }
    assert len(exercised) >= 4
