"""PERF-MAGLEV — dataplane microbenchmarks.

Timing distributions for the pieces on (or near) the per-packet path:
Maglev table construction (control-plane cost of each weight shift),
lookups, conntrack operations, and the measurement-plane per-packet
work (FIXEDTIMEOUT and the 7-timeout ENSEMBLETIMEOUT).
"""

import random

from repro.core.ensemble import EnsembleTimeout
from repro.core.fixed_timeout import FixedTimeout
from repro.lb.conntrack import ConnTrack
from repro.lb.maglev import MaglevTable
from repro.net.addr import FlowKey
from repro.units import MICROSECONDS


class TestMaglevConstruction:
    def test_build_65537_slots_10_backends(self, benchmark):
        table = MaglevTable(65_537)
        weights = {"backend-%d" % i: 1.0 for i in range(10)}
        benchmark(table.build, weights)
        assert sum(table.slot_counts().values()) == 65_537

    def test_build_65537_slots_100_backends(self, benchmark):
        table = MaglevTable(65_537)
        weights = {"backend-%d" % i: 1.0 + (i % 7) for i in range(100)}
        benchmark(table.build, weights)
        assert sum(table.slot_counts().values()) == 65_537

    def test_rebuild_after_weight_shift_1021(self, benchmark):
        """The controller's actual rebuild cost at the scenario table size."""
        table = MaglevTable(1021)
        weights = {"s0": 1.0, "s1": 1.0}

        def shift_and_rebuild():
            weights["s0"] = 1.8 if weights["s0"] == 1.0 else 1.0
            weights["s1"] = 3.0 - weights["s0"]
            table.build(weights)

        benchmark(shift_and_rebuild)


class TestLookupPath:
    def test_maglev_lookup(self, benchmark):
        table = MaglevTable(65_537)
        table.build({"backend-%d" % i: 1.0 for i in range(10)})
        benchmark(table.lookup, 12_345_678)

    def test_maglev_lookup_flow_string(self, benchmark):
        table = MaglevTable(65_537)
        table.build({"backend-%d" % i: 1.0 for i in range(10)})
        benchmark(table.lookup_flow, "client:48211->vip:11211")

    def test_conntrack_hit(self, benchmark):
        track = ConnTrack()
        flows = [FlowKey("c", 40_000 + i, "vip", 80) for i in range(10_000)]
        for flow in flows:
            track.insert(flow, "s0", now=0)
        benchmark(track.lookup, flows[5_000], 1000)

    def test_conntrack_insert(self, benchmark):
        track = ConnTrack()
        counter = iter(range(100_000_000))

        def insert():
            track.insert(FlowKey("c", next(counter), "vip", 80), "s0", 0)

        benchmark(insert)


class TestMeasurementPath:
    def test_fixed_timeout_observe(self, benchmark):
        ft = FixedTimeout(64 * MICROSECONDS)
        rng = random.Random(1)
        clock = iter(range(0, 10**15, 50 * MICROSECONDS))
        benchmark(lambda: ft.observe(next(clock)))

    def test_ensemble_observe_seven_timeouts(self, benchmark):
        """The full Algorithm 2 per-packet cost (k = 7 FIXEDTIMEOUTs)."""
        ensemble = EnsembleTimeout()
        clock = iter(range(0, 10**15, 50 * MICROSECONDS))
        benchmark(lambda: ensemble.observe(next(clock)))
