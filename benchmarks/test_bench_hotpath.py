"""PERF-HOTPATH — the three per-packet layers, isolated.

Microbenches for the fused ENSEMBLETIMEOUT observe (O(log k) prefix
roll vs the naive k-instance loop) and the pipe delivery pump
(one outstanding engine event per pipe vs one per packet in flight).
Writes ``reports/hotpath.txt`` with the measured ratios and records
throughputs into ``BENCH_engine.json`` for the CI perf gate.
"""

from conftest import record_perf, write_report
from hotpath_cases import (
    make_gap_trace,
    run_ensemble_observe,
    run_pipe_stream,
    run_pipe_stream_slab,
)


def _best_of(runs, runner, *args, **kwargs):
    results = [runner(*args, **kwargs) for _ in range(runs)]
    return min(results, key=lambda r: r[1] / r[0])


class TestEnsembleObserve:
    def test_fused_observe_100k_packets(self, benchmark):
        trace = make_gap_trace()

        def run():
            return run_ensemble_observe(trace, fused=True)[0]

        assert benchmark(run) == len(trace)

    def test_naive_observe_100k_packets(self, benchmark):
        trace = make_gap_trace()

        def run():
            return run_ensemble_observe(trace, fused=False)[0]

        assert benchmark(run) == len(trace)


class TestPipeSend:
    def test_pipe_pump_10x1k_packets(self, benchmark):
        def run():
            return run_pipe_stream()[0]

        assert benchmark(run) == 10_000

    def test_pipe_slab_5x10k_packets(self, benchmark):
        def run():
            return run_pipe_stream_slab()[0]

        assert benchmark(run) == 50_000


def test_hotpath_report():
    """Record fused-vs-naive and pipe throughput; render the report."""
    trace = make_gap_trace()
    fused_n, fused_s = _best_of(5, run_ensemble_observe, trace, fused=True)
    naive_n, naive_s = _best_of(3, run_ensemble_observe, trace, fused=False)
    pipe_n, pipe_s, pipe_peak = _best_of(5, run_pipe_stream)
    slab_n, slab_s, slab_peak = _best_of(5, run_pipe_stream_slab)

    fused = record_perf("ensemble_observe_fused_100k", fused_n, fused_s)
    naive = record_perf("ensemble_observe_naive_100k", naive_n, naive_s)
    pipe = record_perf(
        "pipe_pump_10x1k", pipe_n, pipe_s, peak_queue_depth=pipe_peak
    )
    slab = record_perf(
        "pipe_slab_5x10k", slab_n, slab_s, peak_queue_depth=slab_peak
    )

    speedup = fused["events_per_sec"] / naive["events_per_sec"]
    lines = [
        "hot-path microbenchmarks (best-of-N wall clock)",
        "",
        "ensemble observe, 100k packets, paper ladder (k=7):",
        "  fused (O(log k) prefix roll): %12.0f obs/sec" % fused["events_per_sec"],
        "  naive (k-instance loop):      %12.0f obs/sec" % naive["events_per_sec"],
        "  speedup: %.2fx" % speedup,
        "",
        "pipe send+deliver, 10 waves x 1k packets, 10 Gb/s wire:",
        "  delivery pump:                %12.0f pkts/sec" % pipe["events_per_sec"],
        "  engine peak queue depth:      %12d (one event per pipe)"
        % pipe["peak_queue_depth"],
        "",
        "slab pipe, 5 waves x 10k packets, batch seams + bulk drain:",
        "  vectorized delivery:          %12.0f pkts/sec" % slab["events_per_sec"],
        "  engine peak queue depth:      %12d (one event per pipe)"
        % slab["peak_queue_depth"],
    ]
    write_report("hotpath", "\n".join(lines))
    # The fused path must beat the naive loop decisively; the pump must
    # hold the heap at O(pipes), not O(packets in flight); the slab
    # batch seams must beat the per-packet object pump.
    assert speedup > 1.5
    assert pipe["peak_queue_depth"] < 50
    assert slab["peak_queue_depth"] < 50
    assert slab["events_per_sec"] > pipe["events_per_sec"]
