"""PERF-ENGINE — simulator throughput.

Event-loop rates bound how much virtual time the experiment harness can
afford; these benches keep regressions visible.  The fire-path and
handle-path schedule+drain benches also record their events/sec into
``benchmarks/BENCH_engine.json`` (see ``conftest.record_perf``), which
is the baseline the CI ``perf-smoke`` job gates against.
"""

from conftest import record_perf
from hotpath_cases import (
    run_engine_fire_events,
    run_engine_handle_events,
    run_engine_run_lane,
)

from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.pipe import Pipe
from repro.sim.engine import Simulator, Timer
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS


class TestEventLoop:
    def test_schedule_and_drain_10k_events(self, benchmark):
        def run():
            sim = Simulator()
            sink = []
            for i in range(10_000):
                sim.schedule(i, lambda: sink.append(None))
            sim.run()
            return len(sink)

        assert benchmark(run) == 10_000

    def test_schedule_fire_and_drain_10k_events(self, benchmark):
        """The fire-and-forget fast path (no EventHandle allocation)."""

        def run():
            sim = Simulator()
            sink = []
            for i in range(10_000):
                sim.schedule_fire(i, lambda: sink.append(None))
            sim.run()
            return len(sink)

        assert benchmark(run) == 10_000

    def test_timer_restart_churn(self, benchmark):
        sim = Simulator()
        timer = Timer(sim, lambda: None)

        def restart():
            timer.start(1_000_000)

        benchmark(restart)

    def test_cancelled_event_tombstones(self, benchmark):
        def run():
            sim = Simulator()
            handles = [sim.schedule(i, lambda: None) for i in range(5_000)]
            for handle in handles[::2]:
                handle.cancel()
            sim.run()
            return sim.events_processed

        assert benchmark(run) == 2_500

    def test_timer_rearm_does_not_grow_heap(self, benchmark):
        """Restartable-timer churn: compaction keeps the heap bounded."""

        def run():
            sim = Simulator()
            timer = Timer(sim, lambda: None)
            for _ in range(10_000):
                timer.start(1_000_000)
            sim.run()
            return sim.peak_queue_depth

        # Without tombstone compaction the peak would be ~10_000.
        assert benchmark(run) < 200


class TestRecordedBaseline:
    """Best-of-5 throughput snapshots written to BENCH_engine.json."""

    def _record(self, name, runner):
        runs = [runner() for _ in range(5)]
        events, seconds = min(runs, key=lambda r: r[1] / r[0])
        return record_perf(name, events, seconds)

    def test_record_engine_events_per_sec(self):
        entry = self._record("engine_fire_10k", run_engine_fire_events)
        assert entry["events_per_sec"] > 0

    def test_record_engine_handle_events_per_sec(self):
        entry = self._record("engine_handle_10k", run_engine_handle_events)
        assert entry["events_per_sec"] > 0

    def test_record_engine_run_lane_per_sec(self):
        """Raw dispatch ceiling: a 1M-event sorted column, no heap."""
        entry = self._record("engine_run_lane_1m", run_engine_run_lane)
        assert entry["events_per_sec"] > 0


class TestPacketPath:
    def test_pipe_transit_1k_packets(self, benchmark):
        def run():
            sim = Simulator()
            pipe = Pipe(
                sim,
                "bench",
                prop_delay=10 * MICROSECONDS,
                bandwidth_bps=10 * GIGABITS_PER_SECOND,
            )
            delivered = []
            pipe.connect(lambda pkt: delivered.append(pkt))
            src, dst = Endpoint("a", 1), Endpoint("b", 2)
            for _ in range(1_000):
                pipe.send(Packet(src=src, dst=dst, payload_len=100))
            sim.run()
            return len(delivered)

        assert benchmark(run) == 1_000

    def test_network_routed_send(self, benchmark):
        sim = Simulator()
        network = Network(sim)

        class Sink:
            name = "sink"

            def on_packet(self, packet):
                pass

        class Source:
            name = "source"

            def on_packet(self, packet):
                pass

        network.add_node(Source())
        network.add_node(Sink())
        network.connect("source", "sink", prop_delay=0)
        network.set_default_route("source", "sink")
        src, dst = Endpoint("source", 1), Endpoint("sink", 2)

        def send_and_drain():
            network.send_from("source", Packet(src=src, dst=dst))
            sim.run()

        benchmark(send_and_drain)
