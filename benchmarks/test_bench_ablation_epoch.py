"""ABL-EPOCH — sweep ENSEMBLETIMEOUT's epoch length E (paper: 64 ms).

Short epochs adapt fast but pick cliffs from few samples; long epochs
are smooth but stale across RTT changes.  The paper's 64 ms sits in the
flat middle of the tracking-error curve.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_epoch
from repro.harness.figures import BacklogConfig
from repro.units import MILLISECONDS, SECONDS


def test_epoch_sweep(benchmark):
    backlog = BacklogConfig(duration=2 * SECONDS, step_at=1 * SECONDS)
    rows = benchmark.pedantic(
        lambda: sweep_epoch(epochs_ms=(8, 16, 32, 64, 128, 256), backlog=backlog),
        rounds=1,
        iterations=1,
    )
    write_report("ablation_epoch", rows_to_table(rows))

    by_epoch = {row["epoch_ms"]: row for row in rows}
    # The paper's default must track on both sides of the step.
    assert float(by_epoch[64]["err_pre"]) < 0.3
    assert float(by_epoch[64]["err_post"]) < 0.3
    # Epoch count scales inversely with length.
    assert by_epoch[8]["epochs"] > by_epoch[256]["epochs"]
