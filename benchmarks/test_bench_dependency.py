"""Open question #3 — slow frontends vs slow dependencies.

Runs the two-tier scenario twice with the same 1 ms fault landing in
different places.  A frontend fault separates the per-backend estimates
and shifting fixes the tail; a dependency fault inflates every backend's
estimate together — shifting is futile, and the small worst−best gap is
exactly the signal an LB could use to recognize it (the answer this
substrate enables exploring).
"""

from conftest import write_report

from repro.app.client import MemtierConfig
from repro.harness.report import format_table
from repro.harness.tiered import TieredScenarioConfig, run_tiered
from repro.telemetry.quantiles import exact_quantile
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS, to_micros


def _row(result):
    config = result.config
    pre = [
        r.latency for r in result.client.records if r.completed_at < config.fault_at
    ]
    post = [
        r.latency
        for r in result.client.records
        if r.completed_at > config.fault_at + config.duration // 8
    ]
    gap = result.estimate_gap()
    return (
        config.fault,
        "%.0f" % to_micros(exact_quantile(pre, 0.95)),
        "%.0f" % to_micros(exact_quantile(post, 0.95)),
        "-" if gap is None else "%.0f" % to_micros(gap),
        result.shifts_after_fault(),
    )


def test_dependency_vs_frontend_fault(benchmark):
    memtier = MemtierConfig(connections=2, pipeline=2, requests_per_connection=100)

    def run_both():
        rows = []
        for fault in ("frontend", "dependency"):
            config = TieredScenarioConfig(
                duration=1 * SECONDS, fault=fault, memtier=memtier
            )
            rows.append(_row(run_tiered(config)))
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        (
            "fault location",
            "pre-fault p95 (us)",
            "post-fault p95 (us)",
            "worst-best estimate gap (us)",
            "shifts after fault",
        ),
        rows,
    )
    write_report("dependency_fault", table)

    by_fault = {row[0]: row for row in rows}
    # Frontend fault: estimates separate by ~the fault size...
    assert float(by_fault["frontend"][3]) > 500
    # ...and the tail stays controlled (shifting works).
    assert float(by_fault["frontend"][2]) < float(by_fault["frontend"][1]) * 2
    # Dependency fault: common-mode — small gap, inflated tail regardless.
    assert float(by_fault["dependency"][3]) < 500
    assert float(by_fault["dependency"][2]) > float(by_fault["dependency"][1]) + 400
