"""INSIGHT — flight-recorder overhead and the Fig 3 causal narration.

Two questions, one paper-scale run each way:

* **Cost of always-on recording.**  The insight plane is meant to stay
  armed in every experiment, so its overhead must be small and its
  presence invisible to the simulation.  The same Fig 3 stimulus runs
  with the recorder off and on; the run must stay *byte-identical*
  (same records, same shifts — the tier-1 guarantee, re-asserted at
  bench scale) and the report records the wall-clock cost of the armed
  run next to the disarmed one.
* **The regenerable narration.**  The armed run's first post-fault
  shift is explained from the timeline and persisted, so
  ``benchmarks/reports/insight.txt`` carries the paper's causal story
  (sample → estimate → decision → fault) in regenerable form.
"""

from conftest import write_report

from repro.faults import DelayFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.insight import InsightConfig, explain_shift
from repro.units import MILLISECONDS, SECONDS

DURATION = 3 * SECONDS
INJECT_AT = DURATION // 2
SEED = 21


def _config(insight_enabled):
    return ScenarioConfig(
        seed=SEED,
        duration=DURATION,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        insight=InsightConfig(enabled=insight_enabled),
        faults=[
            DelayFault(start=INJECT_AT, node="server0", extra=MILLISECONDS)
        ],
        warmup=DURATION // 10,
    )


def _record_key(record):
    # request_id is a process-global counter, not simulation state.
    return (
        record.sent_at,
        record.completed_at,
        record.latency,
        record.server,
        record.op,
        record.local_port,
    )


def test_insight_recorder_overhead(benchmark):
    def run_both():
        return {
            "off": run_scenario(_config(False)),
            "on": run_scenario(_config(True)),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    off, on = results["off"], results["on"]

    # The recorder is passive: armed and disarmed runs tell one history.
    assert [_record_key(r) for r in off.records] == [
        _record_key(r) for r in on.records
    ]
    assert off.shift_times() == on.shift_times()
    assert off.wall_events == on.wall_events

    # Host-dependent cost goes to stdout only; the persisted report must
    # regenerate byte-identical on any machine.
    overhead = on.wall_seconds / off.wall_seconds - 1.0 if off.wall_seconds else 0.0
    print(
        "recorder overhead: off=%.3fs on=%.3fs (%+.1f%%)"
        % (off.wall_seconds, on.wall_seconds, 100.0 * overhead)
    )

    timeline = on.timeline()
    rows = [
        ("recorder off", off.wall_events, "-", "-", "-"),
        (
            "recorder on",
            on.wall_events,
            len(timeline),
            timeline.dropped,
            len(timeline.annotations),
        ),
    ]
    table = format_table(
        ("arm", "sim events", "frames", "dropped", "annotations"), rows
    )

    shifts = on.scenario.feedback.shift_events()
    post_fault = [i for i, s in enumerate(shifts) if s.time >= INJECT_AT]
    assert post_fault, "the injected delay must provoke a shift"
    narration = explain_shift(on, post_fault[0])
    assert "dominant upstream cause: delay" in narration

    text = "\n\n".join(
        (
            table,
            "--- first post-fault shift, explained from the timeline ---\n"
            + narration,
            on.report(deterministic=True),
        )
    )
    assert "wall-clock" not in text
    write_report("insight", text)
