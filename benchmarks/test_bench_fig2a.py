"""FIG2A — paper Fig 2(a): FIXEDTIMEOUT at fixed δ vs ground truth.

Regenerates the figure's content as a table: for δ = 64 µs and 1024 µs,
the number of samples and the median estimate before and after the RTT
step, against the client-measured truth.  Shape assertions encode the
paper's reading: low δ floods erroneously-low samples; high δ yields few
erroneously-high ones.
"""

from conftest import write_report

from repro.harness.figures import BacklogConfig, run_fig2a
from repro.harness.report import format_table
from repro.units import MICROSECONDS, SECONDS, to_micros


CONFIG = BacklogConfig(duration=3 * SECONDS, step_at=3 * SECONDS // 2)
DELTAS = (64 * MICROSECONDS, 1024 * MICROSECONDS)


def test_fig2a_fixed_timeouts(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2a(CONFIG, deltas=DELTAS), rounds=1, iterations=1
    )

    def fmt(value):
        return "-" if value is None else "%.0f" % to_micros(value)

    rows = []
    for delta in DELTAS:
        pre_count, post_count = result.sample_counts[delta]
        rows.append(
            (
                "T_LB @ delta=%dus" % (delta // MICROSECONDS),
                pre_count,
                fmt(result.median_estimate(delta, False)),
                post_count,
                fmt(result.median_estimate(delta, True)),
            )
        )
    truth_pre = result.median_ground_truth(False)
    truth_post = result.median_ground_truth(True)
    rows.append(
        (
            "T_client (ground truth)",
            sum(1 for t, _v in result.ground_truth.items() if t < CONFIG.step_at),
            fmt(truth_pre),
            sum(1 for t, _v in result.ground_truth.items() if t >= CONFIG.step_at),
            fmt(truth_post),
        )
    )
    table = format_table(
        ("series", "#pre-step", "median pre (us)", "#post-step", "median post (us)"),
        rows,
    )
    write_report("fig2a", table)

    low, high = DELTAS
    # Paper shape (i): the low timeout produces far more samples...
    assert sum(result.sample_counts[low]) > 10 * sum(result.sample_counts[high])
    # ...and, once the RTT has stepped up past it, erroneously low ones.
    assert result.median_estimate(low, True) < truth_post / 2
    # Paper shape (ii): the high timeout's few samples are erroneously high.
    est_high_pre = result.median_estimate(high, False)
    assert est_high_pre is None or est_high_pre > 2 * truth_pre
