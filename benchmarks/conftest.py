"""Benchmark-suite helpers.

Scenario benches run exactly once (``benchmark.pedantic(rounds=1)``) —
they are deterministic simulations, and their value is the *series* they
regenerate, not a timing distribution.  Microbenches (Maglev, engine)
use normal pytest-benchmark statistics.

Every bench writes its paper-style report to ``benchmarks/reports/`` so
the output survives pytest's stdout capture.  Hot-path benches
additionally record a machine-readable perf baseline in
``benchmarks/BENCH_engine.json`` (events/sec, wall seconds, peak queue
depth per bench) via :func:`record_perf`, giving future PRs — and the
CI ``perf-smoke`` gate (``benchmarks/perf_smoke.py``) — a trajectory to
compare against.
"""

from __future__ import annotations

import json
import pathlib

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"
BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_engine.json"


def record_perf(
    bench: str,
    events: int,
    wall_seconds: float,
    peak_queue_depth=None,
) -> dict:
    """Merge one bench's throughput into ``BENCH_engine.json``.

    The file maps bench name → ``{events, wall_seconds, events_per_sec,
    peak_queue_depth}``; entries for benches not re-run are preserved so
    partial runs don't erase the rest of the baseline.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}  # corrupt baseline: rebuild from this run
    entry = {
        "events": events,
        "wall_seconds": round(wall_seconds, 6),
        "events_per_sec": round(events / wall_seconds, 1),
    }
    if peak_queue_depth is not None:
        entry["peak_queue_depth"] = peak_queue_depth
    data[bench] = entry
    tmp = BENCH_JSON.with_suffix(".json.tmp")
    tmp.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(BENCH_JSON)
    return entry


# The scrubber now lives in the report renderer (prefer
# report(deterministic=True)); re-exported here for bench imports.
from repro.harness.report import scrub_wallclock  # noqa: E402,F401


def write_report(name: str, text: str) -> None:
    """Persist a bench's rendered series/table and echo it to stdout."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print("=" * 70)
    print(name)
    print("=" * 70)
    print(text)


def rows_to_table(rows):
    """Render ablation row dicts with the shared table formatter."""
    from repro.harness.report import format_table

    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows])
