"""Benchmark-suite helpers.

Scenario benches run exactly once (``benchmark.pedantic(rounds=1)``) —
they are deterministic simulations, and their value is the *series* they
regenerate, not a timing distribution.  Microbenches (Maglev, engine)
use normal pytest-benchmark statistics.

Every bench writes its paper-style report to ``benchmarks/reports/`` so
the output survives pytest's stdout capture.
"""

from __future__ import annotations

import pathlib

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


def write_report(name: str, text: str) -> None:
    """Persist a bench's rendered series/table and echo it to stdout."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print("=" * 70)
    print(name)
    print("=" * 70)
    print(text)


def rows_to_table(rows):
    """Render ablation row dicts with the shared table formatter."""
    from repro.harness.report import format_table

    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows])
