"""Open question #4 — control-law comparison on the Fig 3 stimulus.

The paper's α-shift rule vs the proportional and AIMD laws from
``repro.controllers``, identical workload and fault.  All three
drain the slow server; they differ in update count and end-state shape.
The full-zoo race lives in ``test_bench_compare.py``.
"""

from conftest import write_report

from repro.app.protocol import Op
from repro.faults.model import DelayFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.telemetry.quantiles import exact_quantile
from repro.units import MILLISECONDS, SECONDS, to_millis


DURATION = 2 * SECONDS
INJECTION_AT = DURATION // 2


def _run(strategy):
    config = ScenarioConfig(
        seed=11,
        duration=DURATION,
        policy=PolicyName.FEEDBACK,
        faults=[
            DelayFault(start=INJECTION_AT, node="server0", extra=1 * MILLISECONDS)
        ],
        warmup=DURATION // 10,
    )
    config.feedback.strategy = strategy
    return run_scenario(config)


def test_strategy_comparison(benchmark):
    strategies = ("alpha", "proportional", "aimd")
    results = benchmark.pedantic(
        lambda: {s: _run(s) for s in strategies}, rounds=1, iterations=1
    )

    rows = []
    for strategy, result in results.items():
        post = result.latencies(Op.GET, INJECTION_AT + DURATION // 8, None)
        weights = result.scenario.pool.weights()
        total = sum(weights.values())
        rows.append(
            (
                strategy,
                len(result.shift_times()),
                "%.3f" % to_millis(exact_quantile(post, 0.95)),
                "%.2f" % (weights["server0"] / total),
            )
        )
    write_report(
        "strategies",
        format_table(
            ("strategy", "weight updates", "post-fault p95 (ms)",
             "final slow-server weight share"),
            rows,
        ),
    )

    for strategy, result in results.items():
        weights = result.scenario.pool.weights()
        share = weights["server0"] / sum(weights.values())
        assert share < 0.35, "%s failed to drain the slow server" % strategy
