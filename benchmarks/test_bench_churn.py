"""§2.5 — membership churn without connection breaking.

Scale out mid-run, drain a backend later; continuous memtier-like load
throughout.  The table reports per-phase new-flow routing; the
assertions encode the §2.5 requirements (affinity never broken, the
newcomer absorbs ≈ its fair share, the drained server finishes its
in-flight connections).
"""

from conftest import write_report

from repro.harness.churn import ChurnConfig, run_churn
from repro.harness.report import format_table
from repro.units import SECONDS


def test_churn(benchmark):
    config = ChurnConfig(duration=2 * SECONDS)
    result = benchmark.pedantic(lambda: run_churn(config), rounds=1, iterations=1)

    backends = ["server%d" % i for i in range(config.n_servers)]
    rows = []
    for phase, counts in (
        ("before scale-out", result.new_flows_before),
        ("after scale-out", result.new_flows_after_scale_out),
        ("after drain of server0", result.new_flows_after_drain),
    ):
        rows.append([phase] + [counts.get(name, 0) for name in backends])
    table = format_table(["phase (new flows)"] + backends, rows)
    extra = (
        "\naffinity violations: %d"
        "\nflows pinned to server0 at drain: %d"
        "\ndraining packets (to out-of-pool server0): %d"
        "\nnewcomer share of new flows after scale-out: %.3f"
        % (
            len(result.affinity_violations),
            result.pinned_at_drain,
            result.scenario.lb.stats.draining_packets,
            result.newcomer_share_after_scale_out(),
        )
    )
    write_report("churn", table + extra)

    assert result.affinity_violations == []
    assert 0.15 < result.newcomer_share_after_scale_out() < 0.55
    assert "server0" not in result.new_flows_after_drain
    # Flows pinned to server0 when it left the pool (if any) kept
    # flowing to it rather than being re-routed mid-connection.
    if result.pinned_at_drain:
        assert result.scenario.lb.stats.draining_packets > 0
