"""FLEET — the elastic scenario at scale (``repro fleet``).

Two arms, both deterministic:

* **scale event** — the headline run: α-shift holding a fleet that
  grows 100 → 1024 backends through a scheduled peak, with target
  tracking filling in around it and a traffic burst at mid-run.  The
  acceptance bar is structural: the fleet reaches four figures and no
  established flow remaps across any scale event.
* **controller race** — the whole zoo through a reduced elastic
  scenario, ranked by oscillations / affinity / time-to-stable (the
  ``repro fleet --controllers all`` leaderboard).

The report lands in ``benchmarks/reports/fleet.txt``; the scale-event
arm also records its engine throughput in ``BENCH_engine.json`` so the
1k-backend path shows up in the perf trajectory.
"""

from conftest import record_perf, write_report

from repro.controllers import available as available_controllers
from repro.harness.elastic import (
    ElasticConfig,
    race_table,
    run_elastic,
    run_elastic_race,
)
from repro.units import SECONDS

SCALE_CONFIG = ElasticConfig(
    duration=1 * SECONDS,
    initial_backends=100,
    max_backends=1024,
)

RACE_CONFIG = ElasticConfig(
    duration=SECONDS // 2,
    initial_backends=8,
    max_backends=32,
    clients=2,
    connections=16,
    maglev_size=257,
)


def test_fleet_scale_event_and_race(benchmark):
    def run_both():
        elastic = run_elastic(SCALE_CONFIG)
        roster = available_controllers()
        rows = run_elastic_race(roster, base=RACE_CONFIG, jobs=2)
        return elastic, roster, rows

    elastic, roster, rows = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    report = elastic.report()
    # The acceptance bar: four figures of backends, zero remapped flows.
    assert elastic.peak_capacity() == SCALE_CONFIG.max_backends
    assert elastic.violations == 0
    assert elastic.new_flows > 0
    assert elastic.fleet.decisions

    # Every controller holds the invariants at reduced scale too.
    assert sorted(row["strategy"] for row in rows) == sorted(roster)
    for row in rows:
        assert row["peak_capacity"] == RACE_CONFIG.max_backends
        assert row["violations"] == 0
        assert row["requests"] > 0

    text = "--- scale event: 100 -> 1024 backends ---\n%s\n\n%s" % (
        report,
        race_table(rows),
    )
    # Sim-derived output only: re-rendering is byte-identical.
    assert "wall-clock" not in text
    assert elastic.report() == report
    write_report("fleet", text)

    record_perf(
        "fleet_elastic_1k",
        events=elastic.result.wall_events,
        wall_seconds=elastic.result.wall_seconds,
        peak_queue_depth=elastic.scenario.sim.peak_queue_depth,
    )
