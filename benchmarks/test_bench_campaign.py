"""CAMPAIGN — the chaos-campaign acceptance run (``repro chaos``).

Fifty seeded fault schedules drawn from the full chaos vocabulary,
cycled across three control laws with the fleet plane armed every
fifth run, every run judged against the complete invariant registry.
This is the robustness claim behind the campaign plane: on known-good
configurations, randomized weather breaks *nothing* — and when it ever
does, the table below is where the violating run (and its shrunk
reproducer) first shows up.

The generator windows close by 50% of the run so the recovery-bound
liveness invariant has runway to be judged (not skipped) at a 1 s run
length.
"""

from conftest import write_report

from repro.campaign import CampaignConfig, GeneratorConfig, run_campaign
from repro.units import MILLISECONDS, SECONDS

CONTROLLERS = ("alpha", "proportional", "gradient")
RUNS = 50


def campaign_config():
    return CampaignConfig(
        seed=1,
        runs=RUNS,
        duration=1 * SECONDS,
        n_servers=3,
        controllers=CONTROLLERS,
        generator=GeneratorConfig(
            onset_min=0.15, onset_max=0.35, window_min=0.05, window_max=0.15
        ),
        recovery_bound=500 * MILLISECONDS,
        fleet_every=5,
    )


def test_campaign_all_invariants_hold(benchmark):
    campaign = benchmark.pedantic(
        lambda: run_campaign(campaign_config()), rounds=1, iterations=1
    )

    # The sweep summary line embeds wall time; persist only the
    # sim-deterministic table and campaign accounting line.
    text = campaign.table() + "\n" + campaign.summary().splitlines()[0]
    write_report("campaign", text)

    assert len(campaign.rows) == RUNS
    fleet_runs = sum(1 for p in campaign.points if p.fleet)
    assert fleet_runs == RUNS // 5
    # Every run was judged by the full registry and served real traffic.
    assert all(row["checks"] == 8 for row in campaign.rows)
    assert all(row["requests"] > 0 for row in campaign.rows)
    # The acceptance claim: zero invariant violations across the lot.
    campaign.raise_if_violated()
