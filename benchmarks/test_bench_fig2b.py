"""FIG2B — paper Fig 2(b): ENSEMBLETIMEOUT tracks the true RTT.

Regenerates the figure as (i) the chosen timeout per epoch over time and
(ii) median T_LB vs median T_client before and after the RTT step.
"""

from conftest import write_report

from repro.harness.figures import BacklogConfig, run_fig2b
from repro.harness.report import format_table
from repro.units import MILLISECONDS, SECONDS, to_micros, to_millis


CONFIG = BacklogConfig(duration=3 * SECONDS, step_at=3 * SECONDS // 2)
SETTLE = 200 * MILLISECONDS


def test_fig2b_ensemble_tracking(benchmark):
    result = benchmark.pedantic(lambda: run_fig2b(CONFIG), rounds=1, iterations=1)

    summary = format_table(
        ("window", "median T_LB (us)", "median T_client (us)", "rel.err"),
        [
            (
                "before step",
                "%.0f" % to_micros(result.median_estimate(False)),
                "%.0f" % to_micros(result.median_ground_truth(False)),
                "%.3f" % result.tracking_error(False),
            ),
            (
                "after step",
                "%.0f" % to_micros(result.median_estimate(True)),
                "%.0f" % to_micros(result.median_ground_truth(True)),
                "%.3f" % result.tracking_error(True),
            ),
        ],
    )
    timeline = format_table(
        ("t (ms)", "chosen delta_m (us)"),
        [
            ("%.0f" % to_millis(t), "%.0f" % to_micros(v))
            for t, v in result.chosen_timeouts.items()
        ],
    )
    write_report("fig2b", summary + "\n\nchosen timeout per epoch:\n" + timeline)

    # The ensemble tracks the truth on both sides of the step.
    assert result.tracking_error(False) < 0.25
    assert result.tracking_error(True) < 0.25

    # And the chosen timeout adapts upward after the step (median choice).
    pre = sorted(
        v for t, v in result.chosen_timeouts.items() if t < CONFIG.step_at
    )
    post = sorted(
        v
        for t, v in result.chosen_timeouts.items()
        if t > CONFIG.step_at + SETTLE
    )
    assert post[len(post) // 2] > pre[len(pre) // 2]
