"""Sweep executor throughput: serial vs parallel vs warm cache.

An 8-point grid (4 α values × 2 seeds, short durations) is run three
ways: serially, fanned out across worker processes, and again against
the warm result store.  The warm rerun must simulate nothing, and the
rows must be byte-identical across all three runs (worker-safe
determinism).  The parallel-speedup assertion only applies on machines
with enough cores to show it — the acceptance target is a 4-core
runner; single-core CI boxes still check correctness.
"""

import os
import time

from conftest import write_report

from repro.harness.config import ScenarioConfig
from repro.harness.report import format_table
from repro.sweep import ResultStore, SweepSpec, canonical_json, run_sweep
from repro.units import MILLISECONDS

CORES = len(os.sched_getaffinity(0))
JOBS = 4
ALPHAS = (0.05, 0.1, 0.2, 0.4)
SEEDS = (3, 11)


def _spec():
    return SweepSpec(
        base=ScenarioConfig(duration=400 * MILLISECONDS),
        grid={"feedback.controller.alpha": list(ALPHAS)},
        seeds=list(SEEDS),
        name="bench",
    )


def test_sweep_parallel_and_cached(benchmark, tmp_path):
    store = ResultStore(tmp_path / "store")

    def run_all():
        t0 = time.perf_counter()
        serial = run_sweep(_spec(), jobs=1)
        t1 = time.perf_counter()
        parallel = run_sweep(_spec(), jobs=JOBS, store=store)
        t2 = time.perf_counter()
        warm = run_sweep(_spec(), jobs=JOBS, store=store)
        t3 = time.perf_counter()
        return {
            "serial": (serial, t1 - t0),
            "parallel": (parallel, t2 - t1),
            "warm": (warm, t3 - t2),
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial, serial_s = runs["serial"]
    parallel, parallel_s = runs["parallel"]
    warm, warm_s = runs["warm"]
    points = len(ALPHAS) * len(SEEDS)

    rows = [
        ("serial (jobs=1)", points, serial.simulated, serial.hits, "%.2f" % serial_s),
        ("parallel (jobs=%d)" % JOBS, points, parallel.simulated, parallel.hits, "%.2f" % parallel_s),
        ("warm cache (jobs=%d)" % JOBS, points, warm.simulated, warm.hits, "%.2f" % warm_s),
    ]
    write_report(
        "sweep",
        format_table(
            ("run", "points", "simulated", "cache hits", "wall (s)"), rows
        )
        + "\ncores available: %d (speedup asserted only at >= 4)" % CORES,
    )

    # Correctness invariants hold on any machine.
    assert serial.simulated == points and serial.hits == 0
    assert parallel.simulated == points and parallel.hits == 0
    assert warm.simulated == 0 and warm.hits == points
    assert canonical_json(serial.rows) == canonical_json(parallel.rows)
    assert canonical_json(serial.rows) == canonical_json(warm.rows)
    assert warm_s < 0.5 * serial_s  # cache hits must not cost simulations

    # The acceptance target: >= 1.67x speedup on a 4-core runner.
    if CORES >= 4:
        assert parallel_s <= 0.6 * serial_s, (
            "parallel sweep took %.2fs vs %.2fs serial on %d cores"
            % (parallel_s, serial_s, CORES)
        )
