"""ABL-ALPHA — sweep the shift fraction α (paper: 10%).

Small α needs many shifts to drain a slow server; large α converges in
one or two.  All drain eventually; the recovery tail differs.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_alpha
from repro.harness.figures import Fig3Config
from repro.units import SECONDS


def test_alpha_sweep(benchmark):
    config = Fig3Config(duration=2 * SECONDS)
    rows = benchmark.pedantic(
        lambda: sweep_alpha(alphas=(0.02, 0.05, 0.10, 0.20, 0.40), fig3=config),
        rounds=1,
        iterations=1,
    )
    write_report("ablation_alpha", rows_to_table(rows))

    by_alpha = {row["alpha"]: row for row in rows}
    # Every α reacts (a first shift exists) ...
    assert all(row["react_ms"] != "-" for row in rows)
    # ... and every α ends with the slow server mostly drained.
    for row in rows:
        assert float(row["slow_server_share"]) < 0.4
