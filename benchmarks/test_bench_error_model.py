"""CLAIM-ERR — §3: ``T_LB − T_client = O3 − O1 + T_trigger``.

On a symmetric jitter-free client↔LB path (O3 = O1) with a serialized
pipeline-1 client, T_trigger equals the configured think time exactly,
so the identity predicts the measured error to the nanosecond scale.
"""

from conftest import write_report

from repro.harness.figures import run_error_decomposition
from repro.harness.report import format_table
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS, to_micros


THINK_TIMES = (0, 100 * MICROSECONDS, 500 * MICROSECONDS, 2 * MILLISECONDS)


def test_error_identity(benchmark):
    def run_all():
        return [
            run_error_decomposition(think, duration=SECONDS // 2)
            for think in THINK_TIMES
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for result in results:
        rows.append(
            (
                "%.0f" % to_micros(result.think_time),
                "%.1f" % to_micros(result.median_t_client),
                "%.1f" % to_micros(result.median_t_lb),
                "%.1f" % to_micros(result.measured_error),
                "%.1f" % to_micros(result.predicted_error),
                "%.1f" % to_micros(result.identity_gap),
            )
        )
    table = format_table(
        (
            "T_trigger=think (us)",
            "median T_client (us)",
            "median T_LB (us)",
            "measured err (us)",
            "predicted err (us)",
            "identity gap (us)",
        ),
        rows,
    )
    write_report("error_model", table)

    for result in results:
        # The identity holds to within a few tens of microseconds
        # (residual = queueing noise), and exactly in shape.
        assert result.identity_gap < 50 * MICROSECONDS
