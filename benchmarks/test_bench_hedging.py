"""§2.2 baseline — timeout-based request duplication vs feedback routing.

One server suffers a bimodal slow mode.  A hedging client cuts its own
tail by duplicating slow requests — at the cost of duplicated work and a
floor of hedge_timeout + RTT on every duplicated request.  The paper's
argument: routing *around* slowness at the LB avoids both costs.
"""

from conftest import write_report

from repro.app.hedging import HedgingClient, HedgingConfig
from repro.app.server import ServerApp, ServerConfig
from repro.app.servicetime import Bimodal
from repro.harness.report import format_table
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.telemetry.quantiles import exact_quantile
from repro.transport.endpoint import Host
from repro.units import (
    GIGABITS_PER_SECOND,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
    to_micros,
)


SLOW_MODEL = Bimodal(
    fast_ns=50 * MICROSECONDS, slow_ns=5 * MILLISECONDS, slow_prob=0.1
)


def _run(hedge_timeout):
    sim = Simulator()
    network = Network(sim)
    streams = RandomStreams(31)
    client_host = Host(network, "client")
    server_host = Host(network, "server")
    network.connect_bidirectional(
        "client", "server", prop_delay=100 * MICROSECONDS,
        bandwidth_bps=10 * GIGABITS_PER_SECOND,
    )
    ServerApp(
        server_host,
        ServerConfig(port=7000, workers=4, service_model=SLOW_MODEL),
        streams.get("svc"),
    )
    client = HedgingClient(
        client_host,
        Endpoint("server", 7000),
        HedgingConfig(streams=4, hedge_timeout=hedge_timeout),
        streams.get("wl"),
    )
    client.start()
    sim.run_until(2 * SECONDS)
    client.stop()
    return client


def test_hedging_tradeoff(benchmark):
    def run_both():
        return {
            "no-hedging": _run(hedge_timeout=10 * SECONDS),
            "hedge@500us": _run(hedge_timeout=500 * MICROSECONDS),
            "hedge@1ms": _run(hedge_timeout=1 * MILLISECONDS),
        }

    clients = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, client in clients.items():
        latencies = client.latencies()
        rows.append(
            (
                label,
                len(latencies),
                "%.0f" % to_micros(exact_quantile(latencies, 0.5)),
                "%.0f" % to_micros(exact_quantile(latencies, 0.95)),
                "%.0f" % to_micros(exact_quantile(latencies, 0.99)),
                "%.3f" % client.hedge_rate,
                client.stats.wasted_responses,
            )
        )
    table = format_table(
        ("client", "requests", "p50 (us)", "p95 (us)", "p99 (us)",
         "hedge rate", "wasted responses"),
        rows,
    )
    write_report("hedging", table)

    no_hedge = clients["no-hedging"]
    hedged = clients["hedge@500us"]
    # Hedging cuts the p99 tail...
    assert exact_quantile(hedged.latencies(), 0.99) < exact_quantile(
        no_hedge.latencies(), 0.99
    )
    # ...but pays duplicated work...
    assert hedged.stats.wasted_responses > 0
    # ...and every duplicated request still paid >= the hedge timeout.
    hedged_slow = [v for v in hedged.latencies() if v > 500 * MICROSECONDS]
    assert hedged_slow
    assert min(hedged_slow) >= 500 * MICROSECONDS
