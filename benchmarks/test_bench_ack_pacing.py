"""Open question #2 — ACK policy and pacing vs estimator accuracy.

The measurement assumes triggered packets land "soon" after responses.
Delayed ACKs and pacing both weaken that; this bench quantifies by how
much the T_LB estimate degrades under each.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_ack_and_pacing
from repro.units import SECONDS


def test_ack_and_pacing(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_ack_and_pacing(duration=2 * SECONDS),
        rounds=1,
        iterations=1,
    )
    write_report("ack_pacing", rows_to_table(rows))

    by_label = {row["transport"]: row for row in rows}
    # Measurement keeps producing samples under every timing behaviour.
    for row in rows:
        assert row["t_lb_samples"] > 100
    # Immediate ACKs give a usable estimate (within 50% of truth).
    assert float(by_label["immediate-acks"]["rel_error"]) < 0.5
