"""ABL-HYST — the paper-verbatim always-shift rule vs damped variants.

At ratio 1.0 (shift on every sample, as the paper's §3 text states) the
controller chases queueing noise: many shifts land *before* any fault.
Mild hysteresis silences the noise while keeping millisecond-scale
reaction; too much (2.0) makes the controller miss or react late.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_hysteresis
from repro.harness.figures import Fig3Config
from repro.units import SECONDS


def test_hysteresis_sweep(benchmark):
    config = Fig3Config(duration=2 * SECONDS)
    rows = benchmark.pedantic(
        lambda: sweep_hysteresis(ratios=(1.0, 1.1, 1.2, 1.5, 2.0), fig3=config),
        rounds=1,
        iterations=1,
    )
    write_report("ablation_hysteresis", rows_to_table(rows))

    by_ratio = {row["hysteresis"]: row for row in rows}

    def total(ratio):
        return (
            by_ratio[ratio]["pre_injection_shifts"]
            + by_ratio[ratio]["post_injection_shifts"]
        )

    # The verbatim always-shift rule (1.0) churns more than damped
    # variants — in particular it keeps shifting after the drain is done.
    assert total(1.0) > total(1.5)
    assert (
        by_ratio[1.0]["post_injection_shifts"]
        > 2 * by_ratio[1.2]["post_injection_shifts"]
    )
    # The default (1.2) still reacts.
    assert by_ratio[1.2]["react_ms"] != "-"
