"""FIG3 — paper Fig 3: p95 GET latency, plain Maglev vs latency-aware LB.

Two identical runs (same seed, same 1 ms LB→server0 injection at the
midpoint) differing only in the LB: the regular Maglev baseline and the
in-band feedback design.  Regenerates the figure's p95-over-time series
and asserts its reading: Maglev stays ≈1 ms inflated, the latency-aware
LB recovers to its pre-fault tail.
"""

from conftest import write_report

from repro.harness.figures import Fig3Config, run_fig3
from repro.harness.report import format_table
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS, to_millis


CONFIG = Fig3Config(duration=3 * SECONDS)


def _fmt(value):
    return "-" if value is None else "%.3f" % to_millis(value)


def test_fig3_p95_timeline(benchmark):
    result = benchmark.pedantic(lambda: run_fig3(CONFIG), rounds=1, iterations=1)

    maglev = dict(result.p95_series("maglev"))
    feedback = dict(result.p95_series("feedback"))
    rows = []
    for bucket in sorted(set(maglev) | set(feedback)):
        rows.append(
            (
                "%.0f" % to_millis(bucket),
                _fmt(maglev.get(bucket)),
                _fmt(feedback.get(bucket)),
                "<- 1ms injected" if bucket == CONFIG.injection_at else "",
            )
        )
    table = format_table(
        ("t (ms)", "maglev p95 (ms)", "feedback p95 (ms)", ""), rows
    )

    settle = CONFIG.duration // 8
    summary = format_table(
        ("arm", "pre-fault p95 (ms)", "post-fault p95 (ms)"),
        [
            (
                policy,
                _fmt(result.steady_state_p95(policy)),
                _fmt(result.post_injection_p95(policy, settle)),
            )
            for policy in ("maglev", "feedback")
        ],
    )
    write_report("fig3", table + "\n\n" + summary)

    # Paper reading 1: the fault inflates Maglev's p95 by ~the injection.
    maglev_pre = result.steady_state_p95("maglev")
    maglev_post = result.post_injection_p95("maglev", settle)
    assert maglev_post > maglev_pre + 300 * MICROSECONDS

    # Paper reading 2: the latency-aware LB's p95 returns to ~steady state.
    fb_pre = result.steady_state_p95("feedback")
    fb_post = result.post_injection_p95("feedback", settle)
    assert fb_post < fb_pre * 1.25 + 100 * MICROSECONDS

    # Paper reading 3: feedback beats Maglev after the fault.
    assert fb_post < maglev_post
