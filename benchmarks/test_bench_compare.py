"""COMPARE — the controller-zoo leaderboard (``repro compare``).

Races every registered control law across two contrasting chaos
presets — the paper's Fig 3 step and the KnapsackLB flapping regime —
and persists the deterministic leaderboard.  This is the growth
direction of the paper's open question #4: not two alternatives against
α-shift, but the whole zoo under one ranking.
"""

from conftest import write_report

import repro.controllers as controllers
from repro.harness.compare import run_compare
from repro.units import SECONDS

DURATION = 1 * SECONDS
PRESETS = ("fig3", "flapping_server")


def test_compare_leaderboard(benchmark):
    roster = controllers.available()
    report = benchmark.pedantic(
        lambda: run_compare(
            PRESETS, roster, duration=DURATION, jobs=2, store=None
        ),
        rounds=1,
        iterations=1,
    )

    text = report.leaderboard()
    write_report("compare", text)

    # Every lane produced a ranked row with measured tail latency.
    for preset in PRESETS:
        ranked = report.ranking(preset)
        assert [name for name, _row in sorted(ranked)] == roster
        for _name, row in ranked:
            assert row["requests"] > 0
            assert row["p95_ms"] is not None
    # The leaderboard is a pure function of the rows: re-rendering is
    # byte-identical (no wall-clock leaks into it).
    assert report.leaderboard() == text
