"""Open question #4 — many LBs, one pool: reaction without a stampede.

Each LB runs its own in-band feedback loop over the same two servers; a
server-side 1 ms fault hits mid-run.  The bench reports per-LB shift
counts, oscillation (weight-direction changes), and the pooled traffic
share left on the slow server.
"""

from conftest import write_report

from repro.harness.multilb import MultiLbConfig, run_multilb
from repro.harness.report import format_table
from repro.units import MILLISECONDS, SECONDS


def test_multilb_herd(benchmark):
    config = MultiLbConfig(duration=2 * SECONDS, n_lbs=3)
    result = benchmark.pedantic(
        lambda: run_multilb(config), rounds=1, iterations=1
    )

    injection = config.injection_at
    rows = []
    for index in range(config.n_lbs):
        feedback = result.feedbacks[index]
        shifts = [e.time for e in feedback.shift_events()]
        rows.append(
            (
                "lb%d" % index,
                sum(1 for t in shifts if t < injection),
                sum(1 for t in shifts if t >= injection),
                result.oscillations(index),
                "%.2f" % result.lbs[index].pool.weights()[config.injected_server],
            )
        )
    table = format_table(
        ("LB", "shifts pre-fault", "shifts post-fault", "oscillations",
         "final injected weight"),
        rows,
    )
    share = result.injected_share_after(injection + config.duration // 4)
    write_report(
        "multilb_herd",
        table + "\n\npooled slow-server share after fault: %.3f" % share,
    )

    # Every LB independently drained the slow server...
    for index in range(config.n_lbs):
        assert result.lbs[index].pool.weights()[config.injected_server] < 0.5
    # ...the pooled share collapsed...
    assert share < 0.25
    # ...and no LB rang indefinitely.
    for index in range(config.n_lbs):
        assert result.oscillations(index) < 40
