"""Open question #2 (flavor) — measurement vs application concurrency.

Deeper pipelines shorten the pauses Algorithms 1–2 segment on.  This
sweep records how sample volume and estimate quality change with the
client's pipeline depth.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_pipeline_depth
from repro.units import SECONDS


def test_pipeline_depth(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_pipeline_depth(depths=(1, 2, 4, 8), duration=2 * SECONDS),
        rounds=1,
        iterations=1,
    )
    write_report("pipeline_depth", rows_to_table(rows))

    # Samples are produced at every depth; the measurement keeps working.
    for row in rows:
        assert row["t_lb_samples"] > 100
