"""ABL-ENSEMBLE — sweep the ensemble's width and spacing.

A too-narrow ensemble cannot bracket the post-step RTT (its largest
timeout is below the new batch pause), so tracking collapses; the
paper's 7-timeout ladder and wider variants keep tracking.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_ensemble
from repro.harness.figures import BacklogConfig
from repro.units import SECONDS


def test_ensemble_sweep(benchmark):
    backlog = BacklogConfig(duration=2 * SECONDS, step_at=1 * SECONDS)
    rows = benchmark.pedantic(
        lambda: sweep_ensemble(backlog), rounds=1, iterations=1
    )
    write_report("ablation_ensemble", rows_to_table(rows))

    by_name = {row["ensemble"]: row for row in rows}
    paper = by_name["paper-7 (64us..4ms)"]
    narrow = by_name["narrow-3 (64..256us)"]
    assert float(paper["err_post"]) < 0.3
    # The narrow ensemble underestimates badly after the step.
    assert float(narrow["err_post"]) > 2 * float(paper["err_post"])
