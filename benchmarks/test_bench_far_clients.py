"""Open question #1 — far, non-equidistant clients.

As the client↔LB distance grows, absolute T_LB estimates inflate by the
uncontrollable legs, but the *difference* between the injected and
healthy backends stays pinned to the injected 1 ms — ranking-based
control survives; absolute-threshold control would not.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_far_clients
from repro.units import MILLISECONDS, SECONDS


def test_far_clients(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_far_clients(
            extra_delays_us=(0, 100, 500, 2000), duration=2 * SECONDS
        ),
        rounds=1,
        iterations=1,
    )
    write_report("far_clients", rows_to_table(rows))

    gaps = [float(row["gap_us"]) for row in rows]
    # The injected-vs-healthy gap ≈ 1000 us at every client distance.
    for gap in gaps:
        assert 500 < gap < 2500
    # Absolute estimates inflate with distance.
    injected = [float(row["est_injected_us"]) for row in rows]
    assert injected[-1] > injected[0] + 2000
