"""ABL-POLICY — every routing policy against the Fig 3 stimulus.

Latency-oblivious policies (Maglev, round-robin, least-connections)
keep ~half the traffic on the slow server; the in-band feedback loop
and the response-observing oracle both drain it.  Comparing feedback to
the oracle isolates the cost of measuring T_LB instead of T_client.
"""

from conftest import rows_to_table, write_report

from repro.harness.ablations import sweep_policies
from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config
from repro.units import SECONDS


POLICIES = (
    PolicyName.MAGLEV,
    PolicyName.FEEDBACK,
    PolicyName.ORACLE,
    PolicyName.ROUND_ROBIN,
    PolicyName.LEAST_CONNECTIONS,
    PolicyName.POWER_OF_TWO,
)


def test_policy_comparison(benchmark):
    config = Fig3Config(duration=2 * SECONDS)
    rows = benchmark.pedantic(
        lambda: sweep_policies(config, POLICIES), rounds=1, iterations=1
    )
    write_report("ablation_policies", rows_to_table(rows))

    by_policy = {row["policy"]: row for row in rows}
    fb_share = float(by_policy["feedback"]["slow_server_share"])
    oracle_share = float(by_policy["oracle"]["slow_server_share"])
    maglev_share = float(by_policy["maglev"]["slow_server_share"])

    # Oblivious baselines keep feeding the slow server ~evenly.
    assert maglev_share > 0.35
    # Feedback and oracle both drain it.
    assert fb_share < 0.25
    assert oracle_share < 0.25
    # And feedback's post-fault p95 beats Maglev's.
    assert float(by_policy["feedback"]["post_p95_ms"]) < float(
        by_policy["maglev"]["post_p95_ms"]
    )
