"""RESILIENCE — degradation, recovery, and the cost of the guardrails.

Three arms, one report (``benchmarks/reports/resilience.txt``):

* ``crash`` — server0 dies for the middle third of the run.  Measures
  the headline recovery numbers: time from fault onset to FALLBACK
  (bounded by the staleness policy plus the ladder's check period) and
  time back to FEEDBACK after the restart.  Also asserts the core
  invariant — no ranking shift ever executes outside FEEDBACK mode.
* ``lossy_path`` — 2% loss on LB→server0.  Exercises deadlines and
  retries; asserts the token-budget arithmetic bound on total retries.
* ``fault_free`` — the overhead control: the same scenario with and
  without the resilience plane, no faults.  The plane must be close to
  free when nothing is wrong.
"""

from conftest import write_report

from repro.faults import preset
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.report import format_table
from repro.harness.runner import run_scenario
from repro.resilience import ControllerMode, ResilienceConfig
from repro.telemetry.quantiles import exact_quantile
from repro.units import MILLISECONDS, SECONDS, to_millis

DURATION = 2 * SECONDS
SEED = 21


def _run(preset_name=None, resilient=True):
    config = ScenarioConfig(
        seed=SEED,
        duration=DURATION,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        faults=preset(preset_name, DURATION) if preset_name else [],
        resilience=ResilienceConfig(enabled=True, health_checks=True)
        if resilient
        else ResilienceConfig(),
        warmup=DURATION // 10,
    )
    return run_scenario(config)


def _mode_at(transitions, time):
    mode = ControllerMode.HOLD
    for t in transitions:
        if t.time > time:
            break
        mode = t.to_mode
    return mode


def _p95(result):
    values = result.latencies()
    return exact_quantile(values, 0.95) if values else None


def test_resilience_plane(benchmark):
    def run_all():
        return {
            "crash": _run("crash"),
            "lossy_path": _run("lossy_path"),
            "fault_free_on": _run(None, resilient=True),
            "fault_free_off": _run(None, resilient=False),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # --- crash: degradation and recovery timing -----------------------
    crash = results["crash"]
    onset = min(start for _k, _t, start, _e in crash.fault_windows())
    fallback_at = crash.first_mode_entry("FALLBACK", after=onset)
    assert fallback_at is not None
    recovered_at = crash.first_mode_entry("FEEDBACK", after=fallback_at)
    assert recovered_at is not None

    resilience = crash.scenario.config.resilience
    # The signal invalidates invalid_after ns past the last sample, and
    # connections pinned to the dead backend keep emitting packets (=
    # samples at the LB) until their retry deadline aborts them; the
    # periodic ladder check then catches it within a few periods.
    bound = (
        resilience.signal.invalid_after
        + resilience.retry.deadline
        + 3 * resilience.ladder.check_interval
        + 20 * MILLISECONDS
    )
    assert fallback_at - onset <= bound

    # Core invariant: every ranking shift executed in FEEDBACK mode.
    transitions = crash.mode_transitions()
    for event in crash.scenario.feedback.shift_events():
        if event.reason in ("mode-change", "post-fallback-rebalance"):
            continue
        assert _mode_at(transitions, event.time) is ControllerMode.FEEDBACK

    # --- lossy_path: the retry budget bound ---------------------------
    lossy = results["lossy_path"]
    stats = lossy.retry_stats()
    assert stats is not None and stats.first_attempts > 0
    bound_tokens = sum(
        c.retry_budget.bound(c.retry_stats.first_attempts)
        for c in lossy.scenario.clients
    )
    assert stats.retries <= bound_tokens

    # --- fault-free: the plane must be nearly free --------------------
    on, off = results["fault_free_on"], results["fault_free_off"]
    p95_on, p95_off = _p95(on), _p95(off)
    assert p95_on is not None and p95_off is not None
    assert p95_on <= 1.10 * p95_off
    assert on.retry_stats().retries == 0
    assert on.breaker_transitions() == []

    rows = [
        (
            "crash",
            "%.3f" % to_millis(fallback_at - onset),
            "%.3f" % to_millis(recovered_at - fallback_at),
            "%.3f" % to_millis(_p95(crash)),
            "%d" % len(crash.mode_transitions()),
            "%d" % crash.retry_stats().retries,
        ),
        (
            "lossy_path",
            "-",
            "-",
            "%.3f" % to_millis(_p95(lossy)),
            "%d" % len(lossy.mode_transitions()),
            "%d (bound %.1f)" % (stats.retries, bound_tokens),
        ),
        (
            "fault_free on",
            "-",
            "-",
            "%.3f" % to_millis(p95_on),
            "%d" % len(on.mode_transitions()),
            "0",
        ),
        (
            "fault_free off",
            "-",
            "-",
            "%.3f" % to_millis(p95_off),
            "-",
            "-",
        ),
    ]
    table = format_table(
        (
            "arm",
            "to FALLBACK (ms)",
            "to FEEDBACK (ms)",
            "p95 (ms)",
            "mode transitions",
            "retries",
        ),
        rows,
    )
    detail = "\n\n".join(
        "--- %s ---\n%s" % (name, result.report())
        for name, result in results.items()
    )
    write_report("resilience", table + "\n\n" + detail)
